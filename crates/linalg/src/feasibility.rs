//! Feasibility of strict homogeneous linear systems.
//!
//! Theorem 4.1 of the paper reduces the Diophantine-solution problem for an
//! n-MPI `P(u) < M(u)` to the question of whether the system
//!
//! ```text
//!     (e − e_i)ᵀ · ε > 0     for i = 1..m,      ε ≥ 0
//! ```
//!
//! has a solution over the naturals, which (as observed in the paper's proof)
//! is equivalent to rational feasibility because the system is homogeneous
//! with rational coefficients: any rational solution can be scaled by the
//! least common multiple of its denominators into a natural one.
//!
//! [`StrictHomogeneousSystem`] captures exactly that shape and offers the
//! engines of [`FeasibilityEngine`] for deciding it and extracting natural
//! witnesses. The rows are stored as sparse **integer** [`IntRow`]s built
//! straight from the non-zero exponent differences — the fraction-free
//! Bareiss kernel consumes them as-is, and the rational engines receive
//! them converted once, up front.

use dioph_arith::{Integer, Natural, Rational};

use crate::bareiss;
use crate::error::LinalgError;
use crate::fourier_motzkin::{self, FmOutcome, UpperForm};
use crate::row::{IntRow, Row};
use crate::scratch::{LpScratch, RowPool};
use crate::simplex::{self, SimplexOutcome};
use crate::system::{Constraint, LinearSystem, Relation};

/// Which engine to use when deciding feasibility.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FeasibilityEngine {
    /// Exact rational phase-1 simplex (default; polynomial in practice).
    #[default]
    Simplex,
    /// The fraction-free integer simplex of [`crate::bareiss`]: identical
    /// pivot sequence, verdict and witness as [`Self::Simplex`], but every
    /// intermediate value stays an integer with one exact division per row
    /// per pivot — the route for systems whose pivot values outgrow machine
    /// words.
    Bareiss,
    /// Picks [`Self::Bareiss`] past the measured machine-word cliff
    /// (≈ 16 unknowns × 48 rows, or any coefficient already beyond `i64`)
    /// and [`Self::Simplex`] below it. Verdicts and witnesses are identical
    /// either way, so the choice is pure performance.
    Auto,
    /// Fourier–Motzkin elimination (simple, doubly exponential worst case).
    FourierMotzkin,
}

/// The `Auto` route switches to the fraction-free kernel when the tableau
/// has at least this many cells (dimension × rows): the measured cliff where
/// rational pivot values stop fitting machine words for good (lp_ablation,
/// 16 unknowns × 48 rows).
const AUTO_FRACTION_FREE_CELLS: usize = 16 * 48;

/// A system `{ rows[i] · ε > 0 }` over non-negative unknowns `ε`.
///
/// Rows have integer coefficients (the exponent differences `e − e_i` of the
/// paper are integer vectors) and are stored as [`IntRow`]s — sparse while
/// at most half non-zero, dense past that.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StrictHomogeneousSystem {
    dimension: usize,
    rows: Vec<IntRow>,
}

impl StrictHomogeneousSystem {
    /// Creates an empty system over `dimension` unknowns.
    pub fn new(dimension: usize) -> Self {
        StrictHomogeneousSystem { dimension, rows: Vec::new() } // alloc-ok: empty constructor
    }

    /// Number of unknowns.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The coefficient rows.
    pub fn rows(&self) -> &[IntRow] {
        &self.rows
    }

    /// Number of rows (strict inequalities).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the system has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds the strict inequality `row · ε > 0` from dense coefficients.
    ///
    /// # Panics
    /// Panics if the row length differs from the system dimension.
    pub fn push_row(&mut self, row: Vec<Integer>) {
        assert_eq!(row.len(), self.dimension, "row dimension mismatch");
        self.rows.push(IntRow::from_dense_auto(&row));
    }

    /// Adds the strict inequality `row · ε > 0` directly from its non-zero
    /// entries (strictly increasing columns, no explicit zeros) — the
    /// handover path for MPI-derived systems, whose exponent-difference rows
    /// are mostly zeros.
    ///
    /// # Panics
    /// Panics if the entries violate the sparse-row invariants (see
    /// [`crate::GenSparseRow::new`]) or mention a column `>= dimension`.
    pub fn push_sparse_row(&mut self, entries: Vec<(usize, Integer)>) {
        self.rows.push(IntRow::auto(self.dimension, entries));
    }

    /// Adds a row given as `i64` coefficients (convenience).
    pub fn push_row_i64(&mut self, row: &[i64]) {
        self.push_row(row.iter().map(|&c| Integer::from(c)).collect());
    }

    /// Clears the system for reuse at a (possibly different) dimension,
    /// tearing the old rows back down into `pool` — the recycling half of
    /// the scratch-memory discipline: a caller that owns one system and one
    /// pool rebuilds MPI-derived systems with no fresh row allocations in
    /// the steady state (pair with [`Self::push_sparse_row`] on entries
    /// obtained from [`RowPool::take`]).
    pub fn reset_with_pool(&mut self, dimension: usize, pool: &mut RowPool<Integer>) {
        self.dimension = dimension;
        for row in self.rows.drain(..) {
            pool.reclaim(row);
        }
    }

    /// Checks whether a natural-number assignment satisfies every row.
    pub fn is_satisfied_by_naturals(&self, point: &[Natural]) -> bool {
        assert_eq!(point.len(), self.dimension, "point dimension mismatch");
        self.rows.iter().all(|row| {
            let mut acc = Integer::zero();
            for (col, coeff) in row.iter_nonzero() {
                if point[col].is_zero() {
                    continue;
                }
                acc += &(coeff * &Integer::from(&point[col]));
            }
            acc.is_positive()
        })
    }

    /// One sparse rational [`Row`] per strict inequality: exactly the
    /// non-zero integer coefficients, as rationals.
    pub fn to_sparse_rows(&self) -> Vec<Row> {
        self.rows
            .iter()
            .map(|row| {
                let entries: Vec<(usize, Rational)> =
                    row.iter_nonzero().map(|(i, c)| (i, Rational::from(c))).collect();
                Row::sparse(self.dimension, entries)
            })
            .collect()
    }

    /// The stored integer rows, cloned — the fraction-free kernel's input.
    pub fn to_int_rows(&self) -> Vec<IntRow> {
        self.rows.clone()
    }

    /// Renders the system as a [`LinearSystem`] with strict rows and explicit
    /// non-negativity constraints (used by tests and displays; the engines
    /// themselves run on the stored rows).
    pub fn to_linear_system(&self) -> LinearSystem {
        let mut sys = LinearSystem::new(self.dimension);
        for row in &self.rows {
            sys.push(Constraint::from_integers(&row.to_dense_vec(), Relation::Gt, Integer::zero()));
        }
        sys.push_nonnegativity();
        sys
    }

    /// Decides rational feasibility and returns a rational witness if one
    /// exists.
    ///
    /// An empty system (no rows) over at least one unknown is trivially
    /// feasible (witness: all zeros); over zero unknowns it is also feasible
    /// with the empty witness.
    ///
    /// # Errors
    /// [`LinalgError::IterationBudget`] if a simplex engine exhausts its
    /// (defensive, generous) iteration budget.
    pub fn rational_solution(
        &self,
        engine: FeasibilityEngine,
    ) -> Result<Option<Vec<Rational>>, LinalgError> {
        let mut scratch = LpScratch::default();
        self.rational_solution_in(engine, &mut scratch)
    }

    /// [`Self::rational_solution`] through a caller-provided scratch: the
    /// simplex and fraction-free routes draw every working buffer from
    /// `scratch` (recycled there afterwards), so a warmed scratch decides a
    /// system with no heap allocation beyond the returned witness. Reuse is
    /// capacity-only — verdicts and witnesses are bit-identical to the
    /// fresh-allocation route. The Fourier–Motzkin engine ignores the
    /// scratch (it is not on any hot path).
    ///
    /// # Errors
    /// As [`Self::rational_solution`].
    pub fn rational_solution_in(
        &self,
        engine: FeasibilityEngine,
        scratch: &mut LpScratch,
    ) -> Result<Option<Vec<Rational>>, LinalgError> {
        dioph_obs::registry::LP_FEASIBILITY_CALLS.incr();
        let _lp_span = dioph_obs::span(dioph_obs::Phase::Lp);
        if self.rows.is_empty() {
            return Ok(Some(vec![Rational::zero(); self.dimension])); // alloc-ok: returned witness
        }
        // A row of all zeros can never be strictly positive.
        if self.rows.iter().any(super::row::GenRow::is_zero_row) {
            return Ok(None);
        }
        let engine = self.resolve_auto(engine);
        match engine {
            FeasibilityEngine::Simplex => {
                // Homogeneity: A·ε > 0, ε ≥ 0 feasible  ⟺  A·ε ≥ 1, ε ≥ 0
                // feasible — the scaled kernel bakes in b = 1 and converts
                // the stored integer coefficients straight into pooled
                // tableau storage.
                match simplex::feasible_point_scaled_in(
                    self.dimension,
                    &self.rows,
                    &mut scratch.rational,
                )? {
                    SimplexOutcome::Feasible(x) => Ok(Some(x)),
                    SimplexOutcome::Infeasible => Ok(None),
                }
            }
            FeasibilityEngine::Bareiss => {
                // Same homogeneity scaling; the stored integer rows are
                // handed over untranslated.
                match bareiss::feasible_point_scaled_in(
                    self.dimension,
                    &self.rows,
                    &mut scratch.integer,
                )? {
                    SimplexOutcome::Feasible(x) => Ok(Some(x)),
                    SimplexOutcome::Infeasible => Ok(None),
                }
            }
            FeasibilityEngine::Auto => unreachable!("resolve_auto picked a concrete engine"),
            FeasibilityEngine::FourierMotzkin => {
                // Each strict row A_i·ε > 0 normalises to -A_i·ε < 0, and
                // each non-negativity ε_j ≥ 0 to -ε_j ≤ 0 — all sparse.
                let mut forms: Vec<UpperForm> =
                    Vec::with_capacity(self.rows.len() + self.dimension);
                for row in self.to_sparse_rows() {
                    let mut negated = row;
                    negated.negate();
                    forms.push(UpperForm {
                        row: negated,
                        strict: true,
                        constant: Rational::zero(),
                    });
                }
                for j in 0..self.dimension {
                    // alloc-ok: Fourier–Motzkin route, not scratch-threaded
                    let row = Row::sparse(self.dimension, vec![(j, -Rational::one())]);
                    forms.push(UpperForm { row, strict: false, constant: Rational::zero() });
                }
                match fourier_motzkin::solve_forms(self.dimension, forms) {
                    FmOutcome::Feasible(x) => {
                        debug_assert!(
                            self.to_linear_system().is_satisfied_by(&x),
                            "FM witness must satisfy the strict system"
                        );
                        Ok(Some(x))
                    }
                    FmOutcome::Infeasible => Ok(None),
                }
            }
        }
    }

    /// Resolves [`FeasibilityEngine::Auto`] to a concrete simplex route:
    /// fraction-free past the machine-word cliff (large tableau, or any
    /// coefficient already beyond `i64`), rational below it. Both produce
    /// identical results; this is a pure performance choice.
    fn resolve_auto(&self, engine: FeasibilityEngine) -> FeasibilityEngine {
        if engine != FeasibilityEngine::Auto {
            return engine;
        }
        let cells = self.dimension.saturating_mul(self.rows.len());
        let has_big_coefficient =
            self.rows.iter().any(|row| row.iter_nonzero().any(|(_, c)| c.to_i64().is_none()));
        if cells >= AUTO_FRACTION_FREE_CELLS || has_big_coefficient {
            FeasibilityEngine::Bareiss
        } else {
            FeasibilityEngine::Simplex
        }
    }

    /// Decides feasibility and returns a **natural-number** witness if one
    /// exists (Theorem 4.1's "Diophantine solution" of the linear system).
    ///
    /// The witness is obtained by scaling a rational solution by the least
    /// common multiple of its denominators; since the system is homogeneous
    /// and all rational components are non-negative, the scaled vector is a
    /// valid natural solution.
    ///
    /// # Errors
    /// As [`Self::rational_solution`].
    pub fn natural_solution(
        &self,
        engine: FeasibilityEngine,
    ) -> Result<Option<Vec<Natural>>, LinalgError> {
        Ok(self.rational_solution(engine)?.map(|rational| scale_to_naturals(&rational)))
    }

    /// [`Self::natural_solution`] through a caller-provided scratch (see
    /// [`Self::rational_solution_in`]).
    ///
    /// # Errors
    /// As [`Self::rational_solution`].
    pub fn natural_solution_in(
        &self,
        engine: FeasibilityEngine,
        scratch: &mut LpScratch,
    ) -> Result<Option<Vec<Natural>>, LinalgError> {
        Ok(self.rational_solution_in(engine, scratch)?.map(|rational| scale_to_naturals(&rational)))
    }

    /// `true` iff the system admits a solution (equivalently: the associated
    /// MPI admits a Diophantine solution, by Theorem 4.1).
    ///
    /// # Errors
    /// As [`Self::rational_solution`].
    pub fn is_feasible(&self, engine: FeasibilityEngine) -> Result<bool, LinalgError> {
        Ok(self.rational_solution(engine)?.is_some())
    }

    /// [`Self::is_feasible`] through a caller-provided scratch (see
    /// [`Self::rational_solution_in`]).
    ///
    /// # Errors
    /// As [`Self::rational_solution`].
    pub fn is_feasible_in(
        &self,
        engine: FeasibilityEngine,
        scratch: &mut LpScratch,
    ) -> Result<bool, LinalgError> {
        Ok(self.rational_solution_in(engine, scratch)?.is_some())
    }
}

/// Scales a non-negative rational vector by the LCM of its denominators,
/// producing a natural vector pointing in the same direction.
///
/// # Panics
/// Panics if any component is negative.
pub fn scale_to_naturals(point: &[Rational]) -> Vec<Natural> {
    let mut lcm = Natural::one();
    for value in point {
        assert!(!value.is_negative(), "cannot scale a negative rational to a natural");
        lcm = lcm.lcm(value.denom());
    }
    point.iter().map(|value| &value.numer().magnitude() * &(&lcm / value.denom())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINES: [FeasibilityEngine; 4] = [
        FeasibilityEngine::Simplex,
        FeasibilityEngine::Bareiss,
        FeasibilityEngine::Auto,
        FeasibilityEngine::FourierMotzkin,
    ];

    #[test]
    fn empty_system_is_feasible() {
        for engine in ENGINES {
            let sys = StrictHomogeneousSystem::new(3);
            assert!(sys.is_feasible(engine).unwrap());
            assert_eq!(sys.natural_solution(engine).unwrap().unwrap().len(), 3);
        }
    }

    #[test]
    fn paper_running_example_is_feasible() {
        // {-5ε1 + ε2 + 3ε3 > 0, -3ε1 - ε2 + 3ε3 > 0, -ε1 + ε2 - ε3 > 0}
        // The paper exhibits the solution (0, 2, 1).
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(3);
            sys.push_row_i64(&[-5, 1, 3]);
            sys.push_row_i64(&[-3, -1, 3]);
            sys.push_row_i64(&[-1, 1, -1]);
            let nat = sys.natural_solution(engine).unwrap().expect("feasible");
            assert!(sys.is_satisfied_by_naturals(&nat), "{engine:?}: witness {nat:?}");
            // The paper's own solution works too.
            let paper = vec![Natural::zero(), Natural::from(2u64), Natural::from(1u64)];
            assert!(sys.is_satisfied_by_naturals(&paper));
        }
    }

    #[test]
    fn zero_row_is_infeasible() {
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(2);
            sys.push_row_i64(&[0, 0]);
            sys.push_row_i64(&[1, 1]);
            assert!(!sys.is_feasible(engine).unwrap());
        }
    }

    #[test]
    fn all_negative_row_is_infeasible() {
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(2);
            sys.push_row_i64(&[-1, -2]);
            assert!(!sys.is_feasible(engine).unwrap());
        }
    }

    #[test]
    fn opposing_rows_are_infeasible() {
        // ε1 - ε2 > 0 and ε2 - ε1 > 0 cannot both hold.
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(2);
            sys.push_row_i64(&[1, -1]);
            sys.push_row_i64(&[-1, 1]);
            assert!(!sys.is_feasible(engine).unwrap());
        }
    }

    #[test]
    fn single_positive_direction() {
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(1);
            sys.push_row_i64(&[3]);
            let nat = sys.natural_solution(engine).unwrap().unwrap();
            assert!(sys.is_satisfied_by_naturals(&nat));
        }
    }

    #[test]
    fn engines_agree_on_structured_instances() {
        // A family of instances where feasibility flips with a parameter.
        for k in -4i64..=4 {
            let mut sys = StrictHomogeneousSystem::new(3);
            sys.push_row_i64(&[k, 1, -1]);
            sys.push_row_i64(&[1, -2, 1]);
            sys.push_row_i64(&[-1, 1, 1]);
            let reference = sys.is_feasible(FeasibilityEngine::Simplex).unwrap();
            for engine in ENGINES {
                assert_eq!(
                    sys.is_feasible(engine).unwrap(),
                    reference,
                    "{engine:?} disagrees at k={k}"
                );
            }
            if let Some(nat) = sys.natural_solution(FeasibilityEngine::Simplex).unwrap() {
                assert!(sys.is_satisfied_by_naturals(&nat));
            }
        }
    }

    #[test]
    fn bareiss_and_simplex_witnesses_are_identical() {
        // Not just the verdict: the rational witness itself must match,
        // component for component (that is what keeps the JSON certificates
        // byte-identical across --lp-route settings).
        let mut sys = StrictHomogeneousSystem::new(3);
        sys.push_row_i64(&[-5, 1, 3]);
        sys.push_row_i64(&[-3, -1, 3]);
        sys.push_row_i64(&[-1, 1, -1]);
        let simplex = sys.rational_solution(FeasibilityEngine::Simplex).unwrap();
        let bareiss = sys.rational_solution(FeasibilityEngine::Bareiss).unwrap();
        let auto = sys.rational_solution(FeasibilityEngine::Auto).unwrap();
        assert_eq!(simplex, bareiss);
        assert_eq!(simplex, auto);
    }

    #[test]
    fn auto_resolves_by_size_and_coefficient_width() {
        let mut small = StrictHomogeneousSystem::new(2);
        small.push_row_i64(&[1, -1]);
        assert_eq!(small.resolve_auto(FeasibilityEngine::Auto), FeasibilityEngine::Simplex);
        // A coefficient past i64 flips the choice regardless of size.
        let mut wide = StrictHomogeneousSystem::new(2);
        wide.push_row(vec![Integer::from(i64::MAX) * Integer::from(4), Integer::from(-1)]);
        assert_eq!(wide.resolve_auto(FeasibilityEngine::Auto), FeasibilityEngine::Bareiss);
        // So does sheer size (the measured cliff).
        let mut big = StrictHomogeneousSystem::new(16);
        for i in 0..48 {
            let mut row = vec![0i64; 16];
            row[i % 16] = 1;
            row[(i + 1) % 16] = -1;
            big.push_row_i64(&row);
        }
        assert_eq!(big.resolve_auto(FeasibilityEngine::Auto), FeasibilityEngine::Bareiss);
        // Concrete engines resolve to themselves.
        assert_eq!(big.resolve_auto(FeasibilityEngine::Simplex), FeasibilityEngine::Simplex);
    }

    #[test]
    fn sparse_rows_mirror_the_integer_rows() {
        let mut sys = StrictHomogeneousSystem::new(5);
        sys.push_row_i64(&[0, 3, 0, -2, 0]);
        sys.push_sparse_row(vec![(0, Integer::one())]);
        let rows = sys.to_sparse_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].nnz(), 2);
        assert_eq!(rows[0].get(1), Some(&Rational::from(3)));
        assert_eq!(rows[0].get(3), Some(&Rational::from(-2)));
        assert_eq!(rows[0].get(0), None);
        assert_eq!(rows[1].nnz(), 1);
        // The stored integer rows carry the same values.
        let int_rows = sys.to_int_rows();
        assert_eq!(int_rows[0].get(1), Some(&Integer::from(3)));
        assert_eq!(int_rows[1].get(0), Some(&Integer::one()));
    }

    #[test]
    fn scale_to_naturals_clears_denominators() {
        let point =
            vec![Rational::from_i64s(1, 2), Rational::from_i64s(2, 3), Rational::from_i64s(0, 1)];
        let nat = scale_to_naturals(&point);
        assert_eq!(nat, vec![Natural::from(3u64), Natural::from(4u64), Natural::zero()]);
    }

    #[test]
    #[should_panic(expected = "negative rational")]
    fn scale_to_naturals_rejects_negative() {
        let _ = scale_to_naturals(&[Rational::from_i64s(-1, 2)]);
    }
}
