//! Cross-crate property-based tests for the whole decision pipeline.
//!
//! The key soundness and completeness invariants checked on randomly
//! generated instances:
//!
//! * specialization pairs are always bag-contained (containment by
//!   construction survives the whole pipeline);
//! * all deciders (most-general probe / all probes, simplex / Fourier–Motzkin)
//!   agree on every instance;
//! * every non-containment verdict carries a counterexample bag that the
//!   independent Equation-2 evaluator confirms;
//! * bag containment implies set containment;
//! * a verdict of containment is never refuted by random-bag sampling;
//! * the 3-colorability reduction agrees with a direct graph search;
//! * the differential fuzzing oracle finds no disagreement on generated
//!   pairs, with identical outcomes across LP routes and thread counts.

use diophantus::fuzz::{check_pair, generate_case, FuzzConfig};
use diophantus::workloads::random::{
    inflated_pair, random_projection_free_cq, specialization_pair,
};
use diophantus::workloads::threecol::three_colorable_via_containment;
use diophantus::workloads::{refute_by_random_bags, Graph, QueryShape, RefutationConfig};
use diophantus::{
    set_containment, Algorithm, BagContainmentDecider, ConjunctiveQuery, FeasibilityEngine,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_shape() -> QueryShape {
    QueryShape {
        relations: vec![("R".to_string(), 2), ("S".to_string(), 1)],
        atom_occurrences: 3,
        head_variables: 2,
        existential_variables: 2,
        constants: 1,
        max_multiplicity: 2,
    }
}

fn deciders() -> Vec<BagContainmentDecider> {
    vec![
        BagContainmentDecider::new(Algorithm::MostGeneralProbe),
        BagContainmentDecider::new(Algorithm::MostGeneralProbe)
            .with_engine(FeasibilityEngine::FourierMotzkin),
        BagContainmentDecider::new(Algorithm::AllProbes),
    ]
}

/// Decides with every configured decider and asserts they agree; returns the
/// common verdict.
fn unanimous_verdict(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> bool {
    let verdicts: Vec<(String, bool)> = deciders()
        .iter()
        .map(|d| {
            let result = d.decide(containee, containing).expect("valid instance");
            if let Some(ce) = result.counterexample() {
                assert!(
                    ce.verify(containee, containing),
                    "unverifiable counterexample for {containee} vs {containing}"
                );
            }
            (format!("{d:?}"), result.holds())
        })
        .collect();
    let first = verdicts[0].1;
    for (name, verdict) in &verdicts {
        assert_eq!(*verdict, first, "decider {name} disagrees on {containee} vs {containing}");
    }
    first
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Specialisation pairs are bag-contained by construction.
    #[test]
    fn specialization_pairs_are_contained(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (containee, containing) = specialization_pair(&small_shape(), &mut rng);
        prop_assert!(unanimous_verdict(&containee, &containing));
    }

    /// All deciders agree on arbitrary (mostly non-contained) random pairs,
    /// counterexamples verify, and bag containment implies set containment.
    #[test]
    fn deciders_agree_on_random_pairs(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = small_shape();
        let containee = random_projection_free_cq("q_containee", &shape, &mut rng);
        let containing = random_projection_free_cq("q_containing", &shape, &mut rng);
        let bag = unanimous_verdict(&containee, &containing);
        let set = set_containment(&containee, &containing).holds();
        if bag {
            prop_assert!(set, "bag containment must imply set containment");
        }
    }

    /// Inflated pairs still produce unanimous, verified verdicts (often
    /// non-containment), and containment verdicts are never refuted by
    /// random-bag sampling.
    #[test]
    fn verdicts_are_consistent_with_random_refutation(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (containee, containing) = inflated_pair(&small_shape(), &mut rng);
        let verdict = unanimous_verdict(&containee, &containing);
        let refuted = refute_by_random_bags(
            &containee,
            &containing,
            RefutationConfig { attempts: 60, max_multiplicity: 4 },
            &mut rng,
        );
        if let Some(ce) = refuted {
            prop_assert!(!verdict, "a sampled violating bag contradicts a containment verdict");
            prop_assert!(ce.verify(&containee, &containing));
        }
    }

    /// The Theorem 5.4 reduction agrees with direct 3-colorability search on
    /// random graphs.
    #[test]
    fn three_coloring_reduction_agrees(seed in 0u64..10_000, n in 3usize..6, p in 0.2f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = Graph::random(n, p, &mut rng);
        let direct = graph.is_three_colorable();
        let via = three_colorable_via_containment(
            &graph,
            &BagContainmentDecider::new(Algorithm::MostGeneralProbe),
        );
        prop_assert_eq!(direct, via, "reduction disagrees on {:?}", graph);
    }

    /// Reflexivity: every projection-free query is bag-contained in itself.
    #[test]
    fn containment_is_reflexive(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = random_projection_free_cq("q", &small_shape(), &mut rng);
        prop_assert!(unanimous_verdict(&q, &q));
    }

    /// The differential fuzzing oracle on generated pairs: no disagreement
    /// between the MPI decider, the brute-force bag sweep, certificate
    /// replay and the set-containment necessary condition — and the whole
    /// outcome (verdict, certificate, database counts) is identical under
    /// `--lp-route simplex`/`bareiss` and jobs 1/2/4.
    #[test]
    fn fuzz_oracle_agrees_across_routes_and_jobs(seed in 0u64..10_000) {
        let case = generate_case(seed, 0);
        let db_seed = diophantus::fuzz::derive_seed(seed, u64::MAX);
        let mut reference = None;
        for jobs in [1usize, 2, 4] {
            for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::Bareiss] {
                let config = FuzzConfig { jobs, engine, samples: 8, ..FuzzConfig::default() };
                let outcome = check_pair(&case.containee, &case.containing, &config, db_seed);
                prop_assert!(
                    outcome.disagreement.is_none(),
                    "jobs={} engine={:?}: {:?}",
                    jobs,
                    engine,
                    outcome.disagreement
                );
                match &reference {
                    None => reference = Some(outcome),
                    Some(expected) => prop_assert_eq!(
                        expected,
                        &outcome,
                        "outcome diverged under jobs={} engine={:?}",
                        jobs,
                        engine
                    ),
                }
            }
        }
    }

    /// Transitivity on specialisation chains: σ2(σ1(q)) ⊑b σ1(q) ⊑b q, and the
    /// composed pair is also directly decided as contained.
    #[test]
    fn containment_along_specialisation_chains(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = small_shape();
        let (middle, top) = specialization_pair(&shape, &mut rng);
        // Specialise once more by merging the two head variables.
        let sigma = diophantus::cq::Substitution::from_pairs([(
            "x1".to_string(),
            diophantus::Term::var("x0"),
        )]);
        let bottom = middle.apply_substitution(&sigma).with_name("q_bottom");
        prop_assert!(unanimous_verdict(&bottom, &middle));
        prop_assert!(unanimous_verdict(&middle, &top));
        prop_assert!(unanimous_verdict(&bottom, &top));
    }
}
