//! Differential tests for the scratch-memory discipline.
//!
//! The zero-allocation probe loop reuses one [`ProbeScratch`] across every
//! probe a worker decides. Reuse is supposed to be **capacity-only**: a
//! probe decided through a warmed, shared scratch must produce the
//! bit-identical outcome — verdict, witness assignment, even the error — as
//! the same probe decided through fresh allocations. These tests pin that
//! equivalence over every workload family `diophantus gen` can emit and
//! every (algorithm, LP engine) combination, with the scratch deliberately
//! carried across probes, deciders and pairs so it is maximally "dirty"
//! when each comparison runs.

use diophantus::containment::{
    Algorithm, BagContainmentDecider, CompiledPair, FeasibilityEngine, ProbeScratch,
};
use diophantus::workloads::{generate_pairs, WorkloadKind};
use proptest::prelude::*;

/// One representative of every workload family (matching the suite's own
/// coverage list), at sizes small enough for per-probe differential runs.
const ALL_KINDS: [WorkloadKind; 9] = [
    WorkloadKind::Specialization { atoms: 4 },
    WorkloadKind::Inflated { atoms: 4 },
    WorkloadKind::Contained { atoms: 4 },
    WorkloadKind::Path { length: 2 },
    WorkloadKind::ExponentialMapping { mappings_log2: 1 },
    WorkloadKind::ThreeColorability { vertices: 4 },
    WorkloadKind::Chain { length: 3 },
    WorkloadKind::Star { rays: 3 },
    WorkloadKind::Clique { vertices: 3 },
];

/// Every algorithm × engine combination with a scratch-threaded hot path.
/// (Fourier–Motzkin ignores the scratch by design, so it adds nothing here.)
fn deciders() -> Vec<BagContainmentDecider> {
    let mut out = Vec::new();
    for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::Bareiss, FeasibilityEngine::Auto]
    {
        out.push(BagContainmentDecider::new(Algorithm::MostGeneralProbe).with_engine(engine));
        out.push(BagContainmentDecider::new(Algorithm::AllProbes).with_engine(engine));
    }
    out.push(BagContainmentDecider::new(Algorithm::GuessCheck { budget: 2_000 }));
    out
}

/// Compares the fresh-scratch route against the shared warmed scratch on
/// every probe of `pair` (capped so giant probe spaces stay differential
/// tests, not benchmarks). Errors must match too: a guess-and-check budget
/// blowup through recycled buffers is the same blowup.
fn assert_probe_parity(pair: &CompiledPair, warmed: &mut ProbeScratch) {
    for decider in deciders() {
        let probes = pair.probe_space().raw_len().min(32);
        for index in 0..probes {
            let Some(compiled) = pair.probe(index) else { continue };
            let fresh = decider.decide_probe(compiled);
            let reused = decider.decide_probe_in(compiled, warmed);
            assert_eq!(
                format!("{fresh:?}"),
                format!("{reused:?}"),
                "warmed scratch diverged from fresh allocation: {decider:?}, probe {index}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Warmed-scratch decisions are bit-identical to fresh-allocation
    /// decisions on every workload family, for every seed.
    #[test]
    fn warmed_scratch_is_bit_identical_to_fresh(kind_index in 0usize..ALL_KINDS.len(), seed in 0u64..10_000) {
        let kind = ALL_KINDS[kind_index];
        // ONE scratch across both pairs and all deciders: by the time the
        // last comparison runs it has been through LP tableaus and
        // enumeration buffers of entirely different shapes.
        let mut warmed = ProbeScratch::new();
        for pair in generate_pairs(kind, 2, seed) {
            let compiled = CompiledPair::new(pair.containee, pair.containing)
                .expect("generated workloads are decidable");
            assert_probe_parity(&compiled, &mut warmed);
        }
    }
}

/// The whole-pair entry point (which holds one scratch across its probe
/// loop) agrees with probe-by-probe fresh decisions on every family — a
/// deterministic spot check that needs no proptest shrinking to debug.
#[test]
fn decide_pair_matches_fresh_probe_decisions() {
    for kind in ALL_KINDS {
        for pair in generate_pairs(kind, 1, 7) {
            let compiled = CompiledPair::new(pair.containee.clone(), pair.containing.clone())
                .expect("generated workloads are decidable");
            for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::Bareiss] {
                let decider = BagContainmentDecider::new(Algorithm::AllProbes).with_engine(engine);
                let verdict = decider.decide_pair(&compiled).expect("decidable");
                // Re-derive the verdict with per-probe fresh scratches: the
                // first probe with a witness decides the pair.
                let mut witnessed = None;
                for index in 0..compiled.probe_space().raw_len() {
                    let Some(probe) = compiled.probe(index) else { continue };
                    if let Some(assignment) = decider.decide_probe(probe).expect("decidable") {
                        witnessed = Some(assignment);
                        break;
                    }
                }
                assert_eq!(
                    verdict.holds(),
                    witnessed.is_none(),
                    "{} under {engine:?}: pair verdict diverges from fresh probe sweep",
                    pair.label
                );
            }
        }
    }
}
