//! Property-based tests for the exact arithmetic substrate.
//!
//! Every law is checked against `u128`/`i128` ground truth where the values
//! fit, and against algebraic identities (ring/field axioms, division
//! invariants) for values that do not fit machine integers.

use dioph_arith::{Integer, Natural, Rational};
use proptest::prelude::*;

/// Strategy for naturals with up to ~256 bits, biased towards interesting
/// small values and limb boundaries.
fn natural_strategy() -> impl Strategy<Value = Natural> {
    prop_oneof![
        3 => any::<u64>().prop_map(Natural::from),
        2 => any::<u128>().prop_map(Natural::from),
        1 => Just(Natural::zero()),
        1 => Just(Natural::one()),
        1 => Just(Natural::from(u64::MAX)),
        3 => proptest::collection::vec(any::<u64>(), 1..5).prop_map(Natural::from_limbs),
    ]
}

/// Strategy for `u128` values hugging the `u64` boundary from both sides —
/// exactly where the hybrid representation switches between its inline and
/// limb forms.
fn boundary_u128() -> impl Strategy<Value = u128> {
    let b = u64::MAX as u128;
    prop_oneof![
        (0u128..=8).prop_map(move |d| b - d),
        (1u128..=8).prop_map(move |d| b + d),
        Just(b),
        Just(b + 1),
        0u128..=16,
    ]
}

/// Strategy for `i128` values hugging both `i64` boundaries.
fn boundary_i128() -> impl Strategy<Value = i128> {
    let lo = i64::MIN as i128;
    let hi = i64::MAX as i128;
    prop_oneof![
        (0i128..=8).prop_map(move |d| hi - d),
        (1i128..=8).prop_map(move |d| hi + d),
        (0i128..=8).prop_map(move |d| lo + d),
        (1i128..=8).prop_map(move |d| lo - d),
        -16i128..=16,
    ]
}

/// Asserts that a natural equals its `u128` ground truth **and** is stored
/// canonically: the inline form exactly when the value fits a word.
fn assert_canonical_natural(value: &Natural, expect: u128) {
    assert_eq!(value, &Natural::from(expect));
    if expect <= u64::MAX as u128 {
        assert_eq!(value.to_u64(), Some(expect as u64), "must demote to the inline form");
        assert!(value.limbs().len() <= 1);
    } else {
        assert_eq!(value.to_u64(), None, "must promote to the limb form");
        assert!(value.limbs().len() >= 2);
    }
}

/// Asserts that an integer equals its `i128` ground truth **and** is stored
/// canonically: the inline form exactly when the value fits `i64`.
fn assert_canonical_integer(value: &Integer, expect: i128) {
    assert_eq!(value, &Integer::from(expect));
    if i64::try_from(expect).is_ok() {
        assert_eq!(value.to_i64(), Some(expect as i64), "must demote to the inline form");
    } else {
        assert_eq!(value.to_i64(), None, "must promote to the big form");
    }
}

fn integer_strategy() -> impl Strategy<Value = Integer> {
    (natural_strategy(), any::<bool>()).prop_map(|(n, neg)| {
        let i = Integer::from(n);
        if neg {
            -i
        } else {
            i
        }
    })
}

fn rational_strategy() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1..10_000i64).prop_map(|(n, d)| Rational::from_i64s(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---------------- Natural: agreement with u128 ----------------

    #[test]
    fn natural_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = Natural::from(a as u128 + b as u128);
        prop_assert_eq!(&Natural::from(a) + &Natural::from(b), expect);
    }

    #[test]
    fn natural_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let expect = Natural::from(a as u128 * b as u128);
        prop_assert_eq!(&Natural::from(a) * &Natural::from(b), expect);
    }

    #[test]
    fn natural_div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = Natural::from(a).div_rem(&Natural::from(b));
        prop_assert_eq!(q, Natural::from(a / b));
        prop_assert_eq!(r, Natural::from(a % b));
    }

    #[test]
    fn natural_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(Natural::from(a).cmp(&Natural::from(b)), a.cmp(&b));
    }

    // ---------------- Natural: algebraic laws on big values ----------------

    #[test]
    fn natural_add_commutative_associative(a in natural_strategy(), b in natural_strategy(), c in natural_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn natural_mul_commutative_associative_distributive(a in natural_strategy(), b in natural_strategy(), c in natural_strategy()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn natural_sub_inverts_add(a in natural_strategy(), b in natural_strategy()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn natural_division_invariant(a in natural_strategy(), b in natural_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn natural_gcd_laws(a in natural_strategy(), b in natural_strategy()) {
        let g = a.gcd(&b);
        prop_assert_eq!(&g, &b.gcd(&a));
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
        // gcd * lcm == a * b
        prop_assert_eq!(&a.lcm(&b) * &g, &a * &b);
    }

    #[test]
    fn natural_shift_roundtrip(a in natural_strategy(), s in 0usize..200) {
        prop_assert_eq!(&(&a << s) >> s, a.clone());
        // Shifting left by s multiplies by 2^s.
        prop_assert_eq!(&a << s, &a * &Natural::from(2u64).pow(s as u64));
    }

    #[test]
    fn natural_pow_law(a in any::<u32>(), e in 0u64..6, f in 0u64..6) {
        let a = Natural::from(a);
        prop_assert_eq!(&a.pow(e) * &a.pow(f), a.pow(e + f));
    }

    #[test]
    fn natural_decimal_roundtrip(a in natural_strategy()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(s.parse::<Natural>().unwrap(), a);
    }

    // ---------------- Integer ----------------

    #[test]
    fn integer_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ia, ib) = (Integer::from(a), Integer::from(b));
        prop_assert_eq!(&ia + &ib, Integer::from(a as i128 + b as i128));
        prop_assert_eq!(&ia - &ib, Integer::from(a as i128 - b as i128));
        prop_assert_eq!(&ia * &ib, Integer::from(a as i128 * b as i128));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn integer_div_rem_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = Integer::from(a).div_rem(&Integer::from(b));
        prop_assert_eq!(q, Integer::from(a as i128 / b as i128));
        prop_assert_eq!(r, Integer::from(a as i128 % b as i128));
    }

    #[test]
    fn integer_ring_laws(a in integer_strategy(), b in integer_strategy(), c in integer_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a + &(-&a), Integer::zero());
        prop_assert_eq!(&a * &Integer::one(), a.clone());
    }

    #[test]
    fn integer_division_invariant(a in integer_strategy(), b in integer_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.magnitude() < b.magnitude());
        // Remainder carries the sign of the dividend (or is zero).
        if !r.is_zero() {
            prop_assert_eq!(r.sign(), a.sign());
        }
    }

    // ---------------- Rational ----------------

    #[test]
    fn rational_field_laws(a in rational_strategy(), b in rational_strategy(), c in rational_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
            prop_assert_eq!(&(&b / &a) * &a, b.clone());
        }
    }

    #[test]
    fn rational_is_reduced(n in any::<i64>(), d in 1..10_000i64) {
        let r = Rational::from_i64s(n, d);
        let g = r.numer().magnitude().gcd(r.denom());
        prop_assert!(g.is_one() || r.is_zero());
        prop_assert!(!r.denom().is_zero());
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in rational_strategy(), b in rational_strategy()) {
        // f64 comparison agrees whenever the difference is not microscopic.
        let (fa, fb) = (a.to_f64_lossy(), b.to_f64_lossy());
        if (fa - fb).abs() > 1e-6 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(a in rational_strategy()) {
        let fl = Rational::from(a.floor());
        let ce = Rational::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn rational_parse_roundtrip(a in rational_strategy()) {
        prop_assert_eq!(a.to_string().parse::<Rational>().unwrap(), a);
    }

    // ---------------- Hybrid representation: differential suites ----------------
    //
    // The hybrid tower must be *bit-identical* to a big-only build. Since the
    // representation is canonical, value equality (`Eq` compares canonical
    // forms) plus explicit canonicity checks give exactly that: the suites
    // below drive random operations across the i64/u64 promotion boundary and
    // compare against wide-machine ground truth, and route the *same* values
    // through the limb path (via scaling homomorphisms and unreduced big
    // constructions) to confirm both paths land on the same canonical object.

    #[test]
    fn natural_boundary_ops_are_canonical(a in boundary_u128(), b in boundary_u128()) {
        let (na, nb) = (Natural::from(a), Natural::from(b));
        assert_canonical_natural(&(&na + &nb), a + b);
        if a >= b {
            assert_canonical_natural(&(&na - &nb), a - b);
        } else {
            prop_assert_eq!(na.checked_sub(&nb), None);
        }
        if let Some(p) = a.checked_mul(b) {
            assert_canonical_natural(&(&na * &nb), p);
        }
        if let (Some(qe), Some(re)) = (a.checked_div(b), a.checked_rem(b)) {
            let (q, r) = na.div_rem(&nb);
            assert_canonical_natural(&q, qe);
            assert_canonical_natural(&r, re);
        }
        prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
    }

    #[test]
    fn natural_small_and_limb_paths_agree_via_scaling(a in any::<u64>(), b in any::<u64>(), s in 64usize..130) {
        // Scaling is a homomorphism for +, gcd and *: computing on shifted
        // operands forces the limb algorithms, and the result must be the
        // shifted small-path result, bit-identically.
        let (na, nb) = (Natural::from(a), Natural::from(b));
        let (ba, bb) = (&na << s, &nb << s);
        prop_assert_eq!(&ba + &bb, &(&na + &nb) << s);
        prop_assert_eq!(ba.gcd(&bb), &na.gcd(&nb) << s);
        prop_assert_eq!(&ba * &nb, &(&na * &nb) << s);
        if b != 0 {
            let (q_big, r_big) = ba.div_rem(&bb);
            let (q, r) = na.div_rem(&nb);
            prop_assert_eq!(q_big, q);
            prop_assert_eq!(r_big, &r << s);
        }
        prop_assert_eq!(ba.cmp(&bb), na.cmp(&nb));
    }

    #[test]
    fn integer_boundary_ops_are_canonical(a in boundary_i128(), b in boundary_i128()) {
        let (ia, ib) = (Integer::from(a), Integer::from(b));
        assert_canonical_integer(&(&ia + &ib), a + b);
        assert_canonical_integer(&(&ia - &ib), a - b);
        if let Some(p) = a.checked_mul(b) {
            assert_canonical_integer(&(&ia * &ib), p);
        }
        if b != 0 {
            let (q, r) = ia.div_rem(&ib);
            assert_canonical_integer(&q, a / b);
            assert_canonical_integer(&r, a % b);
        }
        assert_canonical_integer(&(-&ia), -a);
        assert_canonical_integer(&ia.abs(), a.abs());
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }

    #[test]
    fn rational_fast_and_big_paths_are_bit_identical(
        an in any::<i64>(), ad in 1..10_000i64,
        bn in any::<i64>(), bd in 1..10_000i64,
    ) {
        // The same values built with machine-word components (fast path
        // eligible) and with hugely scaled, unreduced components (big path
        // only) must produce equal — hence canonically identical — results
        // for every field operation.
        let scale = Natural::from(2u64).pow(90);
        let big = |n: i64, d: i64| {
            Rational::new(
                &Integer::from(n) * &Integer::from(scale.clone()),
                &Natural::from(d.unsigned_abs()) * &scale,
            )
        };
        let (fa, fb) = (Rational::from_i64s(an, ad), Rational::from_i64s(bn, bd));
        let (ba, bb) = (big(an, ad), big(bn, bd));
        prop_assert_eq!(&fa, &ba);
        prop_assert_eq!(&fa + &fb, &ba + &bb);
        prop_assert_eq!(&fa - &fb, &ba - &bb);
        prop_assert_eq!(&fa * &fb, &ba * &bb);
        if bn != 0 {
            prop_assert_eq!(&fa / &fb, &ba / &bb);
        }
        prop_assert_eq!(fa.cmp(&fb), ba.cmp(&bb));
        // Results are reduced regardless of route.
        let sum = &fa + &fb;
        prop_assert!(sum.is_zero() || sum.numer().gcd(&Integer::from(sum.denom().clone())).is_one());
    }

    #[test]
    fn rational_boundary_numerators_survive_overflowing_cross_sums(
        an in boundary_i128(), bn in boundary_i128(), d in 1..=u64::MAX,
    ) {
        // Numerators just outside i64 force the big path; just inside allow
        // the fast path whose cross sums may overflow i128 and fall back.
        // Either way the result must match exact integer arithmetic.
        let (a, b) = (Rational::new(Integer::from(an), Natural::from(d)),
                      Rational::new(Integer::from(bn), Natural::from(d)));
        let sum = &a + &b;
        prop_assert_eq!(sum, Rational::new(Integer::from(an + bn), Natural::from(d)));
        let product = &a * &b;
        prop_assert_eq!(
            product,
            Rational::new(
                &Integer::from(an) * &Integer::from(bn),
                &Natural::from(d) * &Natural::from(d),
            )
        );
    }
}
