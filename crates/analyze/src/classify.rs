//! The fragment classifier: the first row of the ROADMAP's
//! decidability-frontier matrix, computed statically per pair.
//!
//! Bag containment of conjunctive queries is open in general and
//! undecidable with inequalities (Jayram–Kolaitis–Vee, PODS 2006); the
//! source paper decides the projection-free-containee fragment. The
//! classifier places each `(containee, containing)` pair in the strongest
//! regime known to apply:
//!
//! | label | condition | what is decidable |
//! |---|---|---|
//! | `paper-decidable` | containee non-empty, safe, projection-free | bag containment (Theorem 4.1); bag-set coincides with set (Section 3); set (Chandra–Merlin) |
//! | `bag-set` | containee has projections; both queries safe and non-empty; all multiplicities 1 | the pair is a pure "real conjunctive query" instance: bag-set *equivalence* is decidable (Chaudhuri–Vardi isomorphism); containment is the open homomorphism-domination frontier; set containment is a decidable necessary condition |
//! | `set-semantics-only` | containee has projections and bag multiplicities are present | only set containment (Chandra–Merlin) is known decidable; bag containment is at the open frontier |
//! | `unknown-frontier` | a query is unsafe or the containee is empty | no implemented criterion applies |

use core::fmt;

use dioph_cq::ConjunctiveQuery;

/// The decidability-matrix cell a pair falls in. See the module
/// documentation for the exact cascade.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FragmentClass {
    /// The source paper's fragment: bag containment is decidable by this
    /// repository's engine (`CompiledPair::new` accepts the pair).
    PaperDecidable,
    /// A multiplicity-free pair with a projection-bearing containee:
    /// bag-set equivalence is decidable (Chaudhuri–Vardi), bag-set
    /// containment is the open homomorphism-domination problem.
    BagSet,
    /// Only Chandra–Merlin set containment is known decidable; the bag
    /// question is at the open frontier.
    SetSemanticsOnly,
    /// Malformed for every implemented criterion (unsafe query or empty
    /// containee body).
    UnknownFrontier,
}

impl FragmentClass {
    /// The stable kebab-case label used in JSON output and docs.
    pub fn label(self) -> &'static str {
        match self {
            FragmentClass::PaperDecidable => "paper-decidable",
            FragmentClass::BagSet => "bag-set",
            FragmentClass::SetSemanticsOnly => "set-semantics-only",
            FragmentClass::UnknownFrontier => "unknown-frontier",
        }
    }

    /// Whether this repository's bag-containment engine accepts the pair
    /// (`diophantus decide` succeeds without a fragment error).
    pub fn engine_decidable(self) -> bool {
        matches!(self, FragmentClass::PaperDecidable)
    }
}

impl fmt::Display for FragmentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

fn multiplicity_free(query: &ConjunctiveQuery) -> bool {
    query.body().all(|(_, m)| m == 1)
}

/// Classifies a `(containee, containing)` pair into its decidability-matrix
/// cell. Purely syntactic — nothing is compiled or decided.
///
/// ```
/// use dioph_analyze::{classify_pair, FragmentClass};
/// use dioph_cq::parse_query;
///
/// let q1 = parse_query("q1(x1, x2) <- P^3(x2, x2), R^2(x1, x2)").unwrap();
/// let q3 = parse_query("q3(x1, x2) <- P(x2, y4), R^2(x1, y1)").unwrap();
/// assert_eq!(classify_pair(&q1, &q3), FragmentClass::PaperDecidable);
/// assert_eq!(classify_pair(&q3, &q1), FragmentClass::SetSemanticsOnly);
/// ```
pub fn classify_pair(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> FragmentClass {
    // The engine's own admission check (`validate_containee`) only inspects
    // the containee, so a well-formed containee makes the pair
    // paper-decidable regardless of the containing query's shape — the
    // containing side of `⊑b` may have projections (the paper's Section 2
    // example pairs q1 against the projection-bearing q3).
    let containee_well_formed = containee.distinct_atom_count() > 0 && containee.is_safe();
    if containee_well_formed && containee.is_projection_free() {
        return FragmentClass::PaperDecidable;
    }
    let containing_well_formed = containing.distinct_atom_count() > 0 && containing.is_safe();
    if containee_well_formed && containing_well_formed {
        if multiplicity_free(containee) && multiplicity_free(containing) {
            FragmentClass::BagSet
        } else {
            FragmentClass::SetSemanticsOnly
        }
    } else {
        FragmentClass::UnknownFrontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    #[test]
    fn paper_fragment_mirrors_the_engine_admission_check() {
        let containee = q("q1(x1, x2) <- P^3(x2, x2), R^2(x1, x2)");
        let containing = q("q3(x1, x2) <- P(x2, y4), P^2(y2, y3), R^2(x1, y1), R(x1, y2)");
        assert_eq!(classify_pair(&containee, &containing), FragmentClass::PaperDecidable);
        assert!(classify_pair(&containee, &containing).engine_decidable());
        // The engine agrees: the pair compiles.
        assert!(dioph_containment::CompiledPair::new(containee, containing.clone()).is_ok());
        // …and the reverse direction does not.
        let reversed = classify_pair(&containing, &q("q1(x1, x2) <- P^3(x2, x2), R^2(x1, x2)"));
        assert_eq!(reversed, FragmentClass::SetSemanticsOnly);
        assert!(!reversed.engine_decidable());
    }

    #[test]
    fn multiplicity_free_projection_pairs_are_bag_set() {
        // A Boolean graph query against a ground triangle: projections on
        // the containee, no multiplicities anywhere — the Chaudhuri–Vardi
        // real-CQ shape.
        let graph = q("qg() <- E(v0, v1), E(v1, v0)");
        let triangle = q("qt() <- E('a', 'b'), E('b', 'a')");
        assert_eq!(classify_pair(&graph, &triangle), FragmentClass::BagSet);
        // One bag multiplicity anywhere demotes the pair to set-only.
        let bag_triangle = q("qt() <- E^2('a', 'b'), E('b', 'a')");
        assert_eq!(classify_pair(&graph, &bag_triangle), FragmentClass::SetSemanticsOnly);
        let bag_graph = q("qg() <- E^2(v0, v1), E(v1, v0)");
        assert_eq!(classify_pair(&bag_graph, &triangle), FragmentClass::SetSemanticsOnly);
    }

    #[test]
    fn pathological_pairs_land_on_the_frontier() {
        let ok = q("p(x) <- R(x, x)");
        // Unsafe containee.
        assert_eq!(classify_pair(&q("u(x, z) <- R(x, x)"), &ok), FragmentClass::UnknownFrontier);
        // Empty containee body.
        assert_eq!(classify_pair(&q("e() <- true"), &ok), FragmentClass::UnknownFrontier);
        // Unsafe containing query with a projection-bearing containee.
        assert_eq!(
            classify_pair(&q("c(x) <- R(x, y)"), &q("u(x, z) <- R(x, x)")),
            FragmentClass::UnknownFrontier
        );
        // …but an unsafe containing query with a paper-fragment containee
        // stays paper-decidable (the engine never inspects the right side).
        assert_eq!(classify_pair(&ok, &q("u(x, z) <- R(x, x)")), FragmentClass::PaperDecidable);
        // An empty containing body is fine for set semantics.
        assert_eq!(
            classify_pair(&q("c(x) <- R(x, y)"), &q("t() <- true")),
            FragmentClass::UnknownFrontier,
            "empty containing body has no canonical instance to map into"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FragmentClass::PaperDecidable.label(), "paper-decidable");
        assert_eq!(FragmentClass::BagSet.label(), "bag-set");
        assert_eq!(FragmentClass::SetSemanticsOnly.label(), "set-semantics-only");
        assert_eq!(FragmentClass::UnknownFrontier.to_string(), "unknown-frontier");
    }
}
