//! Shared row storage for the LP engines: dense and sparse coefficient rows
//! behind one abstraction, generic over the coefficient type.
//!
//! The strict homogeneous systems of Theorem 4.1 are mostly zeros: a row
//! `e − e_i` touches only the unknowns appearing in two monomials, and the
//! phase-1 simplex tableau built from it adds one surplus and at most one
//! artificial coefficient to each row — a handful of non-zeros in a tableau
//! whose width grows with the row count. [`GenSparseRow`] stores exactly the
//! non-zero entries (sorted by column); [`GenRow`] lets the pivot/eliminate/
//! combine routines run unchanged over dense and sparse rows, with
//! zero-skipping coming from the representation instead of per-loop checks.
//!
//! Two instantiations are used:
//!
//! * [`Row`] (`GenRow<Rational>`) — the exact rational rows of the
//!   [`simplex`](crate::simplex) and Fourier–Motzkin engines;
//! * [`IntRow`] (`GenRow<Integer>`) — the integer rows of the fraction-free
//!   [`bareiss`](crate::bareiss) kernel, where every intermediate value stays
//!   an integer and division happens once per row, exactly.
//!
//! A sparse row that fills in past half its width during elimination is
//! densified on the spot, so the worst case degrades to the dense algorithm
//! instead of to a slower sparse one. The converse transition is
//! [`GenRow::resparsify`]: elimination can also *cancel* fill-in, and the
//! engines call it at pivot boundaries so a row whose density receded below
//! the threshold goes back to paying for its non-zeros only (without it the
//! densify ratchet was one-way and later passes scanned dense zeros).

use core::fmt;
use core::ops::Neg;

use dioph_arith::{Integer, Rational};

/// The coefficient interface the row machinery needs: a cloneable value with
/// an additive zero, a sign, and negation. Implemented by [`Rational`] and
/// [`Integer`].
pub trait Coeff:
    Clone + PartialEq + Eq + Default + fmt::Display + fmt::Debug + Neg<Output = Self>
{
    /// `true` iff the value is the additive zero ([`Default`] must produce
    /// that zero).
    fn is_zero(&self) -> bool;
    /// `true` iff the value is strictly negative.
    fn is_negative(&self) -> bool;
}

impl Coeff for Rational {
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
    fn is_negative(&self) -> bool {
        Rational::is_negative(self)
    }
}

impl Coeff for Integer {
    fn is_zero(&self) -> bool {
        Integer::is_zero(self)
    }
    fn is_negative(&self) -> bool {
        Integer::is_negative(self)
    }
}

/// A sparse coefficient row: strictly increasing column indices, no stored
/// zeros.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GenSparseRow<T> {
    pub(crate) dim: usize,
    pub(crate) entries: Vec<(usize, T)>,
}

/// The rational instantiation of [`GenSparseRow`] (the simplex and
/// Fourier–Motzkin rows).
pub type SparseRow = GenSparseRow<Rational>;

impl<T: Coeff> GenSparseRow<T> {
    /// Builds a sparse row over `dim` columns from (column, value) entries.
    ///
    /// # Panics
    /// Panics if the entries are not strictly increasing by column, mention a
    /// column `>= dim`, or contain an explicit zero.
    pub fn new(dim: usize, entries: Vec<(usize, T)>) -> Self {
        let mut prev: Option<usize> = None;
        for (col, value) in &entries {
            assert!(*col < dim, "sparse entry column {col} out of bounds for dimension {dim}");
            assert!(prev.is_none_or(|p| p < *col), "sparse entries must be strictly increasing");
            assert!(!value.is_zero(), "sparse rows must not store zeros");
            prev = Some(*col);
        }
        GenSparseRow { dim, entries }
    }

    /// Number of columns.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries, sorted by column.
    pub fn entries(&self) -> &[(usize, T)] {
        &self.entries
    }

    fn get(&self, col: usize) -> Option<&T> {
        self.entries.binary_search_by_key(&col, |(c, _)| *c).ok().map(|idx| &self.entries[idx].1)
    }

    fn take(&mut self, col: usize) -> T {
        match self.entries.binary_search_by_key(&col, |(c, _)| *c) {
            Ok(idx) => self.entries.remove(idx).1,
            Err(_) => T::default(),
        }
    }

    pub(crate) fn to_dense(&self) -> Vec<T> {
        let mut out = vec![T::default(); self.dim]; // alloc-ok: densification
        for (col, value) in &self.entries {
            out[*col] = value.clone();
        }
        out
    }
}

/// A coefficient row in either representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenRow<T> {
    /// Every coefficient stored, zeros included.
    Dense(Vec<T>),
    /// Only the non-zero coefficients stored.
    Sparse(GenSparseRow<T>),
}

/// The exact rational row of the simplex and Fourier–Motzkin engines.
pub type Row = GenRow<Rational>;

/// The integer row of the fraction-free Bareiss kernel.
pub type IntRow = GenRow<Integer>;

/// A sparse row is only worth its bookkeeping while it stays under half
/// full; past that the row is densified (and re-sparsified once it recedes,
/// see [`GenRow::resparsify`]).
const DENSIFY_NUMERATOR: usize = 1;
const DENSIFY_DENOMINATOR: usize = 2;

/// `true` iff a row with `nnz` non-zeros over `dim` columns belongs in the
/// sparse representation.
pub(crate) fn sparse_is_worth_it(nnz: usize, dim: usize) -> bool {
    nnz * DENSIFY_DENOMINATOR <= dim * DENSIFY_NUMERATOR
}

impl<T: Coeff> GenRow<T> {
    /// Builds a dense row.
    pub fn dense(coeffs: Vec<T>) -> Self {
        GenRow::Dense(coeffs)
    }

    /// Builds a sparse row (see [`GenSparseRow::new`] for the invariants).
    pub fn sparse(dim: usize, entries: Vec<(usize, T)>) -> Self {
        GenRow::Sparse(GenSparseRow::new(dim, entries))
    }

    /// Picks a representation for the given entries: sparse while the row is
    /// at most half non-zero, dense otherwise.
    ///
    /// # Panics
    /// Panics if the entries violate the sparse-row invariants (see
    /// [`GenSparseRow::new`]) — enforced on *both* sides of the density
    /// threshold, so a duplicate column can never silently overwrite a
    /// coefficient on the dense path.
    pub fn auto(dim: usize, entries: Vec<(usize, T)>) -> Self {
        let sparse = GenSparseRow::new(dim, entries);
        if sparse_is_worth_it(sparse.nnz(), dim) {
            GenRow::Sparse(sparse)
        } else {
            let mut out = vec![T::default(); dim]; // alloc-ok: densification
            for (col, value) in sparse.entries {
                out[col] = value;
            }
            GenRow::Dense(out)
        }
    }

    /// Builds a row from a dense slice, choosing the representation by the
    /// slice's density.
    pub fn from_dense_auto(coeffs: &[T]) -> Self {
        let entries: Vec<(usize, T)> = coeffs
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_zero())
            .map(|(i, v)| (i, v.clone()))
            .collect();
        GenRow::auto(coeffs.len(), entries)
    }

    /// Number of columns.
    pub fn dim(&self) -> usize {
        match self {
            GenRow::Dense(v) => v.len(),
            GenRow::Sparse(s) => s.dim,
        }
    }

    /// Number of non-zero coefficients.
    pub fn nnz(&self) -> usize {
        match self {
            GenRow::Dense(v) => v.iter().filter(|x| !x.is_zero()).count(),
            GenRow::Sparse(s) => s.nnz(),
        }
    }

    /// The coefficient at `col`; `None` means zero.
    pub fn get(&self, col: usize) -> Option<&T> {
        match self {
            GenRow::Dense(v) => {
                let value = &v[col];
                if value.is_zero() {
                    None
                } else {
                    Some(value)
                }
            }
            GenRow::Sparse(s) => s.get(col),
        }
    }

    /// Removes and returns the coefficient at `col` (zero if absent).
    pub fn take(&mut self, col: usize) -> T {
        match self {
            GenRow::Dense(v) => core::mem::take(&mut v[col]),
            GenRow::Sparse(s) => s.take(col),
        }
    }

    /// Iterates the non-zero coefficients in increasing column order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        // Both arms produce strictly increasing columns, which the sparse
        // merges in the elimination kernels rely on.
        match self {
            GenRow::Dense(v) => RowIter::Dense(v.iter().enumerate()),
            GenRow::Sparse(s) => RowIter::Sparse(s.entries.iter()),
        }
    }

    /// `true` iff every coefficient is zero.
    pub fn is_zero_row(&self) -> bool {
        self.iter_nonzero().next().is_none()
    }

    /// Negates every coefficient in place, reusing allocations.
    pub fn negate(&mut self) {
        match self {
            GenRow::Dense(v) => {
                for value in v.iter_mut() {
                    let taken = core::mem::take(value);
                    *value = -taken;
                }
            }
            GenRow::Sparse(s) => {
                for (_, value) in s.entries.iter_mut() {
                    let taken = core::mem::take(value);
                    *value = -taken;
                }
            }
        }
    }

    /// Moves a dense row back to the sparse representation when its density
    /// has receded to the sparse side of the threshold. Elimination both
    /// creates and *cancels* fill-in; without this the densification in
    /// `eliminate` is a one-way ratchet and later passes scan dense zeros
    /// forever. The engines call it at pivot boundaries (once per updated
    /// row per pivot), so the scan amortises against the elimination that
    /// just walked the same row.
    pub fn resparsify(&mut self) {
        if let GenRow::Dense(v) = self {
            let dim = v.len();
            let nnz = v.iter().filter(|x| !x.is_zero()).count();
            if sparse_is_worth_it(nnz, dim) {
                let entries: Vec<(usize, T)> = v
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, x)| !x.is_zero())
                    .map(|(i, x)| (i, core::mem::take(x)))
                    .collect();
                *self = GenRow::Sparse(GenSparseRow { dim, entries });
            }
        }
    }

    /// `true` iff the representation matches the density threshold: sparse
    /// rows hold at most half their width in non-zeros, dense rows more.
    /// This is the invariant `auto` establishes and
    /// `eliminate`/[`Self::resparsify`] maintain (asserted by the proptests).
    pub fn representation_is_canonical(&self) -> bool {
        match self {
            GenRow::Dense(_) => !sparse_is_worth_it(self.nnz(), self.dim()),
            GenRow::Sparse(s) => sparse_is_worth_it(s.nnz(), s.dim),
        }
    }

    /// A dense copy of the coefficients (used by displays and tests).
    pub fn to_dense_vec(&self) -> Vec<T> {
        match self {
            GenRow::Dense(v) => v.clone(),
            GenRow::Sparse(s) => s.to_dense(),
        }
    }
}

impl Row {
    /// Divides every non-zero coefficient by `divisor` in place (the
    /// normalisation half of a pivot).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn scale_div(&mut self, divisor: &Rational) {
        match self {
            GenRow::Dense(v) => {
                for value in v.iter_mut() {
                    if !value.is_zero() {
                        *value = &*value / divisor;
                    }
                }
            }
            GenRow::Sparse(s) => {
                for (_, value) in s.entries.iter_mut() {
                    *value = &*value / divisor;
                }
            }
        }
    }

    /// The shared elimination routine: `self -= factor * src`, skipping the
    /// column `skip` (the pivot column, whose new value the caller already
    /// knows to be zero). A sparse row that fills in past the densify
    /// threshold is converted to dense here.
    pub fn eliminate(&mut self, factor: &Rational, src: &Row, skip: usize) {
        let mut spare = Vec::new(); // alloc-ok: convenience wrapper; hot loops use eliminate_with
        self.eliminate_with(factor, src, skip, &mut spare);
    }

    /// [`Self::eliminate`] with a caller-provided merge buffer: the sparse
    /// merge writes into `spare` and swaps it with the row's entry storage,
    /// so a buffer threaded through a pivot loop makes every elimination
    /// allocation-free in the steady state. On return `spare` holds the
    /// row's *previous* entries (cleared on next use).
    pub fn eliminate_with(
        &mut self,
        factor: &Rational,
        src: &Row,
        skip: usize,
        spare: &mut Vec<(usize, Rational)>,
    ) {
        match self {
            GenRow::Dense(v) => {
                for (col, coeff) in src.iter_nonzero() {
                    if col == skip {
                        continue;
                    }
                    let delta = factor * coeff;
                    v[col] -= &delta;
                }
            }
            GenRow::Sparse(s) => {
                merge_sparse(
                    spare,
                    &s.entries,
                    src,
                    skip,
                    Rational::clone,
                    |vs| -(factor * vs),
                    |vt, vs| vt - &(factor * vs),
                );
                core::mem::swap(&mut s.entries, spare);
                if !sparse_is_worth_it(s.entries.len(), s.dim) {
                    *self = GenRow::Dense(s.to_dense());
                }
            }
        }
    }

    /// The shared combination routine: `a_coeff * a + b_coeff * b` as a new
    /// row (the Fourier–Motzkin pair step). Exact zeros produced by
    /// cancellation are dropped.
    ///
    /// # Panics
    /// Panics if the rows have different dimensions.
    pub fn linear_combination(a_coeff: &Rational, a: &Row, b_coeff: &Rational, b: &Row) -> Row {
        assert_eq!(a.dim(), b.dim(), "row dimension mismatch in linear combination");
        let mut entries: Vec<(usize, Rational)> = Vec::with_capacity(a.nnz() + b.nnz());
        let mut ia = a.iter_nonzero().peekable();
        let mut ib = b.iter_nonzero().peekable();
        loop {
            let value = match (ia.peek(), ib.peek()) {
                (None, None) => break,
                (Some(&(ca, va)), Some(&(cb, vb))) if ca == cb => {
                    let v = &(a_coeff * va) + &(b_coeff * vb);
                    ia.next();
                    ib.next();
                    (ca, v)
                }
                (Some(&(ca, va)), Some(&(cb, _))) if ca < cb => {
                    ia.next();
                    (ca, a_coeff * va)
                }
                (Some(_), Some(&(cb, vb))) => {
                    ib.next();
                    (cb, b_coeff * vb)
                }
                (Some(&(ca, va)), None) => {
                    ia.next();
                    (ca, a_coeff * va)
                }
                (None, Some(&(cb, vb))) => {
                    ib.next();
                    (cb, b_coeff * vb)
                }
            };
            if !value.1.is_zero() {
                entries.push(value);
            }
        }
        Row::auto(a.dim(), entries)
    }

    /// Dot product with a dense point, skipping the column `skip` (pass
    /// `usize::MAX` — or any column `>= dim` — to skip nothing). This is the
    /// back-substitution kernel of Fourier–Motzkin.
    pub fn dot_skip(&self, point: &[Rational], skip: usize) -> Rational {
        debug_assert_eq!(point.len(), self.dim(), "dot product dimension mismatch");
        let mut acc = Rational::zero();
        for (col, coeff) in self.iter_nonzero() {
            if col == skip || point[col].is_zero() {
                continue;
            }
            acc += &(coeff * &point[col]);
        }
        acc
    }
}

/// Iterator over the non-zero entries of either representation.
enum RowIter<'a, T> {
    Dense(core::iter::Enumerate<core::slice::Iter<'a, T>>),
    Sparse(core::slice::Iter<'a, (usize, T)>),
}

impl<'a, T: Coeff> Iterator for RowIter<'a, T> {
    type Item = (usize, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RowIter::Dense(it) => it.by_ref().find(|(_, v)| !v.is_zero()),
            RowIter::Sparse(it) => it.next().map(|(i, v)| (*i, v)),
        }
    }
}

/// The sorted two-stream merge both elimination kernels share: walks the
/// `target` entries and the non-`skip` entries of `src` in column order,
/// producing `map_target(v)` for target-only columns, `map_src(v)` for
/// src-only columns and `combine(vt, vs)` where both are present. Exact
/// zeros are dropped, preserving the sparse no-stored-zeros invariant.
///
/// The merge writes into `out` (cleared first) so pivot loops can recycle
/// one output buffer across eliminations instead of allocating per merge.
pub(crate) fn merge_sparse<T: Coeff>(
    out: &mut Vec<(usize, T)>,
    target: &[(usize, T)],
    src: &GenRow<T>,
    skip: usize,
    mut map_target: impl FnMut(&T) -> T,
    mut map_src: impl FnMut(&T) -> T,
    mut combine: impl FnMut(&T, &T) -> T,
) {
    out.clear();
    out.reserve(target.len() + src.nnz());
    let mut it = target.iter().peekable();
    let mut is = src.iter_nonzero().filter(|&(col, _)| col != skip).peekable();
    loop {
        let (col, value) = match (it.peek(), is.peek()) {
            (None, None) => break,
            (Some(&&(ct, ref vt)), Some(&(cs, vs))) if ct == cs => {
                let value = combine(vt, vs);
                it.next();
                is.next();
                (ct, value)
            }
            (Some(&&(ct, ref vt)), Some(&(cs, _))) if ct < cs => {
                let value = map_target(vt);
                it.next();
                (ct, value)
            }
            (Some(_), Some(&(cs, vs))) => {
                let value = map_src(vs);
                is.next();
                (cs, value)
            }
            (Some(&&(ct, ref vt)), None) => {
                let value = map_target(vt);
                it.next();
                (ct, value)
            }
            (None, Some(&(cs, vs))) => {
                let value = map_src(vs);
                is.next();
                (cs, value)
            }
        };
        if !value.is_zero() {
            out.push((col, value));
        }
    }
}

impl<T: Coeff> fmt::Display for GenRow<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (col, value) in self.iter_nonzero() {
            if first {
                write!(f, "{value}*x{col}")?;
                first = false;
            } else if value.is_negative() {
                write!(f, " - {}*x{col}", value.clone().neg())?;
            } else {
                write!(f, " + {value}*x{col}")?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn dense(vals: &[i64]) -> Row {
        Row::Dense(vals.iter().map(|&v| Rational::from(v)).collect())
    }

    fn sparse(dim: usize, entries: &[(usize, i64)]) -> Row {
        Row::sparse(dim, entries.iter().map(|&(c, v)| (c, Rational::from(v))).collect())
    }

    #[test]
    fn representations_agree_on_accessors() {
        let d = dense(&[0, 3, 0, -2, 0, 0, 0, 0]);
        let s = sparse(8, &[(1, 3), (3, -2)]);
        assert_eq!(d.dim(), s.dim());
        assert_eq!(d.nnz(), 2);
        assert_eq!(s.nnz(), 2);
        for col in 0..8 {
            assert_eq!(d.get(col), s.get(col), "column {col}");
        }
        let dv: Vec<_> = d.iter_nonzero().map(|(c, v)| (c, v.clone())).collect();
        let sv: Vec<_> = s.iter_nonzero().map(|(c, v)| (c, v.clone())).collect();
        assert_eq!(dv, sv);
        assert_eq!(d.to_dense_vec(), s.to_dense_vec());
    }

    #[test]
    fn integer_rows_share_the_machinery() {
        let i = |v: i64| Integer::from(v);
        let d = IntRow::dense(vec![i(0), i(4), i(0), i(-6)]);
        let s = IntRow::sparse(4, vec![(1, i(4)), (3, i(-6))]);
        assert_eq!(d.nnz(), 2);
        for col in 0..4 {
            assert_eq!(d.get(col), s.get(col), "column {col}");
        }
        assert_eq!(d.to_dense_vec(), s.to_dense_vec());
        assert_eq!(s.to_string(), "4*x1 - 6*x3");
        let mut negated = s.clone();
        negated.negate();
        assert_eq!(negated.get(1), Some(&i(-4)));
        assert!(matches!(IntRow::auto(8, vec![(0, i(1))]), GenRow::Sparse(_)));
    }

    #[test]
    fn auto_picks_by_density() {
        assert!(matches!(Row::auto(8, vec![(1, r(1))]), Row::Sparse(_)));
        let dense_entries: Vec<(usize, Rational)> = (0..6).map(|i| (i, r(1))).collect();
        assert!(matches!(Row::auto(8, dense_entries), Row::Dense(_)));
        assert!(matches!(Row::from_dense_auto(&[r(0), r(1), r(0), r(0)]), Row::Sparse(_)));
    }

    #[test]
    fn take_zeroes_the_column() {
        for mut row in [dense(&[0, 5, 0, 7]), sparse(4, &[(1, 5), (3, 7)])] {
            assert_eq!(row.take(1), r(5));
            assert_eq!(row.get(1), None);
            assert_eq!(row.take(0), r(0));
            assert_eq!(row.get(3), Some(&r(7)));
        }
    }

    #[test]
    fn scale_div_normalises() {
        for mut row in [dense(&[0, 4, 0, -6]), sparse(4, &[(1, 4), (3, -6)])] {
            row.scale_div(&r(2));
            assert_eq!(row.get(1), Some(&r(2)));
            assert_eq!(row.get(3), Some(&r(-3)));
        }
    }

    #[test]
    fn eliminate_matches_dense_reference() {
        // target -= 2 * src with skip = 0.
        let target_vals = [3i64, 0, 5, -1, 0, 2, 0, 0];
        let src_vals = [7i64, 1, 0, -1, 4, 2, 0, 0];
        let factor = r(2);
        let mut expect: Vec<Rational> = target_vals.iter().map(|&v| r(v)).collect();
        for (i, &s) in src_vals.iter().enumerate() {
            if i != 0 {
                expect[i] -= &(&factor * &r(s));
            }
        }
        for mut target in [
            dense(&target_vals),
            Row::from_dense_auto(&target_vals.iter().map(|&v| r(v)).collect::<Vec<_>>()),
            Row::sparse(
                8,
                target_vals
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, &v)| (i, r(v)))
                    .collect(),
            ),
        ] {
            for src in [
                dense(&src_vals),
                Row::sparse(
                    8,
                    src_vals
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| v != 0)
                        .map(|(i, &v)| (i, r(v)))
                        .collect(),
                ),
            ] {
                let mut t = target.clone();
                t.eliminate(&factor, &src, 0);
                assert_eq!(t.to_dense_vec(), expect);
            }
            // Also exercise in-place repeated elimination.
            target.eliminate(&r(0), &dense(&src_vals), 0);
        }
    }

    #[test]
    fn eliminate_densifies_on_fill_in() {
        let mut target = sparse(8, &[(0, 1)]);
        let src = dense(&[0, 1, 1, 1, 1, 1, 1, 1]);
        target.eliminate(&r(1), &src, usize::MAX);
        assert!(matches!(target, Row::Dense(_)), "fill-in past half must densify");
        assert_eq!(target.to_dense_vec(), dense(&[1, -1, -1, -1, -1, -1, -1, -1]).to_dense_vec());
    }

    #[test]
    fn resparsify_undoes_receded_fill_in() {
        // Densify by fill-in, then cancel most of the row again: the ratchet
        // must release at the pivot boundary.
        let mut row = sparse(8, &[(0, 1)]);
        let fill = dense(&[0, 1, 1, 1, 1, 1, 1, 1]);
        row.eliminate(&r(1), &fill, usize::MAX);
        assert!(matches!(row, Row::Dense(_)));
        row.resparsify();
        assert!(matches!(row, Row::Dense(_)), "still 8/8 non-zero: stays dense");
        // Cancel six of the eight entries (add back +1 on columns 1..=6).
        let cancel = dense(&[0, 1, 1, 1, 1, 1, 1, 0]);
        row.eliminate(&r(-1), &cancel, usize::MAX);
        assert_eq!(row.nnz(), 2);
        assert!(matches!(row, Row::Dense(_)), "eliminate alone must not convert dense rows");
        assert!(!row.representation_is_canonical());
        row.resparsify();
        assert!(matches!(row, Row::Sparse(_)), "receded fill-in must re-sparsify");
        assert!(row.representation_is_canonical());
        assert_eq!(row.to_dense_vec(), dense(&[1, 0, 0, 0, 0, 0, 0, -1]).to_dense_vec());
        // Idempotent on sparse rows.
        row.resparsify();
        assert!(matches!(row, Row::Sparse(_)));
    }

    #[test]
    fn linear_combination_cancels_exactly() {
        // 3 * (1, -2) + 2 * (-1, 3): column 0 cancels 3*1 + 2*(-1) = 1 ... no.
        // Use u*lo + (-l)*up with lo = (-2, 1), up = (3, 5) on column 0:
        // 3*(-2) + 2*3 = 0 — the eliminated column must vanish from storage.
        let lo = sparse(2, &[(0, -2), (1, 1)]);
        let up = sparse(2, &[(0, 3), (1, 5)]);
        let combined = Row::linear_combination(&r(3), &lo, &r(2), &up);
        assert_eq!(combined.get(0), None);
        assert!(combined.iter_nonzero().all(|(c, _)| c != 0));
        assert_eq!(combined.get(1), Some(&r(13)));
        // Dense/sparse mixes agree.
        let combined_mixed = Row::linear_combination(&r(3), &dense(&[-2, 1]), &r(2), &up);
        assert_eq!(combined.to_dense_vec(), combined_mixed.to_dense_vec());
    }

    #[test]
    fn dot_skip_and_negate() {
        let point = vec![r(1), r(2), r(3)];
        for mut row in [dense(&[2, 0, -1]), sparse(3, &[(0, 2), (2, -1)])] {
            assert_eq!(row.dot_skip(&point, usize::MAX), r(-1));
            assert_eq!(row.dot_skip(&point, 2), r(2));
            row.negate();
            assert_eq!(row.dot_skip(&point, usize::MAX), r(1));
        }
    }

    #[test]
    fn display_reads_like_a_constraint_lhs() {
        assert_eq!(sparse(4, &[(0, 2), (2, -3)]).to_string(), "2*x0 - 3*x2");
        assert_eq!(sparse(4, &[]).to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_sparse_entries_are_rejected() {
        let _ = Row::sparse(4, vec![(2, r(1)), (1, r(1))]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn auto_rejects_duplicate_columns_on_the_dense_side_too() {
        // Three entries over four columns land on the dense path; the
        // duplicate column must still panic instead of silently
        // overwriting a coefficient.
        let _ = Row::auto(4, vec![(1, r(1)), (1, r(2)), (2, r(3))]);
    }

    #[test]
    #[should_panic(expected = "must not store zeros")]
    fn explicit_zero_entries_are_rejected() {
        let _ = Row::sparse(4, vec![(1, r(0))]);
    }
}
