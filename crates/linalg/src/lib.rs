//! # dioph-linalg — exact rational linear algebra and feasibility
//!
//! The decision procedure of *"Attacking Diophantus"* (PODS 2019) hinges on
//! Theorem 4.1: a monomial–polynomial inequality has a Diophantine solution
//! iff an associated **strict homogeneous linear system** is feasible, and
//! (Theorem 4.2) the latter question is decidable in polynomial time.
//!
//! This crate provides that substrate, fully self-contained:
//!
//! * [`LinearSystem`] / [`Constraint`] — general rational linear constraints
//!   (strict and non-strict inequalities and equalities);
//! * [`Row`] / [`SparseRow`] — the shared coefficient-row abstraction the
//!   engines pivot and eliminate over, generic over the coefficient type
//!   ([`GenRow`]); the mostly-zero rows of the paper's strict homogeneous
//!   systems are stored sparsely, so zero-skipping comes from the
//!   representation instead of per-loop checks;
//! * [`fourier_motzkin`] — Fourier–Motzkin elimination with witness
//!   extraction (the "obviously correct" engine);
//! * [`simplex`] — an exact rational phase-1 simplex (the scalable engine);
//! * [`bareiss`] — the fraction-free integer twin of the simplex: every
//!   intermediate value stays an integer ([`IntRow`]), with a single exact
//!   gcd division per row per pivot instead of a rational reduction per
//!   entry. Pivot sequences, verdicts and witnesses are bit-identical to
//!   [`simplex`]; it exists for the regime where pivot values outgrow
//!   machine words (the `lp_ablation` cliff);
//! * [`StrictHomogeneousSystem`] — the exact shape produced by the paper's
//!   reduction, with natural-number witness extraction
//!   ([`StrictHomogeneousSystem::natural_solution`]).
//!
//! ```
//! use dioph_linalg::{FeasibilityEngine, StrictHomogeneousSystem};
//!
//! // The homogeneous system derived from the paper's running 3-MPI.
//! let mut sys = StrictHomogeneousSystem::new(3);
//! sys.push_row_i64(&[-5, 1, 3]);
//! sys.push_row_i64(&[-3, -1, 3]);
//! sys.push_row_i64(&[-1, 1, -1]);
//! let witness = sys.natural_solution(FeasibilityEngine::Simplex).unwrap().unwrap();
//! assert!(sys.is_satisfied_by_naturals(&witness));
//! // The fraction-free route reaches the identical witness.
//! assert_eq!(
//!     Some(witness),
//!     sys.natural_solution(FeasibilityEngine::Bareiss).unwrap(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bareiss;
mod error;
mod feasibility;
pub mod fourier_motzkin;
pub mod row;
pub mod scratch;
pub mod simplex;
mod system;

pub use error::LinalgError;
pub use feasibility::{scale_to_naturals, FeasibilityEngine, StrictHomogeneousSystem};
pub use fourier_motzkin::FmOutcome;
pub use row::{Coeff, GenRow, GenSparseRow, IntRow, Row, SparseRow};
pub use scratch::{LpScratch, RowPool};
pub use simplex::SimplexOutcome;
pub use system::{dot, dot_int, dot_int_int, dot_int_nat, Constraint, LinearSystem, Relation};
