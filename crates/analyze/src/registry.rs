//! The lint registry: stable codes, default severities, and the
//! `--deny/--allow/-W` configuration model.

use core::fmt;

/// How serious a diagnostic is. The ordering is meaningful:
/// `Allow < Note < Warning < Error`, and a `check` run exits with the
/// numeric code of the worst emitted severity (`Note` and below map to 0,
/// `Warning` to 1, `Error` to 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Suppressed: the diagnostic is not emitted at all.
    Allow,
    /// An advisory (cost estimates, admission-control signals). Printed,
    /// but never fails a run and is not promoted by `--deny warnings`.
    Note,
    /// A likely mistake. Exit code 1; promoted to `Error` by
    /// `--deny warnings`.
    Warning,
    /// A defect the engine would reject (or source that does not parse).
    /// Exit code 2.
    Error,
}

impl Severity {
    /// The lowercase name used in human output and in JSON
    /// (`"allow"`, `"note"`, `"warning"`, `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Allow => "allow",
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// The process exit code a run whose worst diagnostic is `self` ends
    /// with: 0 for `Allow`/`Note`, 1 for `Warning`, 2 for `Error`.
    pub fn exit_code(self) -> i32 {
        match self {
            Severity::Allow | Severity::Note => 0,
            Severity::Warning => 1,
            Severity::Error => 2,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered lint: a stable code (`D013`), a human name
/// (`duplicate-atom`), the severity it fires at unless configured
/// otherwise, and a one-line summary for `docs/diagnostics.md`-style
/// listings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lint {
    /// Stable machine-readable code (`D000`–`D031`). Codes are never
    /// reused or renumbered; retired lints leave a hole.
    pub code: &'static str,
    /// Stable kebab-case name, accepted interchangeably with the code by
    /// `--deny/--allow/-W`.
    pub name: &'static str,
    /// Severity when no configuration overrides it. Some lints fire below
    /// this default in weaker positions (see `docs/diagnostics.md`): an
    /// empty body is an error for a containee but only a warning for a
    /// containing query.
    pub default_severity: Severity,
    /// One-line description.
    pub summary: &'static str,
}

/// Every lint `dioph-analyze` can emit, in code order.
pub const LINTS: &[Lint] = &[
    Lint {
        code: "D000",
        name: "syntax-error",
        default_severity: Severity::Error,
        summary: "the source text does not parse as a datalog program",
    },
    Lint {
        code: "D001",
        name: "unsafe-query",
        default_severity: Severity::Error,
        summary: "a head variable does not occur in the body",
    },
    Lint {
        code: "D002",
        name: "containee-not-projection-free",
        default_severity: Severity::Error,
        summary: "the containee has existential variables, outside the paper's decidable fragment",
    },
    Lint {
        code: "D003",
        name: "empty-body",
        default_severity: Severity::Error,
        summary: "a query has an empty body (`true`)",
    },
    Lint {
        code: "D004",
        name: "odd-query-count",
        default_severity: Severity::Error,
        summary: "the program holds an odd number of queries, leaving the last one unpaired",
    },
    Lint {
        code: "D010",
        name: "unused-variable",
        default_severity: Severity::Allow,
        summary: "a body variable occurs exactly once, constraining nothing",
    },
    Lint {
        code: "D011",
        name: "cartesian-product-body",
        default_severity: Severity::Allow,
        summary: "the body splits into variable-disjoint groups (a cartesian product)",
    },
    Lint {
        code: "D012",
        name: "predicate-arity-mismatch",
        default_severity: Severity::Warning,
        summary: "the same relation name is used with different arities",
    },
    Lint {
        code: "D013",
        name: "duplicate-atom",
        default_severity: Severity::Warning,
        summary: "the same atom is written more than once in a body; multiplicities accumulate",
    },
    Lint {
        code: "D030",
        name: "probe-space-blowup",
        default_severity: Severity::Note,
        summary: "the all-probes enumeration space is large",
    },
    Lint {
        code: "D031",
        name: "lp-dimension-warning",
        default_severity: Severity::Note,
        summary: "the strict homogeneous system may be large enough for seconds-scale LP solves",
    },
];

/// Looks a lint up by stable code (`"D013"`) or name (`"duplicate-atom"`).
pub fn lint(code_or_name: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.code == code_or_name || l.name == code_or_name)
}

/// Looks a lint up by code, panicking on an unregistered one — for internal
/// use by the analysis passes, whose codes are compile-time constants.
pub(crate) fn registered(code: &'static str) -> &'static Lint {
    lint(code).unwrap_or_else(|| panic!("lint {code} is not registered"))
}

/// Severity configuration in the rustc style: per-lint overrides
/// (`--allow D013`, `-W unused-variable`, `--deny D011`) plus the blanket
/// `--deny warnings` promotion. Later overrides win over earlier ones.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    overrides: Vec<(&'static str, Severity)>,
    deny_warnings: bool,
}

impl LintConfig {
    /// The default configuration: every lint at its registered severity.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides one lint (by code or name) to a fixed severity. Returns an
    /// error message naming the unknown lint if it is not registered.
    pub fn set(&mut self, code_or_name: &str, severity: Severity) -> Result<(), String> {
        match lint(code_or_name) {
            Some(l) => {
                self.overrides.push((l.code, severity));
                Ok(())
            }
            None => Err(format!(
                "unknown lint '{code_or_name}' (expected a code like D013 or a name like \
                 duplicate-atom; see docs/diagnostics.md)"
            )),
        }
    }

    /// Enables the blanket `--deny warnings` promotion: every diagnostic
    /// that would be emitted at `Warning` becomes an `Error`. Notes are not
    /// warnings and are not promoted.
    pub fn deny_warnings(&mut self) {
        self.deny_warnings = true;
    }

    /// Whether `--deny warnings` is in effect.
    pub fn denies_warnings(&self) -> bool {
        self.deny_warnings
    }

    /// The severity `lint` fires at in the given situation: the last
    /// explicit override if any, else `situational` (which the analysis
    /// passes set to the lint's default or a position-weakened severity),
    /// with `--deny warnings` promoting a resulting `Warning` to `Error`.
    pub fn effective(&self, lint: &Lint, situational: Severity) -> Severity {
        let base = self
            .overrides
            .iter()
            .rev()
            .find(|(code, _)| *code == lint.code)
            .map_or(situational, |(_, sev)| *sev);
        if self.deny_warnings && base == Severity::Warning {
            Severity::Error
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_names_are_unique_and_ordered() {
        let mut codes: Vec<&str> = LINTS.iter().map(|l| l.code).collect();
        let sorted = codes.clone();
        codes.dedup();
        assert_eq!(codes, sorted, "duplicate lint code");
        let mut sorted_codes = codes.clone();
        sorted_codes.sort_unstable();
        assert_eq!(codes, sorted_codes, "LINTS must stay in code order");
        let mut names: Vec<&str> = LINTS.iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LINTS.len(), "duplicate lint name");
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(lint("D013").unwrap().name, "duplicate-atom");
        assert_eq!(lint("duplicate-atom").unwrap().code, "D013");
        assert!(lint("D999").is_none());
        assert!(lint("").is_none());
    }

    #[test]
    fn severity_ordering_and_exit_codes() {
        assert!(Severity::Allow < Severity::Note);
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Note.exit_code(), 0);
        assert_eq!(Severity::Warning.exit_code(), 1);
        assert_eq!(Severity::Error.exit_code(), 2);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn config_overrides_and_deny_warnings() {
        let d013 = lint("D013").unwrap();
        let mut config = LintConfig::new();
        assert_eq!(config.effective(d013, d013.default_severity), Severity::Warning);

        config.set("duplicate-atom", Severity::Allow).unwrap();
        assert_eq!(config.effective(d013, d013.default_severity), Severity::Allow);

        // Later overrides win.
        config.set("D013", Severity::Error).unwrap();
        assert_eq!(config.effective(d013, d013.default_severity), Severity::Error);

        let mut config = LintConfig::new();
        config.deny_warnings();
        assert!(config.denies_warnings());
        assert_eq!(config.effective(d013, d013.default_severity), Severity::Error);
        // Notes are not promoted.
        let d030 = lint("D030").unwrap();
        assert_eq!(config.effective(d030, d030.default_severity), Severity::Note);
        // An explicit --allow survives --deny warnings.
        config.set("D013", Severity::Allow).unwrap();
        assert_eq!(config.effective(d013, d013.default_severity), Severity::Allow);

        assert!(config.set("D999", Severity::Allow).is_err());
    }

    #[test]
    fn situational_severity_feeds_the_promotion() {
        // D003 fires at Warning for a containing query; --deny warnings
        // promotes that situational warning like any other.
        let d003 = lint("D003").unwrap();
        let mut config = LintConfig::new();
        assert_eq!(config.effective(d003, Severity::Warning), Severity::Warning);
        config.deny_warnings();
        assert_eq!(config.effective(d003, Severity::Warning), Severity::Error);
    }
}
