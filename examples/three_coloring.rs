//! The NP-hardness reduction of Theorem 5.4, run forwards: decide graph
//! 3-colorability by asking a bag-containment question.
//!
//! For a graph `G`, the ground triangle query `q_T` is bag-contained in
//! `q_T ∧ q_G` exactly when `G` is 3-colorable. The example builds a few
//! structured graphs plus random ones, decides colorability both directly
//! (backtracking) and through the containment decider, and checks they agree.
//!
//! Run with `cargo run --example three_coloring`.

use diophantus::workloads::graphs::Graph;
use diophantus::workloads::threecol::{
    three_colorability_instance, three_colorable_via_containment,
};
use diophantus::{Algorithm, BagContainmentDecider};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn describe(name: &str, graph: &Graph, decider: &BagContainmentDecider) {
    let direct = graph.is_three_colorable();
    let via_containment = three_colorable_via_containment(graph, decider);
    println!(
        "{name:<22} |V| = {:>2}, |E| = {:>2}   direct: {:<5}  via ⊑b: {:<5}  {}",
        graph.vertex_count(),
        graph.edge_count(),
        direct,
        via_containment,
        if direct == via_containment { "agree" } else { "DISAGREE!" }
    );
    assert_eq!(direct, via_containment, "the reduction must agree with the direct oracle");
}

fn main() {
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);

    println!("Theorem 5.4: G is 3-colorable  ⟺  q_T ⊑b q_T ∧ q_G\n");

    describe("triangle K3", &Graph::complete(3), &decider);
    describe("clique K4", &Graph::complete(4), &decider);
    describe("5-cycle", &Graph::cycle(5), &decider);
    describe("6-cycle", &Graph::cycle(6), &decider);
    describe("K_{3,3}", &Graph::complete_bipartite(3, 3), &decider);
    describe("empty graph", &Graph::new(6), &decider);

    let mut wheel = Graph::cycle(5);
    // A wheel W5: a 5-cycle plus a hub adjacent to every rim vertex. Needs 4 colors.
    let mut w = Graph::new(6);
    for (u, v) in wheel.edges().collect::<Vec<_>>() {
        w.add_edge(u, v);
    }
    for v in 0..5 {
        w.add_edge(5, v);
    }
    wheel = w;
    describe("wheel W5", &wheel, &decider);

    println!("\nRandom graphs G(n, 0.5):");
    let mut rng = StdRng::seed_from_u64(2019);
    for n in 4..=7 {
        let graph = Graph::random(n, 0.5, &mut rng);
        describe(&format!("G({n}, 0.5)"), &graph, &decider);
    }

    // Show what the queries of the reduction actually look like for K4, and
    // print the counterexample bag that witnesses non-containment.
    println!("\nInside the reduction for K4:");
    let k4 = Graph::complete(4);
    let (containee, containing) = three_colorability_instance(&k4);
    println!("  containee  (q_T)      : {containee}");
    println!("  containing (q_T ∧ q_G): {containing}");
    let result = decider.decide(&containee, &containing).unwrap();
    match result.counterexample() {
        Some(ce) => {
            println!("  K4 is not 3-colorable; violating bag: {}", ce.bag);
            println!(
                "  q_T multiplicity {} > q_T∧q_G multiplicity {}",
                ce.containee_multiplicity, ce.containing_multiplicity
            );
        }
        None => println!("  unexpectedly contained!"),
    }
}
