//! Optimizer-trace-style join-shape workloads: chains, stars and cliques.
//!
//! Query optimizers fire containment checks over a narrow family of shapes —
//! linear join chains, star schemas (one fact relation joined to many
//! dimension relations), and dense clique joins. These generators produce
//! `(containee, containing)` pairs in the paper fragment built on exactly
//! those shapes: the containing query is the join shape with its interior
//! variables existential, the containee is its image under a random
//! substitution grounding every existential variable into a head variable or
//! constant (the Section 2 specialisation argument, so each pair is
//! bag-contained **by construction**). Relation names are drawn from a small
//! shared pool, so independently generated pairs share subqueries — the
//! workload the fuzzing oracle and the `serve` load generator both want.

use rand::Rng;

use dioph_cq::{Atom, ConjunctiveQuery, Substitution, Term};

/// The shared relation pool all join shapes draw from. Two names keep the
/// schema small enough that distinct pairs overlap on subqueries.
const RELATION_POOL: [&str; 2] = ["R", "S"];

fn pool_relation(rng: &mut impl Rng) -> &'static str {
    RELATION_POOL[rng.random_range(0..RELATION_POOL.len())]
}

/// Grounds every existential variable of `containing` into a random head
/// variable or the constant `'c0'`, yielding a projection-free containee
/// that is bag-contained in `containing` by the specialisation argument.
fn specialize(containing: &ConjunctiveQuery, rng: &mut impl Rng) -> ConjunctiveQuery {
    let mut targets: Vec<Term> = containing.head().to_vec();
    targets.push(Term::constant("c0"));
    let sigma = Substitution::from_pairs(
        containing
            .existential_variables()
            .into_iter()
            .map(|v| (v, targets[rng.random_range(0..targets.len())].clone())),
    );
    containing.apply_substitution(&sigma).with_name("q_containee")
}

/// A linear join chain `q(x0, x_len) ← R₁(x0, y1), R₂(y1, y2), …,
/// R_len(y_{len-1}, x_len)` with each `Rᵢ` drawn from the shared pool,
/// paired with a specialisation containee. Requires `length ≥ 1`.
pub fn chain_pair(length: usize, rng: &mut impl Rng) -> (ConjunctiveQuery, ConjunctiveQuery) {
    assert!(length >= 1, "a chain needs at least one edge");
    let node = |i: usize| {
        if i == 0 {
            Term::var("x0")
        } else if i == length {
            Term::var("x1")
        } else {
            Term::var(format!("y{i}"))
        }
    };
    let body: Vec<Atom> =
        (0..length).map(|i| Atom::new(pool_relation(rng), vec![node(i), node(i + 1)])).collect();
    let containing = ConjunctiveQuery::from_atom_list(
        "q_containing",
        vec![Term::var("x0"), Term::var("x1")],
        body,
    );
    (specialize(&containing, rng), containing)
}

/// A star join `q(x0) ← R₁(x0, y1), …, R_rays(x0, y_rays)` — one hub joined
/// to `rays` existential satellites, relations from the shared pool — paired
/// with a specialisation containee. Requires `rays ≥ 1`.
pub fn star_pair(rays: usize, rng: &mut impl Rng) -> (ConjunctiveQuery, ConjunctiveQuery) {
    assert!(rays >= 1, "a star needs at least one ray");
    let hub = Term::var("x0");
    let body: Vec<Atom> = (1..=rays)
        .map(|i| Atom::new(pool_relation(rng), vec![hub.clone(), Term::var(format!("y{i}"))]))
        .collect();
    let containing = ConjunctiveQuery::from_atom_list("q_containing", vec![hub], body);
    (specialize(&containing, rng), containing)
}

/// A clique join over `vertices` nodes — an `E` edge atom for every unordered
/// node pair, first node free, the rest existential — paired with a
/// specialisation containee. Requires `vertices ≥ 2`.
pub fn clique_pair(vertices: usize, rng: &mut impl Rng) -> (ConjunctiveQuery, ConjunctiveQuery) {
    assert!(vertices >= 2, "a clique needs at least two vertices");
    let node = |i: usize| if i == 0 { Term::var("x0") } else { Term::var(format!("y{i}")) };
    let mut body = Vec::new();
    for i in 0..vertices {
        for j in i + 1..vertices {
            body.push(Atom::new("E", vec![node(i), node(j)]));
        }
    }
    let containing = ConjunctiveQuery::from_atom_list("q_containing", vec![node(0)], body);
    (specialize(&containing, rng), containing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::is_bag_contained;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_pairs_are_contained_by_construction() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (containee, containing) = chain_pair(3, &mut rng);
            assert!(containee.is_projection_free(), "{containee}");
            assert!(containee.is_safe(), "{containee}");
            assert_eq!(containing.total_atom_count(), 3);
            assert!(is_bag_contained(&containee, &containing).unwrap().holds());
        }
    }

    #[test]
    fn star_pairs_are_contained_by_construction() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (containee, containing) = star_pair(4, &mut rng);
            assert!(containee.is_projection_free(), "{containee}");
            assert_eq!(containing.total_atom_count(), 4);
            assert!(is_bag_contained(&containee, &containing).unwrap().holds());
        }
    }

    #[test]
    fn clique_pairs_are_contained_by_construction() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (containee, containing) = clique_pair(3, &mut rng);
            assert!(containee.is_projection_free(), "{containee}");
            // C(3, 2) edge atoms.
            assert_eq!(containing.total_atom_count(), 3);
            assert!(is_bag_contained(&containee, &containing).unwrap().holds());
        }
    }

    #[test]
    fn generation_is_deterministic_and_uses_the_shared_pool() {
        let a = chain_pair(4, &mut StdRng::seed_from_u64(5));
        let b = chain_pair(4, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let (_, containing) = a;
        assert!(containing.body_atoms().all(|at| RELATION_POOL.contains(&at.relation())));
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn degenerate_cliques_are_rejected() {
        let _ = clique_pair(1, &mut StdRng::seed_from_u64(0));
    }
}
