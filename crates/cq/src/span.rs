//! Source spans for parsed queries.
//!
//! The core IR ([`ConjunctiveQuery`], [`Atom`], [`Term`]) is deliberately
//! span-free: queries are compared, hashed and deduplicated structurally, and
//! a byte offset baked into an `Atom` would break `Eq`/`Hash` (and the
//! `BTreeMap` bag representation that merges repeated atoms). Spans therefore
//! live in a **side table**: the parser records, for every query it reads,
//! where the head, each body-atom *occurrence* and each term occurrence sit
//! in the source text, and [`SpannedQuery`] carries that table next to the
//! query. Downstream analyses (`dioph-analyze`, the `diophantus check`
//! subcommand) resolve spans back to 1-based line/column coordinates with
//! [`line_column`] — the same resolution the parser's own
//! `ProgramParseError` uses, so analyzer diagnostics and parse errors point
//! into files identically.

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::term::Term;

/// A half-open byte range `[start, end)` into the source text a query was
/// parsed from.
///
/// Offsets are bytes (not characters) so they can index back into the
/// original `&str` cheaply; use [`line_column`] to render them for humans.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
}

impl Span {
    /// Builds a span from its byte endpoints.
    pub fn new(start: usize, end: usize) -> Span {
        debug_assert!(start <= end, "span endpoints out of order: {start}..{end}");
        Span { start, end }
    }

    /// The spanned slice of `source`.
    ///
    /// Returns an empty string if the span does not lie on character
    /// boundaries of `source` (which cannot happen for parser-produced spans
    /// on the text they were parsed from).
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

/// One body-atom occurrence as written in the source, **before** the bag
/// representation merges repeated atoms.
///
/// `R(x, x), R(x, x)` parses to a single IR atom with multiplicity 2 but two
/// `AtomOccurrence`s — which is exactly what a duplicate-atom lint needs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomOccurrence {
    /// The parsed atom (terms in source order).
    pub atom: Atom,
    /// The multiplicity superscript of this occurrence (1 if absent).
    pub multiplicity: u64,
    /// The whole occurrence, from the relation name to the closing `)`.
    pub span: Span,
    /// The relation name alone.
    pub relation_span: Span,
    /// One span per term, aligned with `atom.terms()`.
    pub term_spans: Vec<Span>,
}

/// The span side table of one parsed query: where the query and each of its
/// pieces sit in the source text.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QuerySpans {
    /// The whole query, from the head name to the last body token
    /// (excluding the optional trailing `.`).
    pub span: Span,
    /// The head predicate name.
    pub name_span: Span,
    /// One span per head term, aligned with `ConjunctiveQuery::head()`.
    pub head_term_spans: Vec<Span>,
    /// Body-atom occurrences in source order.
    pub atoms: Vec<AtomOccurrence>,
}

/// A parsed query together with its span side table, as produced by
/// [`parse_program_spanned`](crate::parse_program_spanned) and
/// [`parse_query_spanned`](crate::parse_query_spanned).
///
/// ```
/// use dioph_cq::parse_query_spanned;
///
/// let sq = parse_query_spanned("q(x1) <- R(x1, y1).").unwrap();
/// let input = "q(x1) <- R(x1, y1).";
/// let y1 = sq.variable_span("y1").unwrap();
/// assert_eq!(y1.slice(input), "y1");
/// assert_eq!(sq.spans.name_span.slice(input), "q");
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedQuery {
    /// The parsed query (span-free, `Eq`/`Hash`-clean).
    pub query: ConjunctiveQuery,
    /// Its span side table.
    pub spans: QuerySpans,
}

impl SpannedQuery {
    /// The span of the first occurrence of variable `name` in the head.
    pub fn head_variable_span(&self, name: &str) -> Option<Span> {
        self.query
            .head()
            .iter()
            .zip(&self.spans.head_term_spans)
            .find(|(t, _)| t.as_var() == Some(name))
            .map(|(_, s)| *s)
    }

    /// The span of the first occurrence of variable `name` in the body, in
    /// source order.
    pub fn body_variable_span(&self, name: &str) -> Option<Span> {
        for occ in &self.spans.atoms {
            for (term, span) in occ.atom.terms().iter().zip(&occ.term_spans) {
                if term.as_var() == Some(name) {
                    return Some(*span);
                }
            }
        }
        None
    }

    /// The span of the first occurrence of variable `name` anywhere in the
    /// query (head first, then body in source order).
    pub fn variable_span(&self, name: &str) -> Option<Span> {
        self.head_variable_span(name).or_else(|| self.body_variable_span(name))
    }

    /// The span of the first body occurrence of `atom` (compared
    /// structurally, multiplicity ignored).
    pub fn atom_span(&self, atom: &Atom) -> Option<Span> {
        self.spans.atoms.iter().find(|occ| &occ.atom == atom).map(|occ| occ.span)
    }

    /// All spans of terms equal to `term` in the body, in source order.
    pub fn term_spans(&self, term: &Term) -> Vec<Span> {
        let mut spans = Vec::new();
        for occ in &self.spans.atoms {
            for (t, span) in occ.atom.terms().iter().zip(&occ.term_spans) {
                if t == term {
                    spans.push(*span);
                }
            }
        }
        spans
    }
}

/// Resolves a byte offset into 1-based `(line, column)` coordinates, where
/// the column counts characters (UTF-8 code points), not bytes — the same
/// convention as the parser's `ProgramParseError`, so analyzer diagnostics
/// and parse errors agree on positions.
///
/// Offsets past the end of the input resolve to the position just past the
/// last character.
///
/// ```
/// use dioph_cq::line_column;
///
/// let text = "q(x) <- R(x, x).\np(x) <- S(x, y).";
/// assert_eq!(line_column(text, 0), (1, 1));
/// assert_eq!(line_column(text, 17), (2, 1));
/// assert_eq!(line_column(text, 30), (2, 14));
/// ```
pub fn line_column(input: &str, position: usize) -> (usize, usize) {
    let position = position.min(input.len());
    let bytes = input.as_bytes();
    let mut line = 1;
    let mut line_start = 0;
    for (i, &b) in bytes.iter().enumerate().take(position) {
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    // Count characters by counting non-continuation bytes.
    let column = 1 + bytes[line_start..position].iter().filter(|b| (*b & 0xC0) != 0x80).count();
    (line, column)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program_spanned, parse_query_spanned};

    #[test]
    fn spans_slice_back_to_the_source_text() {
        let input = "q3(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4).";
        let sq = parse_query_spanned(input).unwrap();
        assert_eq!(sq.spans.name_span.slice(input), "q3");
        assert_eq!(sq.spans.span.slice(input), &input[..input.len() - 1]);
        assert_eq!(sq.spans.head_term_spans.len(), 2);
        assert_eq!(sq.spans.head_term_spans[1].slice(input), "x2");
        // Four occurrences in source order, even though the bag merges none here.
        let occs = &sq.spans.atoms;
        assert_eq!(occs.len(), 4);
        assert_eq!(occs[0].span.slice(input), "R^2(x1, y1)");
        assert_eq!(occs[0].relation_span.slice(input), "R");
        assert_eq!(occs[0].multiplicity, 2);
        assert_eq!(occs[3].term_spans[1].slice(input), "y4");
    }

    #[test]
    fn variable_spans_prefer_the_head_then_source_order() {
        let input = "q(x1) <- R(y1, x1), S(y1, y2)";
        let sq = parse_query_spanned(input).unwrap();
        assert_eq!(sq.variable_span("x1").unwrap(), sq.head_variable_span("x1").unwrap());
        assert_eq!(sq.variable_span("x1").unwrap().start, 2);
        // y1's first occurrence is in the first atom, not the second.
        assert_eq!(sq.variable_span("y1").unwrap().start, 11);
        assert_eq!(sq.body_variable_span("y2").unwrap().slice(input), "y2");
        assert_eq!(sq.variable_span("zz"), None);
        assert_eq!(sq.head_variable_span("y1"), None);
    }

    #[test]
    fn duplicate_written_atoms_keep_both_occurrences() {
        let input = "q(x) <- R(x, x), R(x, x).";
        let sq = parse_query_spanned(input).unwrap();
        assert_eq!(sq.query.distinct_atom_count(), 1);
        assert_eq!(sq.query.total_atom_count(), 2);
        assert_eq!(sq.spans.atoms.len(), 2);
        assert_eq!(sq.spans.atoms[0].atom, sq.spans.atoms[1].atom);
        assert!(sq.spans.atoms[0].span.start < sq.spans.atoms[1].span.start);
    }

    #[test]
    fn constant_and_canonical_terms_span_their_sigils() {
        let input = "q(x) <- R(x, 'c2'), S(^x, 42)";
        let sq = parse_query_spanned(input).unwrap();
        let occs = &sq.spans.atoms;
        assert_eq!(occs[0].term_spans[1].slice(input), "'c2'");
        assert_eq!(occs[1].term_spans[0].slice(input), "^x");
        assert_eq!(occs[1].term_spans[1].slice(input), "42");
        assert_eq!(sq.term_spans(&Term::constant("c2")).len(), 1);
    }

    #[test]
    fn program_spans_survive_comments_and_multiple_queries() {
        let input = "% header\nq(x) <- R^2(x, x). % trailing\np(x) <- R(x, y), R(y, x).";
        let program = parse_program_spanned(input).unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program[0].spans.name_span.slice(input), "q");
        assert_eq!(program[1].spans.name_span.slice(input), "p");
        let (line, column) = line_column(input, program[1].spans.name_span.start);
        assert_eq!((line, column), (3, 1));
        let y = program[1].variable_span("y").unwrap();
        assert_eq!(y.slice(input), "y");
        assert_eq!(line_column(input, y.start), (3, 14));
    }

    #[test]
    fn line_column_clamps_and_counts_characters() {
        assert_eq!(line_column("", 0), (1, 1));
        assert_eq!(line_column("ab", 99), (1, 3));
        // Multi-byte characters count as one column each.
        let text = "% línea\nq(x) <- R(x, x)";
        assert_eq!(line_column(text, text.len()), (2, 16));
    }

    #[test]
    fn span_helpers() {
        let s = Span::new(3, 7);
        assert_eq!(s.slice("0123456789"), "3456");
        // Out-of-bounds or non-boundary spans degrade to empty.
        assert_eq!(Span::new(3, 42).slice("short"), "");
    }
}
