//! # diophantus — bag containment for conjunctive queries
//!
//! A complete, from-scratch reproduction of *"Attacking Diophantus: Solving a
//! Special Case of Bag Containment"* (Konstantinidis & Mogavero, PODS 2019)
//! as a Rust workspace. This facade crate re-exports the public API of every
//! member crate so downstream users can depend on a single package:
//!
//! * [`arith`] — arbitrary-precision naturals, integers and rationals;
//! * [`linalg`] — exact LP feasibility (Fourier–Motzkin and simplex);
//! * [`poly`] — monomials, polynomials and Monomial–Polynomial Inequalities;
//! * [`cq`] — conjunctive queries, homomorphisms, probe tuples, parsing;
//! * [`analyze`] — span-carrying static analysis: lints with stable codes,
//!   fragment classification and static cost bounds (the machinery behind
//!   `diophantus check`);
//! * [`bagdb`] — set/bag instances and Equation-2 evaluation;
//! * [`containment`] — the set- and bag-containment deciders with
//!   counterexample extraction (the paper's contribution);
//! * [`engine`] — the parallel batch decision engine with its shared
//!   compilation cache (the machinery behind `diophantus batch` and
//!   `--jobs`);
//! * [`workloads`] — graphs, reductions and random query generators;
//! * [`fuzz`] — the differential fuzzing oracle cross-checking the MPI
//!   decider against bounded bag-database ground truth (the machinery
//!   behind `diophantus fuzz`).
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ```
//! use diophantus::{parse_query, is_bag_contained};
//!
//! let containee = parse_query("q(x) <- R^2(x, x)").unwrap();
//! let containing = parse_query("p(x) <- R(x, y), R(y, x)").unwrap();
//! assert!(is_bag_contained(&containee, &containing).unwrap().holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod jsonv;

pub use dioph_analyze as analyze;
pub use dioph_arith as arith;
pub use dioph_bagdb as bagdb;
pub use dioph_containment as containment;
pub use dioph_cq as cq;
pub use dioph_engine as engine;
pub use dioph_fuzz as fuzz;
pub use dioph_linalg as linalg;
pub use dioph_obs as obs;
pub use dioph_poly as poly;
pub use dioph_workloads as workloads;

pub use dioph_analyze::{
    analyze_source, classify_pair, estimate_cost, CostEstimate, Diagnostic, FragmentClass,
    LintConfig, ProgramAnalysis, Severity,
};
pub use dioph_arith::{Integer, Natural, Rational};
pub use dioph_bagdb::{bag_answer_multiplicity, bag_answers, BagInstance, SetInstance};
pub use dioph_containment::{
    are_bag_equivalent, bag_equivalence, bag_set_containment, is_bag_contained, set_containment,
    Algorithm, BagContainment, BagContainmentDecider, ContainmentError, Counterexample,
    FeasibilityEngine,
};
pub use dioph_cq::{
    parse_program, parse_query, parse_ucq, ConjunctiveQuery, Term, UnionOfConjunctiveQueries,
};
pub use dioph_engine::{DecisionEngine, EngineConfig};
pub use dioph_poly::{Monomial, Mpi, Polynomial};
