//! Substitutions: finite mappings from variables to terms.

use core::fmt;
use std::collections::BTreeMap;

use crate::atom::Atom;
use crate::term::Term;

/// A substitution `σ = {x1 ↦ t1; …; xn ↦ tn}` mapping variable names to
/// terms. Variables outside the domain are left unchanged when applying the
/// substitution (exactly as in the paper's Section 2).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Substitution {
    map: BTreeMap<String, Term>,
}

impl Substitution {
    /// The empty (identity) substitution.
    pub fn identity() -> Self {
        Substitution { map: BTreeMap::new() }
    }

    /// Builds a substitution from `(variable, term)` pairs.
    ///
    /// # Panics
    /// Panics if the same variable is bound twice to different terms.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, Term)>) -> Self {
        let mut s = Substitution::identity();
        for (var, term) in pairs {
            s.bind(&var, term).expect("conflicting bindings in from_pairs");
        }
        s
    }

    /// The number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The bound variables and their images.
    pub fn bindings(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.map.iter().map(|(v, t)| (v.as_str(), t))
    }

    /// Looks up the image of a variable, if bound.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Binds `var ↦ term`. Returns `Err(existing)` if the variable is already
    /// bound to a *different* term (binding the same term again is a no-op).
    pub fn bind(&mut self, var: &str, term: Term) -> Result<(), Term> {
        match self.map.get(var) {
            Some(existing) if *existing != term => Err(existing.clone()),
            Some(_) => Ok(()),
            None => {
                self.map.insert(var.to_string(), term);
                Ok(())
            }
        }
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, term: &Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| term.clone()),
            other => other.clone(),
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(atom.relation(), atom.terms().iter().map(|t| self.apply_term(t)).collect())
    }

    /// Applies the substitution to a tuple of terms.
    pub fn apply_tuple(&self, terms: &[Term]) -> Vec<Term> {
        terms.iter().map(|t| self.apply_term(t)).collect()
    }

    /// Functional composition: `(self ∘ first)(x) = self(first(x))`.
    ///
    /// The result first applies `first` and then `self`; its domain is the
    /// union of the two domains.
    pub fn compose_after(&self, first: &Substitution) -> Substitution {
        let mut out = BTreeMap::new();
        for (v, t) in &first.map {
            out.insert(v.clone(), self.apply_term(t));
        }
        for (v, t) in &self.map {
            out.entry(v.clone()).or_insert_with(|| t.clone());
        }
        Substitution { map: out }
    }

    /// Attempts to extend this substitution so that it unifies the tuple of
    /// terms `pattern` with the tuple of *ground* terms `target`
    /// (componentwise). Constants in the pattern must match exactly.
    ///
    /// Returns `false` (leaving `self` possibly partially extended) when
    /// unification fails; callers that need rollback should clone first.
    pub fn unify_tuples(&mut self, pattern: &[Term], target: &[Term]) -> bool {
        if pattern.len() != target.len() {
            return false;
        }
        for (p, t) in pattern.iter().zip(target) {
            match p {
                Term::Var(v) => {
                    if self.bind(v, t.clone()).is_err() {
                        return false;
                    }
                }
                other => {
                    if other != t {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigma() -> Substitution {
        Substitution::from_pairs([
            ("x".to_string(), Term::constant("c1")),
            ("y".to_string(), Term::var("z")),
        ])
    }

    #[test]
    fn identity_leaves_everything_unchanged() {
        let id = Substitution::identity();
        assert!(id.is_empty());
        assert_eq!(id.apply_term(&Term::var("x")), Term::var("x"));
        let a = Atom::new("R", vec![Term::var("x"), Term::constant("c")]);
        assert_eq!(id.apply_atom(&a), a);
    }

    #[test]
    fn application_to_terms_and_atoms() {
        let s = sigma();
        assert_eq!(s.apply_term(&Term::var("x")), Term::constant("c1"));
        assert_eq!(s.apply_term(&Term::var("y")), Term::var("z"));
        // Variables outside the domain are untouched.
        assert_eq!(s.apply_term(&Term::var("w")), Term::var("w"));
        // Constants are never touched.
        assert_eq!(s.apply_term(&Term::constant("x")), Term::constant("x"));
        let a = Atom::new("R", vec![Term::var("x"), Term::var("y"), Term::var("w")]);
        assert_eq!(
            s.apply_atom(&a),
            Atom::new("R", vec![Term::constant("c1"), Term::var("z"), Term::var("w")])
        );
    }

    #[test]
    fn binding_conflicts_are_reported() {
        let mut s = Substitution::identity();
        assert!(s.bind("x", Term::constant("c1")).is_ok());
        // Re-binding to the same term is fine.
        assert!(s.bind("x", Term::constant("c1")).is_ok());
        // Conflicting binding fails and reports the existing image.
        assert_eq!(s.bind("x", Term::constant("c2")), Err(Term::constant("c1")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn composition_order() {
        // first: x -> y;  second: y -> c.   second∘first maps x -> c and y -> c.
        let first = Substitution::from_pairs([("x".to_string(), Term::var("y"))]);
        let second = Substitution::from_pairs([("y".to_string(), Term::constant("c"))]);
        let composed = second.compose_after(&first);
        assert_eq!(composed.apply_term(&Term::var("x")), Term::constant("c"));
        assert_eq!(composed.apply_term(&Term::var("y")), Term::constant("c"));
        // The other order behaves differently: first∘second maps x -> y.
        let other = first.compose_after(&second);
        assert_eq!(other.apply_term(&Term::var("x")), Term::var("y"));
    }

    #[test]
    fn tuple_unification() {
        let mut s = Substitution::identity();
        // (x, y, x) unifies with (c1, c2, c1).
        assert!(s.unify_tuples(
            &[Term::var("x"), Term::var("y"), Term::var("x")],
            &[Term::constant("c1"), Term::constant("c2"), Term::constant("c1")]
        ));
        assert_eq!(s.get("x"), Some(&Term::constant("c1")));

        // (x, x) does not unify with (c1, c2).
        let mut s2 = Substitution::identity();
        assert!(!s2.unify_tuples(
            &[Term::var("x"), Term::var("x")],
            &[Term::constant("c1"), Term::constant("c2")]
        ));

        // Constants in the pattern must match exactly.
        let mut s3 = Substitution::identity();
        assert!(!s3.unify_tuples(&[Term::constant("a")], &[Term::constant("b")]));
        assert!(s3.unify_tuples(&[Term::constant("a")], &[Term::constant("a")]));

        // Arity mismatch never unifies.
        let mut s4 = Substitution::identity();
        assert!(!s4.unify_tuples(&[Term::var("x")], &[]));
    }

    #[test]
    fn display() {
        let s = sigma();
        assert_eq!(s.to_string(), "{x -> 'c1'; y -> z}");
    }
}
