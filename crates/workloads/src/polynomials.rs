//! Polynomials as unions of conjunctive queries.
//!
//! Ioannidis & Ramakrishnan proved undecidability of bag containment for
//! *unions* of CQs by encoding arbitrary polynomial inequalities as UCQ
//! containment questions. This module implements the evaluation direction of
//! that encoding, which the paper's related-work section discusses: a
//! polynomial `P(u₁,…,uₙ)` with natural coefficients and no constant term is
//! turned into a Boolean UCQ `q_P` over unary relations `U₁,…,Uₙ` such that
//! on the "star bag" assigning multiplicity `ξᵢ` to the single fact `Uᵢ(⋆)`,
//! the bag answer of `q_P` is exactly `P(ξ)`.
//!
//! This gives an executable bridge between the polynomial world of
//! `dioph-poly` and the query world: pointwise dominance of polynomials
//! corresponds to bag containment of the encodings over the star-bag family.
//! It is used by the `diophantine_lab` example and the E2/E3 experiments, and
//! doubles as a differential test for the bag-semantics evaluator.

use dioph_arith::Natural;
use dioph_bagdb::BagInstance;
use dioph_cq::{Atom, ConjunctiveQuery, Term, UnionOfConjunctiveQueries};
use dioph_poly::{Monomial, Polynomial};

/// The constant every unary fact in a star bag is built over.
pub const STAR_CONSTANT: &str = "star";

fn unknown_relation(prefix: &str, index: usize) -> String {
    format!("{prefix}{index}")
}

fn star_term() -> Term {
    Term::constant(STAR_CONSTANT)
}

/// Encodes a monomial `u^e` as a Boolean CQ: relation `Uᵢ(⋆)` repeated `eᵢ`
/// times. Its bag answer on a star bag with multiplicities `ξ` is `ξ^e`.
pub fn monomial_to_query(monomial: &Monomial, prefix: &str) -> ConjunctiveQuery {
    let body = (0..monomial.dimension()).filter_map(|i| {
        let exp = monomial.exponent(i);
        if exp == 0 {
            None
        } else {
            Some((Atom::new(unknown_relation(prefix, i), vec![star_term()]), exp))
        }
    });
    ConjunctiveQuery::new("q_monomial", vec![], body)
}

/// Encodes a polynomial as a Boolean UCQ: one disjunct per monomial, with a
/// coefficient `a` represented by `a` copies of the disjunct (the bag answer
/// of a UCQ is the sum over disjuncts).
///
/// # Panics
/// Panics if the polynomial is zero (a UCQ needs at least one disjunct) or
/// has a constant term (the encoding, like the paper's, requires no constant
/// terms), or if a coefficient does not fit in `u64`.
pub fn polynomial_to_ucq(polynomial: &Polynomial, prefix: &str) -> UnionOfConjunctiveQueries {
    assert!(!polynomial.is_zero(), "cannot encode the zero polynomial as a UCQ");
    let mut disjuncts = Vec::new();
    for (coeff, mono) in polynomial.terms() {
        assert!(!mono.is_constant(), "the encoding requires polynomials with no constant term");
        let copies = coeff.to_u64().expect("encoded coefficients must fit in u64");
        for copy in 0..copies {
            disjuncts.push(
                monomial_to_query(mono, prefix).with_name(format!("m{}_{copy}", disjuncts.len())),
            );
        }
    }
    UnionOfConjunctiveQueries::new(disjuncts)
}

/// The star bag for an assignment `ξ`: fact `Uᵢ(⋆)` with multiplicity `ξᵢ`.
pub fn assignment_to_star_bag(assignment: &[Natural], prefix: &str) -> BagInstance {
    BagInstance::from_multiplicities(
        assignment
            .iter()
            .enumerate()
            .map(|(i, m)| (Atom::new(unknown_relation(prefix, i), vec![star_term()]), m.clone())),
    )
}

/// Evaluates an encoded polynomial on a star bag: the multiplicity of the
/// empty tuple in the UCQ's bag answer.
pub fn evaluate_ucq_on_star_bag(ucq: &UnionOfConjunctiveQueries, bag: &BagInstance) -> Natural {
    dioph_bagdb::ucq_bag_answers(ucq, bag).remove(&Vec::new()).unwrap_or_else(Natural::zero)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    /// The paper's running polynomial u1^7 + u1^5*u2^2 + u1^3*u3^4.
    fn paper_polynomial() -> Polynomial {
        Polynomial::from_terms(
            3,
            [
                (nat(1), Monomial::new(vec![7, 0, 0])),
                (nat(1), Monomial::new(vec![5, 2, 0])),
                (nat(1), Monomial::new(vec![3, 0, 4])),
            ],
        )
    }

    #[test]
    fn monomial_encoding_evaluates_correctly() {
        let mono = Monomial::new(vec![2, 1, 3]);
        let q = monomial_to_query(&mono, "U");
        assert!(q.is_boolean());
        assert_eq!(q.total_atom_count(), 6);
        let bag = assignment_to_star_bag(&[nat(1), nat(4), nat(3)], "U");
        let value = dioph_bagdb::bag_answer_multiplicity(&q, &bag, &[]);
        // The paper: M(1,4,3) = 108.
        assert_eq!(value, nat(108));
        assert_eq!(value, mono.evaluate(&[nat(1), nat(4), nat(3)]));
    }

    #[test]
    fn polynomial_encoding_matches_direct_evaluation() {
        let poly = paper_polynomial();
        let ucq = polynomial_to_ucq(&poly, "U");
        assert_eq!(ucq.disjuncts().len(), 3);
        for assignment in [
            vec![nat(1), nat(4), nat(3)],
            vec![nat(1), nat(9), nat(3)],
            vec![nat(2), nat(1), nat(1)],
            vec![nat(1), nat(1), nat(1)],
            vec![nat(0), nat(5), nat(7)],
        ] {
            let bag = assignment_to_star_bag(&assignment, "U");
            assert_eq!(
                evaluate_ucq_on_star_bag(&ucq, &bag),
                poly.evaluate(&assignment),
                "mismatch at {assignment:?}"
            );
        }
    }

    #[test]
    fn coefficients_become_duplicate_disjuncts() {
        // 2u^4 + 1·u  (no constant term allowed, so use 2u0^4 + u1).
        let poly = Polynomial::from_terms(
            2,
            [(nat(2), Monomial::new(vec![4, 0])), (nat(1), Monomial::new(vec![0, 1]))],
        );
        let ucq = polynomial_to_ucq(&poly, "U");
        assert_eq!(ucq.disjuncts().len(), 3);
        let bag = assignment_to_star_bag(&[nat(3), nat(5)], "U");
        assert_eq!(evaluate_ucq_on_star_bag(&ucq, &bag), nat(2 * 81 + 5));
    }

    #[test]
    fn pointwise_dominance_matches_bag_dominance_on_star_bags() {
        // P1 = u1*u2 and P2 = u1^2*u2^2 + u1: P1(ξ) ≤ P2(ξ) for all ξ ≥ 0.
        let p1 = Polynomial::from_terms(2, [(nat(1), Monomial::new(vec![1, 1]))]);
        let p2 = Polynomial::from_terms(
            2,
            [(nat(1), Monomial::new(vec![2, 2])), (nat(1), Monomial::new(vec![1, 0]))],
        );
        let u1 = polynomial_to_ucq(&p1, "U");
        let u2 = polynomial_to_ucq(&p2, "U");
        for a in 0..5u64 {
            for b in 0..5u64 {
                let assignment = vec![nat(a), nat(b)];
                let bag = assignment_to_star_bag(&assignment, "U");
                let v1 = evaluate_ucq_on_star_bag(&u1, &bag);
                let v2 = evaluate_ucq_on_star_bag(&u2, &bag);
                assert!(v1 <= v2, "dominance fails at ({a}, {b})");
                assert_eq!(v1, p1.evaluate(&assignment));
                assert_eq!(v2, p2.evaluate(&assignment));
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn zero_polynomial_is_rejected() {
        let _ = polynomial_to_ucq(&Polynomial::zero(2), "U");
    }

    #[test]
    #[should_panic(expected = "no constant term")]
    fn constant_terms_are_rejected() {
        let poly = Polynomial::from_terms(1, [(nat(1), Monomial::constant(1))]);
        let _ = polynomial_to_ucq(&poly, "U");
    }
}
