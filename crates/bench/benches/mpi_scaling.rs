//! E3 — Theorem 4.2: the Diophantine-solution problem for MPIs is solved in
//! polynomial time via linear-programming feasibility.
//!
//! The bench sweeps the number of unknowns `n` and the number of polynomial
//! monomials `m` on pseudo-random MPIs and times the full decision (build the
//! strict homogeneous system, run the exact simplex). The expected shape is
//! polynomial growth in both parameters — contrast with the enumeration
//! baseline of E6.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::{bench_rng, random_mpi};
use dioph_linalg::FeasibilityEngine;

fn bench_unknown_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3/mpi_vs_unknowns");
    for unknowns in [2usize, 4, 8, 16, 32] {
        let mut rng = bench_rng();
        let instances: Vec<_> = (0..8).map(|_| random_mpi(unknowns, 16, 6, &mut rng)).collect();
        let solvable = instances
            .iter()
            .filter(|m| m.has_diophantine_solution(FeasibilityEngine::Simplex).unwrap())
            .count();
        println!("E3: n = {unknowns:>2}, m = 16 → {solvable}/8 instances solvable");
        group.bench_with_input(
            BenchmarkId::from_parameter(unknowns),
            &instances,
            |b, instances| {
                b.iter(|| {
                    for mpi in instances {
                        black_box(
                            mpi.has_diophantine_solution(FeasibilityEngine::Simplex).unwrap(),
                        );
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_term_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3/mpi_vs_polynomial_terms");
    for terms in [4usize, 16, 64, 256] {
        let mut rng = bench_rng();
        let instances: Vec<_> = (0..4).map(|_| random_mpi(6, terms, 6, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(terms), &instances, |b, instances| {
            b.iter(|| {
                for mpi in instances {
                    black_box(mpi.has_diophantine_solution(FeasibilityEngine::Simplex).unwrap());
                }
            });
        });
    }
    group.finish();
}

fn bench_witness_extraction(c: &mut Criterion) {
    // Constructive direction: also extract the explicit natural witness.
    let mut group = c.benchmark_group("E3/witness_extraction");
    for unknowns in [2usize, 4, 8] {
        let mut rng = bench_rng();
        let instances: Vec<_> = (0..8).map(|_| random_mpi(unknowns, 8, 4, &mut rng)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(unknowns),
            &instances,
            |b, instances| {
                b.iter(|| {
                    for mpi in instances {
                        black_box(mpi.diophantine_solution(FeasibilityEngine::Simplex).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_unknown_scaling, bench_term_scaling, bench_witness_extraction
}
criterion_main!(benches);
