//! Multivariate monomials with natural-number exponents, stored in an
//! inline small-vector: exponent vectors of dimension ≤ [`INLINE_EXPONENTS`]
//! live on the stack, longer ones spill to the heap, and `Eq`/`Ord`/`Hash`
//! are canonical across the split (both representations compare and hash
//! exactly as the exponent *slice* does) — the same hybrid discipline as
//! `dioph_arith::Natural`'s inline/limb split.

use core::fmt;
use core::hash::{Hash, Hasher};

use dioph_arith::{Integer, Natural};
use dioph_obs::registry;

/// Exponent vectors up to this dimension are stored inline on the stack.
///
/// The paper's systems keep the unknown count at the containee's body-atom
/// count; the committed workloads and the generators rarely exceed a
/// handful, so eight machine words cover the common case without making
/// every `Monomial` enormous.
pub const INLINE_EXPONENTS: usize = 8;

/// The hybrid exponent storage: inline up to [`INLINE_EXPONENTS`], heap
/// past it. Comparison/hash always go through [`ExpVec::as_slice`], so the
/// representation never leaks into ordering (the `Polynomial` term order —
/// and with it every golden-pinned byte of output — is the plain
/// lexicographic slice order the old `Vec<u64>` storage had).
#[derive(Clone, Debug)]
enum ExpVec {
    /// Dimension ≤ [`INLINE_EXPONENTS`]: exponents on the stack.
    Inline { len: u8, buf: [u64; INLINE_EXPONENTS] },
    /// Dimension past the cap: the classic heap vector.
    Heap(Vec<u64>),
}

impl ExpVec {
    /// All-zero exponents of the given dimension.
    fn zeros(len: usize) -> Self {
        if len <= INLINE_EXPONENTS {
            registry::ALLOC_MONOMIAL_INLINE.incr();
            ExpVec::Inline { len: len as u8, buf: [0; INLINE_EXPONENTS] }
        } else {
            registry::ALLOC_MONOMIAL_SPILLS.incr();
            ExpVec::Heap(vec![0; len])
        }
    }

    /// Builds from a slice without taking ownership (allocation-free within
    /// the inline cap).
    fn from_slice(exponents: &[u64]) -> Self {
        if exponents.len() <= INLINE_EXPONENTS {
            registry::ALLOC_MONOMIAL_INLINE.incr();
            let mut buf = [0; INLINE_EXPONENTS];
            buf[..exponents.len()].copy_from_slice(exponents);
            ExpVec::Inline { len: exponents.len() as u8, buf }
        } else {
            registry::ALLOC_MONOMIAL_SPILLS.incr();
            ExpVec::Heap(exponents.to_vec())
        }
    }

    /// Takes ownership of a vector, moving short ones inline (the vector's
    /// allocation is dropped; past the cap it is kept as-is).
    fn from_vec(exponents: Vec<u64>) -> Self {
        if exponents.len() <= INLINE_EXPONENTS {
            registry::ALLOC_MONOMIAL_INLINE.incr();
            let mut buf = [0; INLINE_EXPONENTS];
            buf[..exponents.len()].copy_from_slice(&exponents);
            ExpVec::Inline { len: exponents.len() as u8, buf }
        } else {
            registry::ALLOC_MONOMIAL_SPILLS.incr();
            ExpVec::Heap(exponents)
        }
    }

    fn as_slice(&self) -> &[u64] {
        match self {
            ExpVec::Inline { len, buf } => &buf[..*len as usize],
            ExpVec::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            ExpVec::Inline { len, buf } => &mut buf[..*len as usize],
            ExpVec::Heap(v) => v,
        }
    }
}

/// A monomial `u₁^{e₁} · u₂^{e₂} · … · uₙ^{eₙ}` over a fixed vector of `n`
/// unknowns, represented densely by its exponent vector.
///
/// The monomial's coefficient is always 1; coefficients live in
/// [`crate::Polynomial`] terms. This mirrors Definition 3.2 of the paper,
/// where the monomial associated with a projection-free query has coefficient
/// one and natural exponents (the body multiplicities).
#[derive(Clone, Debug)]
pub struct Monomial {
    exponents: ExpVec,
}

// Equality, ordering and hashing are all over the exponent *slice*, never
// the representation: `Inline` and `Heap` monomials with equal exponents
// are one value. The `Ord` is the lexicographic slice order the derived
// `Vec<u64>` impl had, which `Polynomial`'s `BTreeMap` term order — and
// therefore every byte of golden-pinned JSON — depends on.
impl PartialEq for Monomial {
    fn eq(&self, other: &Self) -> bool {
        self.exponents() == other.exponents()
    }
}

impl Eq for Monomial {}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.exponents().cmp(other.exponents())
    }
}

impl Hash for Monomial {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Slice hashing (what `Vec<u64>` hashes as too): canonical across
        // the inline/heap split.
        self.exponents().hash(state);
    }
}

impl Monomial {
    /// The constant monomial `1` over `dimension` unknowns (all exponents 0).
    pub fn constant(dimension: usize) -> Self {
        Monomial { exponents: ExpVec::zeros(dimension) }
    }

    /// Builds a monomial from its exponent vector.
    pub fn new(exponents: Vec<u64>) -> Self {
        Monomial { exponents: ExpVec::from_vec(exponents) }
    }

    /// Builds a monomial from an exponent slice — allocation-free within the
    /// inline cap, which is what lets compilation stage exponents in one
    /// recycled buffer instead of allocating a `Vec` per monomial.
    pub fn from_slice(exponents: &[u64]) -> Self {
        Monomial { exponents: ExpVec::from_slice(exponents) }
    }

    /// A single unknown `u_i` over `dimension` unknowns.
    ///
    /// # Panics
    /// Panics if `index >= dimension`.
    pub fn unknown(dimension: usize, index: usize) -> Self {
        assert!(index < dimension, "unknown index out of range");
        let mut exponents = ExpVec::zeros(dimension);
        exponents.as_mut_slice()[index] = 1;
        Monomial { exponents }
    }

    /// Number of unknowns (the dimension `n` of the paper's n-MPI).
    pub fn dimension(&self) -> usize {
        self.exponents().len()
    }

    /// The exponent vector.
    pub fn exponents(&self) -> &[u64] {
        self.exponents.as_slice()
    }

    /// The exponents as signed integers, in unknown order (used when
    /// building the linear system of Theorem 4.1). An iterator rather than a
    /// fresh `Vec<Integer>`: callers staging rows write the values straight
    /// into their own (recycled) storage.
    pub fn integer_exponents(&self) -> impl Iterator<Item = Integer> + '_ {
        self.exponents().iter().map(|&e| Integer::from(e))
    }

    /// The exponent of unknown `i`.
    pub fn exponent(&self, i: usize) -> u64 {
        self.exponents()[i]
    }

    /// Total degree: the sum of all exponents.
    pub fn degree(&self) -> u64 {
        self.exponents().iter().sum()
    }

    /// `true` iff this is the constant monomial 1.
    pub fn is_constant(&self) -> bool {
        self.exponents().iter().all(|&e| e == 0)
    }

    /// Multiplies two monomials over the same unknowns (adds exponents).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        assert_eq!(self.dimension(), other.dimension(), "monomial dimension mismatch");
        let mut out = self.clone();
        for (a, b) in out.exponents.as_mut_slice().iter_mut().zip(other.exponents()) {
            *a = a.checked_add(*b).expect("monomial exponent overflow");
        }
        out
    }

    /// Raises the exponent of unknown `i` by `by`.
    pub fn raise(&mut self, i: usize, by: u64) {
        let slot = &mut self.exponents.as_mut_slice()[i];
        *slot = slot.checked_add(by).expect("monomial exponent overflow");
    }

    /// Evaluates the monomial at a natural-number point.
    ///
    /// # Panics
    /// Panics if the point's dimension differs from the monomial's.
    pub fn evaluate(&self, point: &[Natural]) -> Natural {
        assert_eq!(point.len(), self.dimension(), "evaluation point dimension mismatch");
        let mut acc = Natural::one();
        for (value, &exp) in point.iter().zip(self.exponents()) {
            if exp == 0 {
                continue;
            }
            acc = &acc * &value.pow(exp);
            if acc.is_zero() {
                // Once zero, the whole product stays zero.
                return Natural::zero();
            }
        }
        acc
    }

    /// The "weighted degree" `e · d` used when collapsing an n-MPI to a
    /// parametric 1-MPI (Section 4 of the paper): the dot product of the
    /// exponent vector with a natural vector `d`.
    pub fn weighted_degree(&self, d: &[Natural]) -> Natural {
        assert_eq!(d.len(), self.dimension(), "weight vector dimension mismatch");
        let mut acc = Natural::zero();
        for (&e, w) in self.exponents().iter().zip(d) {
            if e != 0 && !w.is_zero() {
                acc += &(&Natural::from(e) * w);
            }
        }
        acc
    }

    /// Renders the monomial using the provided unknown names; names beyond
    /// the provided slice fall back to `u{i}`.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> MonomialDisplay<'a> {
        MonomialDisplay { monomial: self, names }
    }
}

/// Helper for displaying a monomial with custom unknown names.
pub struct MonomialDisplay<'a> {
    monomial: &'a Monomial,
    names: &'a [String],
}

impl fmt::Display for MonomialDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_monomial(f, self.monomial, |i| {
            self.names.get(i).cloned().unwrap_or_else(|| format!("u{i}"))
        })
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_monomial(f, self, |i| format!("u{i}"))
    }
}

fn format_monomial(
    f: &mut fmt::Formatter<'_>,
    m: &Monomial,
    name: impl Fn(usize) -> String,
) -> fmt::Result {
    if m.is_constant() {
        return write!(f, "1");
    }
    let mut first = true;
    for (i, &e) in m.exponents().iter().enumerate() {
        if e == 0 {
            continue;
        }
        if !first {
            write!(f, "*")?;
        }
        first = false;
        if e == 1 {
            write!(f, "{}", name(i))?;
        } else {
            write!(f, "{}^{}", name(i), e)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn constant_monomial() {
        let m = Monomial::constant(3);
        assert!(m.is_constant());
        assert_eq!(m.degree(), 0);
        assert_eq!(m.evaluate(&[nat(5), nat(7), nat(0)]), nat(1));
        assert_eq!(m.to_string(), "1");
    }

    #[test]
    fn paper_monomial_example() {
        // M_{q1(x̂1,x̂2)}(u) = u1^2 * u2 * u3^3 (paper, Section 3).
        let m = Monomial::new(vec![2, 1, 3]);
        assert_eq!(m.degree(), 6);
        assert_eq!(m.to_string(), "u0^2*u1*u2^3");
        // Evaluated at (1, 4, 3): 1 * 4 * 27 = 108 (paper, Section 4).
        assert_eq!(m.evaluate(&[nat(1), nat(4), nat(3)]), nat(108));
        // Evaluated at (1, 9, 3): 9 * 27 = 243.
        assert_eq!(m.evaluate(&[nat(1), nat(9), nat(3)]), nat(243));
    }

    #[test]
    fn multiplication_adds_exponents() {
        let a = Monomial::new(vec![1, 2, 0]);
        let b = Monomial::new(vec![3, 0, 4]);
        assert_eq!(a.mul(&b), Monomial::new(vec![4, 2, 4]));
        assert_eq!(a.mul(&Monomial::constant(3)), a);
    }

    #[test]
    fn unknown_and_raise() {
        let mut m = Monomial::unknown(3, 1);
        assert_eq!(m.to_string(), "u1");
        m.raise(1, 2);
        m.raise(0, 1);
        assert_eq!(m, Monomial::new(vec![1, 3, 0]));
    }

    #[test]
    fn evaluation_with_zero() {
        let m = Monomial::new(vec![1, 1]);
        assert_eq!(m.evaluate(&[nat(0), nat(100)]), nat(0));
        // Zero exponent ignores a zero value.
        let m2 = Monomial::new(vec![0, 2]);
        assert_eq!(m2.evaluate(&[nat(0), nat(5)]), nat(25));
    }

    #[test]
    fn weighted_degree() {
        let m = Monomial::new(vec![2, 1, 3]);
        // e·d for d = (0, 2, 1): 0 + 2 + 3 = 5 (paper's running example: the
        // monomial side becomes u^5 under ε = (0,2,1)).
        assert_eq!(m.weighted_degree(&[nat(0), nat(2), nat(1)]), nat(5));
    }

    #[test]
    fn display_with_names() {
        let m = Monomial::new(vec![2, 0, 1]);
        let names = vec!["u_R(a,b)".to_string(), "x".to_string(), "u_P(b,c)".to_string()];
        assert_eq!(m.display_with(&names).to_string(), "u_R(a,b)^2*u_P(b,c)");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let _ = Monomial::new(vec![1]).mul(&Monomial::new(vec![1, 2]));
    }

    #[test]
    fn inline_and_heap_monomials_are_one_value() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Around the inline cap: dimension at the cap stays inline, one past
        // it spills — and none of Eq/Ord/Hash can tell the difference.
        for dim in [INLINE_EXPONENTS - 1, INLINE_EXPONENTS, INLINE_EXPONENTS + 1, 31] {
            let exps: Vec<u64> = (0..dim as u64).collect();
            let via_vec = Monomial::new(exps.clone());
            let via_slice = Monomial::from_slice(&exps);
            assert_eq!(via_vec, via_slice);
            assert_eq!(via_vec.cmp(&via_slice), core::cmp::Ordering::Equal);
            let hash = |m: &Monomial| {
                let mut h = DefaultHasher::new();
                m.hash(&mut h);
                h.finish()
            };
            assert_eq!(hash(&via_vec), hash(&via_slice), "dim {dim}");
            assert_eq!(via_vec.exponents(), exps.as_slice());
        }
    }

    #[test]
    fn ordering_is_the_lexicographic_slice_order() {
        // The Polynomial term order (and with it golden JSON bytes) depends
        // on Monomial's Ord being exactly the Vec<u64>-derived lexicographic
        // order, across representations and lengths.
        let mut raw: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![0, 5],
            vec![1],
            vec![1, 0, 0, 0, 0, 0, 0, 0, 0],
            vec![1, 2],
            vec![2, 1, 3],
            vec![2, 1, 3, 0, 0, 0, 0, 0, 1],
        ];
        let mut monos: Vec<Monomial> = raw.iter().map(|v| Monomial::from_slice(v)).collect();
        raw.sort();
        monos.sort();
        let resorted: Vec<Vec<u64>> = monos.iter().map(|m| m.exponents().to_vec()).collect();
        assert_eq!(resorted, raw);
    }

    #[test]
    fn integer_exponents_iterate_in_unknown_order() {
        let m = Monomial::new(vec![2, 0, 3]);
        let ints: Vec<Integer> = m.integer_exponents().collect();
        assert_eq!(ints, vec![Integer::from(2u64), Integer::from(0u64), Integer::from(3u64)]);
    }

    #[test]
    fn big_evaluation_exceeds_machine_integers() {
        let m = Monomial::new(vec![50, 50]);
        let v = m.evaluate(&[nat(3), nat(5)]);
        assert_eq!(v, &Natural::from(3u64).pow(50) * &Natural::from(5u64).pow(50));
        assert!(v.bit_len() > 128);
    }
}
