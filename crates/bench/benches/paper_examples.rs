//! E1 + E2 — the paper's worked examples as micro-benchmarks.
//!
//! Regenerates, and times, every artifact the paper computes by hand:
//! * Equation-2 bag evaluation of the Section 2 example (answers 10 and 30);
//! * the Section 2 set- and bag-containment table;
//! * compilation of the Section 3 running example into its MPI;
//! * solving the Section 4 running 3-MPI through both feasibility engines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dioph_bagdb::{bag_answer_multiplicity, BagInstance};
use dioph_containment::{
    is_bag_contained, set_containment, Algorithm, BagContainmentDecider, CompiledProbe,
    FeasibilityEngine,
};
use dioph_cq::{most_general_probe_tuple, paper_examples, Term};

fn bench_section2_bag_evaluation(c: &mut Criterion) {
    let q = paper_examples::section2_query_q3();
    let bag = BagInstance::from_u64_multiplicities(paper_examples::section2_bag());
    let c1c2 = [Term::constant("c1"), Term::constant("c2")];

    // Correctness of the regenerated numbers (the "table" of E1).
    assert_eq!(bag_answer_multiplicity(&q, &bag, &c1c2).to_string(), "10");
    println!("E1: q^mu(c1,c2) = 10, q^mu(c1,c5) = 30 — matches the paper");

    c.bench_function("E1/section2_bag_evaluation", |b| {
        b.iter(|| bag_answer_multiplicity(black_box(&q), black_box(&bag), black_box(&c1c2)));
    });
}

fn bench_section2_containment_table(c: &mut Criterion) {
    let q1 = paper_examples::section2_query_q1();
    let q2 = paper_examples::section2_query_q2();
    let q3 = paper_examples::section2_query_q3();

    assert!(is_bag_contained(&q1, &q2).unwrap().holds());
    assert!(!is_bag_contained(&q2, &q1).unwrap().holds());
    println!("E1: q1 ⊑b q2, q2 ⋢b q1, q1 ⊑b q3 — matches the paper");

    c.bench_function("E1/set_containment_q1_q2", |b| {
        b.iter(|| set_containment(black_box(&q1), black_box(&q2)).holds());
    });
    c.bench_function("E1/bag_containment_q1_in_q2(contained)", |b| {
        b.iter(|| is_bag_contained(black_box(&q1), black_box(&q2)).unwrap().holds());
    });
    c.bench_function("E1/bag_containment_q2_in_q1(counterexample)", |b| {
        b.iter(|| is_bag_contained(black_box(&q2), black_box(&q1)).unwrap().holds());
    });
    c.bench_function("E1/bag_containment_q1_in_q3(projections)", |b| {
        b.iter(|| is_bag_contained(black_box(&q1), black_box(&q3)).unwrap().holds());
    });
}

fn bench_section3_compilation_and_mpi(c: &mut Criterion) {
    let q1 = paper_examples::section3_query_q1();
    let q2 = paper_examples::section3_query_q2();
    let probe = most_general_probe_tuple(&q1);

    let compiled = CompiledProbe::compile(&q1, &q2, &probe).unwrap();
    assert_eq!(compiled.mapping_count(), 3);
    println!("E2: compiled MPI has 3 monomials, degree 7 vs 6 — matches the paper");

    c.bench_function("E2/compile_running_example_mpi", |b| {
        b.iter(|| {
            CompiledProbe::compile(black_box(&q1), black_box(&q2), black_box(&probe)).unwrap()
        });
    });
    for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
        c.bench_function(&format!("E2/solve_running_example_mpi/{engine:?}"), |b| {
            b.iter(|| compiled.mpi().diophantine_solution(black_box(engine)).unwrap());
        });
    }
    c.bench_function("E2/full_decision_with_witness", |b| {
        let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);
        b.iter(|| decider.decide(black_box(&q1), black_box(&q2)).unwrap());
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_section2_bag_evaluation, bench_section2_containment_table, bench_section3_compilation_and_mpi
}
criterion_main!(benches);
