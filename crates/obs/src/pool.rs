//! Per-worker pool statistics — the starvation evidence for the
//! work-stealing roadmap item.
//!
//! The probe pool and the batch pool record, per worker, how many work units
//! the worker claimed and how long it was busy. Unlike the registry (fixed
//! cardinality, hot path), worker stats have dynamic cardinality — `--jobs`
//! is a runtime choice — and are recorded **once per worker per run**, so a
//! mutexed table is the right shape.

use std::sync::Mutex;

/// Accumulated work of one pool worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// Which pool the worker belonged to (`"probe"` or `"batch"`).
    pub pool: &'static str,
    /// The worker's index within its pool.
    pub worker: usize,
    /// Work units (probe claims, batch jobs) the worker processed.
    pub claims: u64,
    /// Total time spent inside work units, in nanoseconds (zero when timing
    /// was disabled — claims are always counted).
    pub busy_ns: u64,
    /// The longest single work unit, in nanoseconds.
    pub max_unit_ns: u64,
}

static WORKERS: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::new());

/// Merges one worker's run into the table (summing claims and busy time,
/// keeping the larger maximum — a worker index recurs across runs in one
/// process).
pub fn record(pool: &'static str, worker: usize, claims: u64, busy_ns: u64, max_unit_ns: u64) {
    let Ok(mut table) = WORKERS.lock() else { return };
    if let Some(slot) = table.iter_mut().find(|s| s.pool == pool && s.worker == worker) {
        slot.claims = slot.claims.saturating_add(claims);
        slot.busy_ns = slot.busy_ns.saturating_add(busy_ns);
        slot.max_unit_ns = slot.max_unit_ns.max(max_unit_ns);
    } else {
        table.push(WorkerStats { pool, worker, claims, busy_ns, max_unit_ns });
    }
}

/// The current table, sorted by (pool, worker).
pub fn snapshot() -> Vec<WorkerStats> {
    let mut table = WORKERS.lock().map(|t| t.clone()).unwrap_or_default();
    table.sort_by(|a, b| (a.pool, a.worker).cmp(&(b.pool, b.worker)));
    table
}

/// Clears the table (the CLI resets it at command start so a command
/// reports only its own workers; benches reset between sections).
pub fn reset() {
    if let Ok(mut table) = WORKERS.lock() {
        table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_per_worker_and_sort() {
        // The table is process-global; use a pool name no production code
        // records into so parallel tests cannot interfere.
        record("test-pool-b", 1, 2, 100, 80);
        record("test-pool-b", 0, 5, 500, 200);
        record("test-pool-b", 1, 3, 50, 120);
        let mine: Vec<WorkerStats> =
            snapshot().into_iter().filter(|s| s.pool == "test-pool-b").collect();
        assert_eq!(mine.len(), 2);
        assert_eq!((mine[0].worker, mine[0].claims), (0, 5));
        assert_eq!((mine[1].worker, mine[1].claims, mine[1].busy_ns), (1, 5, 150));
        assert_eq!(mine[1].max_unit_ns, 120);
    }
}
