//! Terms: variables, language constants and canonical constants.

use core::fmt;

/// A first-order term as used in the paper's Section 2.
///
/// * [`Term::Var`] — a variable (e.g. `x1`, `y2`);
/// * [`Term::Const`] — a *language* constant (e.g. `c1`, `a`);
/// * [`Term::CanonConst`] — the *canonical* constant `x̂` associated with the
///   variable `x` by the bijection `can(·)` of the paper. Canonical constants
///   are disjoint from language constants and appear in canonical instances
///   and probe tuples.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A language constant.
    Const(String),
    /// The canonical constant `x̂` associated with variable `x` (the stored
    /// string is the underlying variable name).
    CanonConst(String),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Convenience constructor for a language constant.
    pub fn constant(name: impl Into<String>) -> Term {
        Term::Const(name.into())
    }

    /// Convenience constructor for the canonical constant of a variable.
    pub fn canon(var_name: impl Into<String>) -> Term {
        Term::CanonConst(var_name.into())
    }

    /// `true` iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// `true` iff the term is a constant of either kind (i.e. not a variable).
    pub fn is_constant(&self) -> bool {
        !self.is_var()
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Applies the `can(·)` bijection: variables become their canonical
    /// constants; constants are untouched (the paper's grounding of a query
    /// into its canonical instance).
    pub fn canonicalize(&self) -> Term {
        match self {
            Term::Var(v) => Term::CanonConst(v.clone()),
            other => other.clone(),
        }
    }

    /// Inverse of [`Term::canonicalize`]: canonical constants become their
    /// variables; other terms are untouched.
    pub fn decanonicalize(&self) -> Term {
        match self {
            Term::CanonConst(v) => Term::Var(v.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
            Term::CanonConst(v) => write!(f, "^{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let x = Term::var("x1");
        let c = Term::constant("c1");
        let xc = Term::canon("x1");
        assert!(x.is_var() && !x.is_constant());
        assert!(!c.is_var() && c.is_constant());
        assert!(!xc.is_var() && xc.is_constant());
        assert_eq!(x.as_var(), Some("x1"));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn canonicalisation_roundtrip() {
        let x = Term::var("x1");
        assert_eq!(x.canonicalize(), Term::canon("x1"));
        assert_eq!(x.canonicalize().decanonicalize(), x);
        let c = Term::constant("c1");
        assert_eq!(c.canonicalize(), c);
        assert_eq!(c.decanonicalize(), c);
    }

    #[test]
    fn canonical_constants_differ_from_language_constants() {
        // The bijection can(·) lands in a domain disjoint from language constants.
        assert_ne!(Term::canon("c1"), Term::constant("c1"));
        assert_ne!(Term::canon("x"), Term::var("x"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::var("x1").to_string(), "x1");
        assert_eq!(Term::constant("c1").to_string(), "'c1'");
        assert_eq!(Term::canon("x1").to_string(), "^x1");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut terms = vec![Term::canon("a"), Term::constant("a"), Term::var("a")];
        terms.sort();
        // Ordering follows the enum variant order: Var < Const < CanonConst.
        assert_eq!(terms, vec![Term::var("a"), Term::constant("a"), Term::canon("a")]);
    }
}
