//! Quickstart: parse two conjunctive queries, decide bag containment in both
//! directions, and print the certificates.
//!
//! Run with `cargo run --example quickstart`.

use diophantus::{is_bag_contained, parse_query, set_containment};

fn main() {
    // Two queries over a binary relation R and a unary relation S.
    // Under SET semantics the first is contained in the second (just drop the
    // S conjunct); under BAG semantics the extra S factor can push the
    // containee's multiplicity above the containing query's.
    let containee =
        parse_query("orders_with_priority(x) <- Order(x, x), Priority(x)").expect("valid query");
    let containing = parse_query("orders(x) <- Order(x, x)").expect("valid query");

    println!("containee : {containee}");
    println!("containing: {containing}");
    println!();

    // Classical set containment (Chandra–Merlin).
    let set = set_containment(&containee, &containing);
    println!("set containment   : {}", if set.holds() { "holds" } else { "fails" });
    if let Some(witness) = set.witness() {
        println!("  containment mapping: {witness}");
    }

    // Bag containment (the paper's decision procedure).
    let bag = is_bag_contained(&containee, &containing).expect("projection-free containee");
    println!("bag containment   : {bag}");
    if let Some(ce) = bag.counterexample() {
        println!("  violating bag     : {}", ce.bag);
        println!("  containee answers : {}", ce.containee_multiplicity);
        println!("  containing answers: {}", ce.containing_multiplicity);
        assert!(ce.verify(&containee, &containing), "certificates are machine-checkable");
    }
    println!();

    // The other direction fails as well, for a different reason: the
    // containing query has answers on bags where Priority is empty.
    let reverse = is_bag_contained(&containing, &containee).expect("projection-free containee");
    println!("reverse direction : {reverse}");

    // A pair where bag containment *does* hold: raising a multiplicity on the
    // containing side can only help.
    let q1 = parse_query("q1(x, y) <- Edge^2(x, y), Weight^3(y, y)").unwrap();
    let q2 = parse_query("q2(x, y) <- Edge^3(x, y), Weight^3(y, y)").unwrap();
    let result = is_bag_contained(&q1, &q2).unwrap();
    println!();
    println!("{q1}");
    println!("  is bag-contained in");
    println!("{q2}");
    println!("  ? {result}");
}
