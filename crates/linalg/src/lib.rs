//! # dioph-linalg — exact rational linear algebra and feasibility
//!
//! The decision procedure of *"Attacking Diophantus"* (PODS 2019) hinges on
//! Theorem 4.1: a monomial–polynomial inequality has a Diophantine solution
//! iff an associated **strict homogeneous linear system** is feasible, and
//! (Theorem 4.2) the latter question is decidable in polynomial time.
//!
//! This crate provides that substrate, fully self-contained:
//!
//! * [`LinearSystem`] / [`Constraint`] — general rational linear constraints
//!   (strict and non-strict inequalities and equalities);
//! * [`Row`] / [`SparseRow`] — the shared coefficient-row abstraction both
//!   engines pivot and eliminate over; the mostly-zero rows of the paper's
//!   strict homogeneous systems are stored sparsely, so zero-skipping comes
//!   from the representation instead of per-loop checks;
//! * [`fourier_motzkin`] — Fourier–Motzkin elimination with witness
//!   extraction (the "obviously correct" engine);
//! * [`simplex`] — an exact rational phase-1 simplex (the scalable engine);
//! * [`StrictHomogeneousSystem`] — the exact shape produced by the paper's
//!   reduction, with natural-number witness extraction
//!   ([`StrictHomogeneousSystem::natural_solution`]).
//!
//! ```
//! use dioph_linalg::{FeasibilityEngine, StrictHomogeneousSystem};
//!
//! // The homogeneous system derived from the paper's running 3-MPI.
//! let mut sys = StrictHomogeneousSystem::new(3);
//! sys.push_row_i64(&[-5, 1, 3]);
//! sys.push_row_i64(&[-3, -1, 3]);
//! sys.push_row_i64(&[-1, 1, -1]);
//! let witness = sys.natural_solution(FeasibilityEngine::Simplex).unwrap();
//! assert!(sys.is_satisfied_by_naturals(&witness));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod feasibility;
pub mod fourier_motzkin;
pub mod row;
pub mod simplex;
mod system;

pub use feasibility::{scale_to_naturals, FeasibilityEngine, StrictHomogeneousSystem};
pub use fourier_motzkin::FmOutcome;
pub use row::{Row, SparseRow};
pub use simplex::SimplexOutcome;
pub use system::{dot, dot_int, dot_int_int, dot_int_nat, Constraint, LinearSystem, Relation};
