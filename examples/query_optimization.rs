//! A query-optimizer scenario: which rewrites stay correct under SQL's bag
//! semantics?
//!
//! Query optimizers rewrite queries and must guarantee the rewrite returns
//! the same answers. Classical CQ theory answers this for SET semantics via
//! containment mappings, but commercial systems evaluate under BAG semantics
//! (duplicates matter, e.g. for `COUNT(*)` and `SUM`). This example walks
//! through rewrites that are sound under set semantics but change
//! multiplicities — exactly the phenomenon the paper's decision procedure
//! detects — plus rewrites that remain sound under bags.
//!
//! Run with `cargo run --example query_optimization`.

use diophantus::{is_bag_contained, parse_query, set_containment, ConjunctiveQuery};

fn report(name: &str, original: &ConjunctiveQuery, rewrite: &ConjunctiveQuery) {
    println!("── {name}");
    println!("   original: {original}");
    println!("   rewrite : {rewrite}");
    let set_fwd = set_containment(original, rewrite).holds();
    let set_bwd = set_containment(rewrite, original).holds();
    println!("   set semantics : original ⊑s rewrite: {set_fwd}, rewrite ⊑s original: {set_bwd}");

    // Bag containment of the original (projection-free) query into the rewrite.
    match is_bag_contained(original, rewrite) {
        Ok(result) => {
            println!("   bag semantics : original ⊑b rewrite: {}", result.holds());
            if let Some(ce) = result.counterexample() {
                println!("     duplicate-count mismatch on bag {}", ce.bag);
                println!(
                    "     original returns the tuple {} times, the rewrite only {} times",
                    ce.containee_multiplicity, ce.containing_multiplicity
                );
            }
        }
        Err(err) => println!("   bag semantics : not in the decidable fragment ({err})"),
    }
    println!();
}

fn main() {
    println!("Redundant-join elimination under set vs bag semantics\n");

    // 1. A genuinely redundant self-join: joining Emp with itself on the same
    //    key and projecting nothing away. Removing the duplicate atom is NOT
    //    multiplicity-preserving: the original counts each employee row
    //    squared, the rewrite counts it once.
    let original = parse_query("emp_sq(e, d) <- Emp^2(e, d)").unwrap();
    let rewrite = parse_query("emp(e, d) <- Emp(e, d)").unwrap();
    report("drop a duplicate self-join (changes COUNT results)", &original, &rewrite);

    // 2. The safe direction: adding the duplicate atom to the rewrite can only
    //    increase multiplicities, so the original is bag-contained in it.
    report("keep the duplicate (bag-safe over-approximation)", &rewrite, &original);

    // 3. Join with a filtering relation vs dropping the filter. Sound for
    //    sets in one direction, unsound for bags in both (the filter's
    //    multiplicity scales the count).
    let filtered = parse_query("paid_orders(o, c) <- Orders(o, c), Paid(o)").unwrap();
    let unfiltered = parse_query("all_orders(o, c) <- Orders(o, c)").unwrap();
    report("drop a semijoin-style filter", &filtered, &unfiltered);

    // 4. A rewrite that introduces an existential join partner. The original
    //    is contained in the rewrite because the rewrite's sum includes the
    //    identity assignment.
    let original = parse_query("pairs(a, b) <- Follows(a, b), Follows(b, a)").unwrap();
    let rewrite = parse_query("pairs_rw(a, b) <- Follows(a, b), Follows(b, z)").unwrap();
    report("generalise one join endpoint (bag-safe)", &original, &rewrite);

    // 5. The paper's own Section 2 example: q1 ⊑b q2 but q2 ⋢b q1 even though
    //    the two are set-equivalent — the canonical illustration that bag
    //    semantics is strictly finer than set semantics.
    let q1 = diophantus::cq::paper_examples::section2_query_q1();
    let q2 = diophantus::cq::paper_examples::section2_query_q2();
    report("the paper's Section 2 pair (set-equivalent, not bag-equivalent)", &q1, &q2);
    report("...and the converse direction", &q2, &q1);
}
