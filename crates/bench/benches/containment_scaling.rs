//! E4 — Theorem 5.2: the decision procedure is Π₂ᵖ in the size of the
//! containing query and CoNP in the size of the containee.
//!
//! Two sweeps isolate the two dependencies:
//! * containee size (self-containment of growing path queries) — the cost is
//!   dominated by the polynomially many unknowns and stays modest;
//! * containing-query size (the `2^k`-mapping family) — the number of
//!   containment mappings, and hence the compiled polynomial, grows
//!   exponentially, which is the exponential dependence the theorem permits.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::{exponential_mapping_instance, path_self_containment};
use dioph_containment::{Algorithm, BagContainmentDecider};

fn bench_containee_scaling(c: &mut Criterion) {
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);
    let mut group = c.benchmark_group("E4/containee_size");
    for length in [1usize, 2, 4, 8, 12, 16] {
        let (containee, containing) = path_self_containment(length);
        let verdict = decider.decide(&containee, &containing).unwrap().holds();
        println!("E4: path containee with {length:>2} atoms → contained = {verdict}");
        group.bench_with_input(
            BenchmarkId::from_parameter(length),
            &(containee, containing),
            |b, (containee, containing)| {
                b.iter(|| decider.decide(black_box(containee), black_box(containing)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_containing_scaling(c: &mut Criterion) {
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);
    let mut group = c.benchmark_group("E4/containing_size");
    for k in [2usize, 4, 6, 8, 10, 12] {
        let (containee, containing) = exponential_mapping_instance(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &(containee, containing),
            |b, (containee, containing)| {
                b.iter(|| decider.decide(black_box(containee), black_box(containing)).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_all_probes_vs_most_general(c: &mut Criterion) {
    // Theorem 5.3 (single probe) vs Corollary 3.1 (all probes): the all-probe
    // variant pays an extra factor exponential in the containee arity.
    let mut group = c.benchmark_group("E4/probe_strategy");
    for length in [2usize, 3, 4] {
        let (containee, containing) = path_self_containment(length);
        for (label, algorithm) in
            [("most_general", Algorithm::MostGeneralProbe), ("all_probes", Algorithm::AllProbes)]
        {
            let decider = BagContainmentDecider::new(algorithm);
            group.bench_with_input(
                BenchmarkId::new(label, length),
                &(containee.clone(), containing.clone()),
                |b, (containee, containing)| {
                    b.iter(|| decider.decide(black_box(containee), black_box(containing)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_containee_scaling, bench_containing_scaling, bench_all_probes_vs_most_general
}
criterion_main!(benches);
