//! E5 — Theorem 5.4: NP-hardness via 3-colorability.
//!
//! Times the bag-containment decision on the `(q_T, q_T ∧ q_G)` instances
//! produced from random graphs of growing size, and compares with the direct
//! backtracking colorability search. Both answers are asserted to agree, and
//! the exponential growth (in the number of graph vertices / containment
//! mappings) is the expected shape.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::bench_graph;
use dioph_containment::{Algorithm, BagContainmentDecider};
use dioph_workloads::threecol::{three_colorability_instance, three_colorable_via_containment};

fn bench_random_graphs(c: &mut Criterion) {
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);
    let mut group = c.benchmark_group("E5/random_graph_via_containment");
    for vertices in [4usize, 5, 6, 7, 8] {
        let graph = bench_graph(vertices, 0.5);
        let direct = graph.is_three_colorable();
        let via = three_colorable_via_containment(&graph, &decider);
        assert_eq!(direct, via);
        println!("E5: G({vertices}, 0.5) with {} edges → 3-colorable = {via}", graph.edge_count());
        group.bench_with_input(BenchmarkId::from_parameter(vertices), &graph, |b, graph| {
            b.iter(|| three_colorable_via_containment(black_box(graph), &decider));
        });
    }
    group.finish();
}

fn bench_direct_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5/random_graph_direct_backtracking");
    for vertices in [4usize, 6, 8, 10, 12] {
        let graph = bench_graph(vertices, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(vertices), &graph, |b, graph| {
            b.iter(|| black_box(graph).is_three_colorable());
        });
    }
    group.finish();
}

fn bench_hard_instances(c: &mut Criterion) {
    // Uncolorable cliques: the reduction must prove non-containment, i.e. the
    // compiled polynomial is empty (no proper colorings).
    let decider = BagContainmentDecider::new(Algorithm::MostGeneralProbe);
    let mut group = c.benchmark_group("E5/uncolorable_cliques");
    for vertices in [4usize, 5, 6] {
        let graph = dioph_workloads::Graph::complete(vertices);
        let (containee, containing) = three_colorability_instance(&graph);
        assert!(!decider.decide(&containee, &containing).unwrap().holds());
        group.bench_with_input(
            BenchmarkId::from_parameter(vertices),
            &(containee, containing),
            |b, (containee, containing)| {
                b.iter(|| decider.decide(black_box(containee), black_box(containing)).unwrap());
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_random_graphs, bench_direct_oracle, bench_hard_instances
}
criterion_main!(benches);
