//! The static cost pass: bounds on the engine work a paper-decidable pair
//! implies, computed without compiling anything.
//!
//! Two quantities drive the decision procedure's cost:
//!
//! * the **probe space** — `--algorithm all-probes` decodes
//!   `|adom(I_q1)|^arity` candidate tuples (`ProbeSpace::raw_len`); the
//!   default most-general algorithm (Theorem 5.3) skips the enumeration,
//!   so a large probe space is an advisory, not an error;
//! * the **strict homogeneous system** (Theorem 4.1) — one unknown per
//!   distinct atom of the grounded containee, one row per term of the
//!   containment-mapping polynomial. The unknown count is exact; the row
//!   count is bounded by the number of containment mappings, for which two
//!   independent static bounds are taken (assignments of the containing
//!   query's existential variables into the active domain, and per-atom
//!   image choices).
//!
//! The estimates are pinned against the real `ProbeSpace::raw_len` and
//! `StrictHomogeneousSystem` dimensions in the facade crate's
//! `tests/analysis.rs`.

use dioph_cq::{canonical_active_domain, ConjunctiveQuery};

/// Static cost bounds for one paper-decidable pair. Values saturate at
/// `u128::MAX` instead of overflowing (a saturated estimate is far past
/// every advisory threshold anyway).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostEstimate {
    /// `|adom(I_{q1})|^arity`, the candidate-tuple count of the containee's
    /// probe space — equal to `ProbeSpace::raw_len` whenever that fits in
    /// `usize`. `None` when the containee's head carries constants (probe
    /// tuples are defined for all-variable heads only).
    pub probe_space: Option<u128>,
    /// Exact number of LP unknowns: distinct atoms of the containee
    /// grounded with the most-general probe tuple (the dimension of the
    /// strict homogeneous system).
    pub lp_unknowns: u64,
    /// Upper bound on the LP row count: the system has one row per
    /// polynomial term, and at most one term per containment mapping.
    pub lp_rows_bound: u128,
}

impl CostEstimate {
    /// `lp_unknowns × lp_rows_bound`, the bounded cell count of the LP
    /// tableau (saturating) — the quantity the `D031` advisory thresholds.
    pub fn lp_cells_bound(&self) -> u128 {
        u128::from(self.lp_unknowns).saturating_mul(self.lp_rows_bound)
    }
}

fn checked_pow_saturating(base: u128, exp: usize) -> u128 {
    u32::try_from(exp).ok().and_then(|e| base.checked_pow(e)).unwrap_or(u128::MAX)
}

/// Computes the static cost bounds of a pair whose containee is in the
/// paper fragment (projection-free, safe, non-empty body). The caller is
/// expected to have classified the pair first; the function itself never
/// panics on other inputs, but the bounds are only meaningful for
/// paper-decidable pairs.
pub fn estimate_cost(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> CostEstimate {
    let probe_space = if containee.head().iter().all(dioph_cq::Term::is_var) {
        let domain = canonical_active_domain(containee).len() as u128;
        Some(if containee.arity() == 0 {
            // A Boolean query has exactly one (empty) candidate tuple.
            1
        } else {
            checked_pow_saturating(domain, containee.arity())
        })
    } else {
        None
    };

    // Grounding with the most-general probe tuple replaces every variable
    // of a projection-free containee by its canonical constant; the
    // distinct atoms of the result are exactly the LP unknowns.
    let grounded = containee.most_general_grounding();
    let lp_unknowns = grounded.distinct_atom_count() as u64;

    // Bound 1: every existential variable of the containing query maps into
    // the grounded containee's active domain (head variables are pinned to
    // the probe tuple by the containment-mapping condition).
    let adom = canonical_active_domain(&grounded).len() as u128;
    let bound_vars = checked_pow_saturating(adom, containing.existential_variables().len());

    // Bound 2: a homomorphism is determined by the image of each distinct
    // body atom (an atom's image fixes all variables at its positions), and
    // each atom can only land on a grounded atom of the same relation and
    // arity.
    let mut bound_atoms: u128 = 1;
    for atom in containing.body_atoms() {
        let compatible = grounded
            .body_atoms()
            .filter(|g| g.relation() == atom.relation() && g.terms().len() == atom.terms().len())
            .count() as u128;
        bound_atoms = bound_atoms.saturating_mul(compatible);
    }

    CostEstimate { probe_space, lp_unknowns, lp_rows_bound: bound_vars.min(bound_atoms) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::{parse_query, ProbeSpace};

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    #[test]
    fn probe_space_matches_the_real_probe_space() {
        // The paper's Section 3 sixteen-probe example and a few shapes.
        for text in [
            "q(x1, x2) <- R(x1, x2), R(x1, 'c2'), R('c1', x2)",
            "q(x1, x2) <- R^2(x1, x2), P^3(x2, x2)",
            "b() <- R('a', 'b')",
            "d(x, x) <- R(x, x)",
        ] {
            let query = q(text);
            let estimate = estimate_cost(&query, &query);
            assert_eq!(
                estimate.probe_space,
                Some(ProbeSpace::new(&query).raw_len() as u128),
                "{text}"
            );
        }
    }

    #[test]
    fn constant_heads_have_no_probe_space() {
        let containee = q("q('c1') <- R('c1', 'c1')");
        assert_eq!(estimate_cost(&containee, &containee).probe_space, None);
    }

    #[test]
    fn unknowns_count_distinct_grounded_atoms() {
        // q1 grounds to {R²(x̂1,x̂2), R³(x̂1,c2), R(c1,x̂2)}: 3 distinct atoms.
        let q1 = q("q1(x1, x2) <- R^2(x1, x2), R^3(x1, 'c2'), R('c1', x2)");
        let q2 = q("q2(x1, x2) <- R^3(x1, x2), R^2(x1, y1), R^2(y2, y1)");
        let estimate = estimate_cost(&q1, &q2);
        assert_eq!(estimate.lp_unknowns, 3);
        // Containing query: 2 existential variables over a 4-element active
        // domain {x̂1, x̂2, c1, c2} bounds the mappings by 4² = 16; the
        // per-atom bound is 3³ = 27; the estimate takes the minimum.
        assert_eq!(estimate.lp_rows_bound, 16);
        assert_eq!(estimate.lp_cells_bound(), 48);
    }

    #[test]
    fn per_atom_bound_kicks_in_for_constrained_relations() {
        // expmap shape: containing body R(x,x), E(x,z0), E(x,z1) against a
        // grounded containee with 1 R-atom and 2 E-atoms: per-atom bound
        // 1·2·2 = 4 beats the variable bound 3² = 9.
        let containee = q("q1(x) <- R(x, x), E(x, 'a'), E(x, 'b')");
        let containing = q("q2(x) <- R(x, x), E(x, z0), E(x, z1)");
        let estimate = estimate_cost(&containee, &containing);
        assert_eq!(estimate.lp_unknowns, 3);
        assert_eq!(estimate.lp_rows_bound, 4);
    }

    #[test]
    fn unmatchable_relations_zero_the_bound() {
        let containee = q("q(x) <- R(x, x)");
        let containing = q("p(x) <- S(x, y)");
        assert_eq!(estimate_cost(&containee, &containing).lp_rows_bound, 0);
    }

    #[test]
    fn huge_spaces_saturate_instead_of_overflowing() {
        // 50 head variables over a 50-element domain: 50^50 ≈ 8.9e84 is far
        // past u128::MAX ≈ 3.4e38, so the estimate saturates.
        let head: Vec<String> = (0..50).map(|i| format!("x{i}")).collect();
        let body: Vec<String> = head.iter().map(|v| format!("R({v}, {v})")).collect();
        let text = format!("q({}) <- {}", head.join(", "), body.join(", "));
        let query = q(&text);
        let estimate = estimate_cost(&query, &query);
        assert_eq!(estimate.probe_space, Some(u128::MAX));
    }
}
