//! Minimal JSON emission helpers.
//!
//! The workspace builds fully offline (no serde), so the machine-readable
//! output of the certificates — and of the `diophantus` CLI built on top of
//! them — is assembled from these two functions. Only *emission* is
//! provided; nothing in the pipeline needs to parse JSON.

/// Escapes a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a string as a quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("µ ⊑b"), "µ ⊑b");
    }

    #[test]
    fn string_quotes() {
        assert_eq!(string("R('c1', 'c2')"), "\"R('c1', 'c2')\"");
    }
}
