//! End-to-end integration tests reproducing every worked example of the
//! paper (experiments E1 and E2 of EXPERIMENTS.md), exercised through the
//! public facade crate only.

use diophantus::containment::CompiledProbe;
use diophantus::cq::paper_examples;
use diophantus::cq::{probe_tuples, Term};
use diophantus::{
    bag_answer_multiplicity, is_bag_contained, parse_query, set_containment, Algorithm,
    BagContainmentDecider, BagInstance, FeasibilityEngine, Natural,
};

fn c(name: &str) -> Term {
    Term::constant(name)
}

fn nat(v: u64) -> Natural {
    Natural::from(v)
}

/// Section 2: the bag answer of the running query on the worked bag instance
/// is exactly {c1c2 ↦ 10, c1c5 ↦ 30}.
#[test]
fn section2_equation2_worked_example() {
    let q = paper_examples::section2_query_q3();
    let bag = BagInstance::from_u64_multiplicities(paper_examples::section2_bag());
    assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("c1"), c("c2")]), nat(10));
    assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("c1"), c("c5")]), nat(30));
    assert_eq!(diophantus::bag_answers(&q, &bag).len(), 2);
}

/// Section 2: the full containment table between q1, q2 and q3:
/// (1) q1 ⊑b q2, q2 ⊑s q1, q2 ⋢b q1;  (2) q1 ⊑b q3, q2 ⊑b q3;
/// (3) q3 ⋢s q1, q3 ⋢s q2 (hence also not bag-contained).
#[test]
fn section2_containment_table() {
    let q1 = paper_examples::section2_query_q1();
    let q2 = paper_examples::section2_query_q2();
    let q3 = paper_examples::section2_query_q3();

    // (1)
    assert!(is_bag_contained(&q1, &q2).unwrap().holds());
    assert!(set_containment(&q2, &q1).holds());
    let q2_not_in_q1 = is_bag_contained(&q2, &q1).unwrap();
    assert!(!q2_not_in_q1.holds());
    let witness = q2_not_in_q1.counterexample().unwrap();
    assert!(witness.verify(&q2, &q1));

    // (2)
    assert!(is_bag_contained(&q1, &q3).unwrap().holds());
    assert!(is_bag_contained(&q2, &q3).unwrap().holds());
    assert!(set_containment(&q1, &q3).holds());
    assert!(set_containment(&q2, &q3).holds());

    // (3)
    assert!(!set_containment(&q3, &q1).holds());
    assert!(!set_containment(&q3, &q2).holds());
}

/// Section 2: the specific counterexample bag Iµ = {R²(c1,c2), P(c2,c2)} gives
/// q1µ(c1,c2) = 4 and q2µ(c1,c2) = 8.
#[test]
fn section2_counterexample_bag_values() {
    let q1 = paper_examples::section2_query_q1();
    let q2 = paper_examples::section2_query_q2();
    let bag = BagInstance::from_u64_multiplicities(paper_examples::section2_counterexample_bag());
    assert_eq!(bag_answer_multiplicity(&q1, &bag, &[c("c1"), c("c2")]), nat(4));
    assert_eq!(bag_answer_multiplicity(&q2, &bag, &[c("c1"), c("c2")]), nat(8));
}

/// Section 3: the probe-tuple example — sixteen probe tuples over
/// {x̂1, x̂2, c1, c2}.
#[test]
fn section3_probe_tuples() {
    let q = paper_examples::section3_probe_example();
    let tuples = probe_tuples(&q);
    assert_eq!(tuples.len(), 16);
    assert!(tuples.contains(&vec![Term::canon("x1"), Term::canon("x2")]));
    assert!(tuples.contains(&vec![c("c2"), c("c2")]));
}

/// Sections 3–4: the running example compiles to the printed monomial and
/// polynomial, the MPI is solvable, the paper's solutions check out, and the
/// decision procedure concludes non-containment with a verified witness.
#[test]
fn section3_and_4_running_example_end_to_end() {
    let q1 = paper_examples::section3_query_q1();
    let q2 = paper_examples::section3_query_q2();
    let probe = vec![Term::canon("x1"), Term::canon("x2")];
    let compiled = CompiledProbe::compile(&q1, &q2, &probe).unwrap();

    // Three containment mappings → three monomials; total degree 7 vs 6.
    assert_eq!(compiled.mapping_count(), 3);
    assert_eq!(compiled.mpi().polynomial().degree(), 7);
    assert_eq!(compiled.mpi().monomial().degree(), 6);

    // The paper's Diophantine solutions of the MPI, in the paper's unknown
    // order (u1, u2, u3) = (R(x̂1,x̂2), R(c1,x̂2), R(x̂1,c2)).
    let position = |s: &str| compiled.atoms().position(|a| a.to_string() == s).unwrap();
    let u1 = position("R(^x1, ^x2)");
    let u2 = position("R('c1', ^x2)");
    let u3 = position("R(^x1, 'c2')");
    let mut point = vec![nat(0); 3];
    point[u1] = nat(1);
    point[u2] = nat(4);
    point[u3] = nat(3);
    assert_eq!(compiled.mpi().polynomial().evaluate(&point), nat(98));
    assert_eq!(compiled.mpi().monomial().evaluate(&point), nat(108));
    assert!(compiled.mpi().is_solution(&point));
    point[u2] = nat(9);
    assert_eq!(compiled.mpi().polynomial().evaluate(&point), nat(163));
    assert_eq!(compiled.mpi().monomial().evaluate(&point), nat(243));
    assert!(compiled.mpi().is_solution(&point));

    // The decision procedure agrees and extracts a verified witness bag.
    for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
        for algorithm in [Algorithm::MostGeneralProbe, Algorithm::AllProbes] {
            let decider = BagContainmentDecider::new(algorithm).with_engine(engine);
            let result = decider.decide(&q1, &q2).unwrap();
            let ce = result.counterexample().expect("the paper shows non-containment");
            assert!(ce.verify(&q1, &q2));
        }
    }
}

/// Section 2's first containment claim re-parsed from datalog text: the whole
/// pipeline works from strings.
#[test]
fn textual_roundtrip_of_section2_claim() {
    let q1 = parse_query("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)").unwrap();
    let q2 = parse_query("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)").unwrap();
    assert!(is_bag_contained(&q1, &q2).unwrap().holds());
    assert!(!is_bag_contained(&q2, &q1).unwrap().holds());
}

/// The bag-answer example from the facade doc: q1 ⊑b q2 and q2 ⊑b q1 both
/// decided through every algorithm/engine combination, agreeing everywhere.
#[test]
fn all_algorithms_agree_on_the_paper_pairs() {
    let q1 = paper_examples::section2_query_q1();
    let q2 = paper_examples::section2_query_q2();
    let pairs = [(q1.clone(), q2.clone()), (q2, q1)];
    for (containee, containing) in pairs {
        let mut verdicts = Vec::new();
        for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
            for algorithm in [Algorithm::MostGeneralProbe, Algorithm::AllProbes] {
                let decider = BagContainmentDecider::new(algorithm).with_engine(engine);
                verdicts.push(decider.decide(&containee, &containing).unwrap().holds());
            }
        }
        verdicts.push(
            BagContainmentDecider::new(Algorithm::GuessCheck { budget: 500_000 })
                .decide(&containee, &containing)
                .unwrap()
                .holds(),
        );
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "algorithms disagree on {containee} vs {containing}: {verdicts:?}"
        );
    }
}
