//! Arbitrary-precision signed integers built on top of [`Natural`].
//!
//! [`Integer`] is a **hybrid** representation: every value in the `i64` range
//! is stored inline, and only values outside it promote to the sign-magnitude
//! form over [`Natural`] limbs. The representation is canonical — the big
//! form is used *only* for values that do not fit `i64` — so derived equality
//! and hashing are value equality. Arithmetic on two inline values runs as
//! checked machine arithmetic (widened to `i128`, which always suffices for
//! one addition or multiplication) and promotes to the limb representation
//! only on demand.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

use crate::natural::{gcd_u64, Natural, ParseNaturalError};

/// Sign of an [`Integer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Mul for Sign {
    type Output = Sign;

    /// Returns the sign of a product of two signed values.
    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

impl Sign {
    /// Flips the sign (zero stays zero).
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// The internal representation. Invariant (canonical form): `Big` is used
/// only for values outside the `i64` range; its magnitude is then
/// `> i64::MAX` (positive) or `> i64::MIN.unsigned_abs()` (negative), and
/// its sign is never [`Sign::Zero`].
#[derive(Clone, PartialEq, Eq, Hash)]
enum IRepr {
    /// A value in `i64::MIN..=i64::MAX`, stored inline.
    Small(i64),
    /// A value outside the `i64` range, as sign and magnitude.
    Big { sign: Sign, magnitude: Natural },
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use dioph_arith::Integer;
///
/// let a = Integer::from(-7i64);
/// let b = Integer::from(3i64);
/// assert_eq!(&a * &b, Integer::from(-21i64));
/// assert_eq!((&a + &b).to_i64(), Some(-4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer(IRepr);

impl Default for Integer {
    fn default() -> Self {
        Integer::zero()
    }
}

/// A borrowed-or-inline view of an integer's magnitude: borrowing the stored
/// [`Natural`] on the big path, materialising an (allocation-free) inline
/// natural on the small path.
enum MagView<'a> {
    Inline(Natural),
    Ref(&'a Natural),
}

impl MagView<'_> {
    fn get(&self) -> &Natural {
        match self {
            MagView::Inline(n) => n,
            MagView::Ref(n) => n,
        }
    }
}

impl Integer {
    /// The integer zero.
    pub const fn zero() -> Self {
        Integer(IRepr::Small(0))
    }

    /// The integer one.
    pub const fn one() -> Self {
        Integer(IRepr::Small(1))
    }

    /// The integer minus one.
    pub const fn minus_one() -> Self {
        Integer(IRepr::Small(-1))
    }

    /// Builds an integer from a sign and magnitude (normalising zero and
    /// demoting to the inline form when the value fits `i64`).
    pub fn from_sign_magnitude(sign: Sign, magnitude: Natural) -> Self {
        if magnitude.is_zero() {
            return Integer::zero();
        }
        assert!(sign != Sign::Zero, "non-zero magnitude with Sign::Zero");
        if let Some(m) = magnitude.to_u64() {
            match sign {
                Sign::Positive if m <= i64::MAX as u64 => return Integer(IRepr::Small(m as i64)),
                // m == 2^63 maps exactly onto i64::MIN.
                Sign::Negative if m <= i64::MIN.unsigned_abs() => {
                    return Integer(IRepr::Small((m as i128).wrapping_neg() as i64));
                }
                _ => {}
            }
        }
        Integer(IRepr::Big { sign, magnitude })
    }

    /// Builds the canonical form of a 128-bit value.
    fn from_i128_value(v: i128) -> Self {
        if let Ok(small) = i64::try_from(v) {
            return Integer(IRepr::Small(small));
        }
        let sign = if v < 0 { Sign::Negative } else { Sign::Positive };
        Integer(IRepr::Big { sign, magnitude: Natural::from(v.unsigned_abs()) })
    }

    /// The inline value, if this integer is on the small path.
    fn small(&self) -> Option<i64> {
        match self.0 {
            IRepr::Small(v) => Some(v),
            IRepr::Big { .. } => None,
        }
    }

    /// Sign and magnitude view without cloning big magnitudes.
    fn parts(&self) -> (Sign, MagView<'_>) {
        match &self.0 {
            IRepr::Small(v) => {
                let sign = match v.cmp(&0) {
                    Ordering::Less => Sign::Negative,
                    Ordering::Equal => Sign::Zero,
                    Ordering::Greater => Sign::Positive,
                };
                (sign, MagView::Inline(Natural::from(v.unsigned_abs())))
            }
            IRepr::Big { sign, magnitude } => (*sign, MagView::Ref(magnitude)),
        }
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        match &self.0 {
            IRepr::Small(v) => match v.cmp(&0) {
                Ordering::Less => Sign::Negative,
                Ordering::Equal => Sign::Zero,
                Ordering::Greater => Sign::Positive,
            },
            IRepr::Big { sign, .. } => *sign,
        }
    }

    /// The absolute value as a [`Natural`]. Allocation-free on the small
    /// path; clones the limbs on the big path.
    pub fn magnitude(&self) -> Natural {
        match &self.0 {
            IRepr::Small(v) => Natural::from(v.unsigned_abs()),
            IRepr::Big { magnitude, .. } => magnitude.clone(),
        }
    }

    /// Consumes the integer, returning its absolute value.
    pub fn into_magnitude(self) -> Natural {
        match self.0 {
            IRepr::Small(v) => Natural::from(v.unsigned_abs()),
            IRepr::Big { magnitude, .. } => magnitude,
        }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, IRepr::Small(0))
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        matches!(self.0, IRepr::Small(1))
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign() == Sign::Positive
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign() == Sign::Negative
    }

    /// Absolute value.
    pub fn abs(&self) -> Integer {
        match &self.0 {
            IRepr::Small(v) => Integer::from_i128_value((*v as i128).abs()),
            IRepr::Big { magnitude, .. } => {
                Integer(IRepr::Big { sign: Sign::Positive, magnitude: magnitude.clone() })
            }
        }
    }

    /// Converts to `i64` if the value fits (always on the small path, by the
    /// canonical-representation invariant).
    pub fn to_i64(&self) -> Option<i64> {
        self.small()
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.0 {
            IRepr::Small(v) => Some(*v as i128),
            IRepr::Big { sign, magnitude } => {
                let mag = magnitude.to_u128()?;
                match sign {
                    Sign::Zero => Some(0),
                    Sign::Positive => i128::try_from(mag).ok(),
                    Sign::Negative => {
                        if mag <= i128::MAX as u128 + 1 {
                            Some((mag as i128).wrapping_neg())
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Lossy conversion to `f64` for reporting purposes only.
    pub fn to_f64_lossy(&self) -> f64 {
        match &self.0 {
            IRepr::Small(v) => *v as f64,
            IRepr::Big { sign, magnitude } => {
                let m = magnitude.to_f64_lossy();
                match sign {
                    Sign::Negative => -m,
                    _ => m,
                }
            }
        }
    }

    /// Converts a non-negative integer into a [`Natural`]; `None` for negatives.
    pub fn to_natural(&self) -> Option<Natural> {
        if self.is_negative() {
            None
        } else {
            Some(self.magnitude())
        }
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, exp: u64) -> Integer {
        if let Some(v) = self.small() {
            if let Ok(e) = u32::try_from(exp) {
                if let Some(r) = (v as i128).checked_pow(e) {
                    return Integer::from_i128_value(r);
                }
            }
        }
        let (sign, mag) = self.parts();
        let mag = mag.get().pow(exp);
        let sign = match sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Positive
                } else {
                    Sign::Zero
                }
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp.is_multiple_of(2) {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        Integer::from_sign_magnitude(
            sign,
            if self.is_zero() && exp == 0 { Natural::one() } else { mag },
        )
    }

    /// Greatest common divisor of absolute values (always non-negative).
    ///
    /// Two inline values take a binary GCD on machine words (no allocation);
    /// the limb path is only entered when an operand is genuinely big. The
    /// split is observable through [`crate::stats`].
    pub fn gcd(&self, other: &Integer) -> Natural {
        if let (Some(a), Some(b)) = (self.small(), other.small()) {
            crate::stats::record_int_small_hit();
            return Natural::from(gcd_u64(a.unsigned_abs(), b.unsigned_abs()));
        }
        crate::stats::record_int_big_fallback();
        let (_, ma) = self.parts();
        let (_, mb) = other.parts();
        ma.get().gcd(mb.get())
    }

    /// Exact division: `self / divisor` when the division leaves no
    /// remainder, `None` when `divisor` is zero or does not divide exactly.
    ///
    /// This is the single-step division of the fraction-free (Bareiss)
    /// elimination kernel: the kernel's algebra guarantees divisibility, and
    /// the checked form turns a violated guarantee into a recoverable `None`
    /// instead of silent corruption. Two inline values divide as `i128`
    /// machine arithmetic; the split is observable through [`crate::stats`].
    pub fn checked_exact_div(&self, divisor: &Integer) -> Option<Integer> {
        if divisor.is_zero() {
            return None;
        }
        if let (Some(a), Some(b)) = (self.small(), divisor.small()) {
            crate::stats::record_int_small_hit();
            let (a, b) = (a as i128, b as i128);
            if a % b != 0 {
                return None;
            }
            return Some(Integer::from_i128_value(a / b));
        }
        crate::stats::record_int_big_fallback();
        let (q, r) = self.div_rem(divisor);
        if r.is_zero() {
            Some(q)
        } else {
            None
        }
    }

    /// Exact division that must succeed.
    ///
    /// # Panics
    /// Panics if `divisor` is zero or does not divide `self` exactly — a
    /// broken invariant of the calling elimination kernel, not a data error.
    pub fn exact_div(&self, divisor: &Integer) -> Integer {
        self.checked_exact_div(divisor)
            .unwrap_or_else(|| panic!("exact_div: {divisor} does not divide {self}"))
    }

    /// Truncated division: returns `(quotient, remainder)` with the remainder
    /// carrying the sign of the dividend (like Rust's `/` and `%` on
    /// primitive integers).
    pub fn div_rem(&self, other: &Integer) -> (Integer, Integer) {
        assert!(!other.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.small(), other.small()) {
            // i128 arithmetic sidesteps the single i64 overflow (MIN / -1).
            return (
                Integer::from_i128_value(a as i128 / b as i128),
                Integer::from_i128_value(a as i128 % b as i128),
            );
        }
        let (sa, ma) = self.parts();
        let (sb, mb) = other.parts();
        let (q_mag, r_mag) = ma.get().div_rem(mb.get());
        let q_sign = if q_mag.is_zero() { Sign::Zero } else { sa * sb };
        let r_sign = if r_mag.is_zero() { Sign::Zero } else { sa };
        (Integer::from_sign_magnitude(q_sign, q_mag), Integer::from_sign_magnitude(r_sign, r_mag))
    }
}

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        Integer::from_sign_magnitude(if n.is_zero() { Sign::Zero } else { Sign::Positive }, n)
    }
}

impl From<&Natural> for Integer {
    fn from(n: &Natural) -> Self {
        if let Some(v) = n.to_u64() {
            return Integer::from(v);
        }
        Integer::from(n.clone())
    }
}

macro_rules! impl_from_small_signed {
    ($($t:ty),*) => {
        $(impl From<$t> for Integer {
            fn from(v: $t) -> Self {
                Integer(IRepr::Small(v as i64))
            }
        })*
    };
}

impl_from_small_signed!(i8, i16, i32, i64, isize);

impl From<i128> for Integer {
    fn from(v: i128) -> Self {
        Integer::from_i128_value(v)
    }
}

macro_rules! impl_from_small_unsigned {
    ($($t:ty),*) => {
        $(impl From<$t> for Integer {
            fn from(v: $t) -> Self {
                Integer(IRepr::Small(v as i64))
            }
        })*
    };
}

impl_from_small_unsigned!(u8, u16, u32);

macro_rules! impl_from_wide_unsigned {
    ($($t:ty),*) => {
        $(impl From<$t> for Integer {
            fn from(v: $t) -> Self {
                match i64::try_from(v) {
                    Ok(small) => Integer(IRepr::Small(small)),
                    Err(_) => Integer(IRepr::Big {
                        sign: Sign::Positive,
                        magnitude: Natural::from(v as u128),
                    }),
                }
            }
        })*
    };
}

impl_from_wide_unsigned!(u64, u128, usize);

/// Error produced when parsing an [`Integer`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntegerError(ParseNaturalError);

impl fmt::Display for ParseIntegerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseIntegerError {}

impl FromStr for Integer {
    type Err = ParseIntegerError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, rest) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag = Natural::from_decimal_str(rest).map_err(ParseIntegerError)?;
        let sign = if mag.is_zero() {
            Sign::Zero
        } else if neg {
            Sign::Negative
        } else {
            Sign::Positive
        };
        Ok(Integer::from_sign_magnitude(sign, mag))
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Some(a), Some(b)) = (self.small(), other.small()) {
            return a.cmp(&b);
        }
        match self.sign().cmp(&other.sign()) {
            Ordering::Equal => {
                let (sign, ma) = self.parts();
                let (_, mb) = other.parts();
                match sign {
                    Sign::Zero => Ordering::Equal,
                    Sign::Positive => ma.get().cmp(mb.get()),
                    Sign::Negative => mb.get().cmp(ma.get()),
                }
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            IRepr::Small(v) => write!(f, "{v}"),
            IRepr::Big { sign, magnitude } => match sign {
                Sign::Negative => write!(f, "-{magnitude}"),
                _ => write!(f, "{magnitude}"),
            },
        }
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Integer({self})")
    }
}

impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        match &self.0 {
            IRepr::Small(v) => Integer::from_i128_value(-(*v as i128)),
            // Re-normalise: negating a big value can land exactly on
            // i64::MIN (magnitude 2^63).
            IRepr::Big { sign, magnitude } => {
                Integer::from_sign_magnitude(sign.negate(), magnitude.clone())
            }
        }
    }
}

impl Neg for Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        match self.0 {
            IRepr::Small(v) => Integer::from_i128_value(-(v as i128)),
            IRepr::Big { sign, magnitude } => {
                Integer::from_sign_magnitude(sign.negate(), magnitude)
            }
        }
    }
}

impl Add for &Integer {
    type Output = Integer;
    fn add(self, rhs: &Integer) -> Integer {
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            // i64 + i64 always fits i128; promotion happens on demand.
            return Integer::from_i128_value(a as i128 + b as i128);
        }
        let (sa, ma) = self.parts();
        let (sb, mb) = rhs.parts();
        match (sa, sb) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Integer::from_sign_magnitude(a, ma.get() + mb.get()),
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match ma.get().cmp(mb.get()) {
                    Ordering::Equal => Integer::zero(),
                    Ordering::Greater => Integer::from_sign_magnitude(sa, ma.get() - mb.get()),
                    Ordering::Less => Integer::from_sign_magnitude(sb, mb.get() - ma.get()),
                }
            }
        }
    }
}

impl Add for Integer {
    type Output = Integer;
    fn add(self, rhs: Integer) -> Integer {
        &self + &rhs
    }
}

impl AddAssign<&Integer> for Integer {
    fn add_assign(&mut self, rhs: &Integer) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Integer {
    fn add_assign(&mut self, rhs: Integer) {
        *self += &rhs;
    }
}

impl Sub for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            return Integer::from_i128_value(a as i128 - b as i128);
        }
        self + &(-rhs)
    }
}

impl Sub for Integer {
    type Output = Integer;
    fn sub(self, rhs: Integer) -> Integer {
        &self - &rhs
    }
}

impl SubAssign<&Integer> for Integer {
    fn sub_assign(&mut self, rhs: &Integer) {
        *self = &*self - rhs;
    }
}

impl Mul for &Integer {
    type Output = Integer;
    fn mul(self, rhs: &Integer) -> Integer {
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            // i64 × i64 always fits i128; promotion happens on demand.
            return Integer::from_i128_value(a as i128 * b as i128);
        }
        let (sa, ma) = self.parts();
        let (sb, mb) = rhs.parts();
        Integer::from_sign_magnitude(sa * sb, ma.get() * mb.get())
    }
}

impl Mul for Integer {
    type Output = Integer;
    fn mul(self, rhs: Integer) -> Integer {
        &self * &rhs
    }
}

impl MulAssign<&Integer> for Integer {
    fn mul_assign(&mut self, rhs: &Integer) {
        *self = &*self * rhs;
    }
}

impl Div for &Integer {
    type Output = Integer;
    fn div(self, rhs: &Integer) -> Integer {
        self.div_rem(rhs).0
    }
}

impl Rem for &Integer {
    type Output = Integer;
    fn rem(self, rhs: &Integer) -> Integer {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn sign_normalisation() {
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(int(5).sign(), Sign::Positive);
        assert_eq!(int(-5).sign(), Sign::Negative);
        assert_eq!(Integer::from(Natural::zero()).sign(), Sign::Zero);
    }

    #[test]
    fn representation_is_canonical_across_the_boundary() {
        // i64 range stays inline even when built through the big door.
        for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
            let via_parts = Integer::from_sign_magnitude(
                Integer::from(v).sign(),
                Natural::from(v.unsigned_abs()),
            );
            assert_eq!(via_parts, Integer::from(v));
            assert_eq!(via_parts.to_i64(), Some(v));
        }
        // One past the boundary in both directions promotes.
        assert_eq!(int(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(int(i64::MIN as i128 - 1).to_i64(), None);
        // Arithmetic that shrinks a value back demotes it.
        let back = &int(i64::MAX as i128 + 1) - &int(1);
        assert_eq!(back.to_i64(), Some(i64::MAX));
        // Negating across the i64::MIN boundary normalises both ways.
        assert_eq!(-&int(i64::MIN as i128), int(-(i64::MIN as i128)));
        assert_eq!(-&int(-(i64::MIN as i128)), int(i64::MIN as i128));
        assert_eq!((-&int(-(i64::MIN as i128))).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn addition_all_sign_combinations() {
        let cases = [
            (3, 4),
            (-3, -4),
            (3, -4),
            (-3, 4),
            (5, -5),
            (0, 7),
            (7, 0),
            (0, 0),
            (i64::MAX as i128, i64::MAX as i128),
            (i64::MIN as i128, i64::MIN as i128),
            (i64::MIN as i128, -1),
        ];
        for (a, b) in cases {
            assert_eq!(&int(a) + &int(b), int(a + b), "{a} + {b}");
            assert_eq!(&int(a) - &int(b), int(a - b), "{a} - {b}");
        }
    }

    #[test]
    fn multiplication_sign_rules() {
        let cases = [
            (3, 4),
            (-3, 4),
            (3, -4),
            (-3, -4),
            (0, -9),
            (-9, 0),
            (i64::MIN as i128, -1),
            (i64::MAX as i128, i64::MAX as i128),
        ];
        for (a, b) in cases {
            assert_eq!(&int(a) * &int(b), int(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn truncated_division_matches_rust_semantics() {
        let cases =
            [(7, 2), (-7, 2), (7, -2), (-7, -2), (6, 3), (-6, 3), (0, 5), (i64::MIN as i128, -1)];
        for (a, b) in cases {
            let (q, r) = int(a).div_rem(&int(b));
            assert_eq!(q, int(a / b), "{a} / {b}");
            assert_eq!(r, int(a % b), "{a} % {b}");
        }
    }

    #[test]
    fn pow_and_parity() {
        assert_eq!(int(-2).pow(3), int(-8));
        assert_eq!(int(-2).pow(4), int(16));
        assert_eq!(int(0).pow(0), int(1));
        assert_eq!(int(0).pow(3), int(0));
        assert_eq!(int(5).pow(0), int(1));
        // Powers that leave the machine range promote exactly.
        assert_eq!(int(-10).pow(40), "1".parse::<Integer>().unwrap() * int(10).pow(40));
        assert_eq!(int(2).pow(100).to_string(), (1u128 << 100).to_string());
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-2));
        assert!(int(-2) < int(0));
        assert!(int(0) < int(3));
        assert!(int(3) < int(10));
        assert!(int(-1) < int(1));
        // Mixed representations either side of the boundary.
        assert!(int(i64::MAX as i128) < int(i64::MAX as i128 + 1));
        assert!(int(i64::MIN as i128 - 1) < int(i64::MIN as i128));
        assert!(int(i64::MIN as i128 - 1) < int(i64::MAX as i128 + 1));
    }

    #[test]
    fn parse_and_display() {
        for s in ["0", "-1", "12345678901234567890123456789", "-98765432109876543210"] {
            let v: Integer = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+7".parse::<Integer>().unwrap(), int(7));
        assert_eq!("-0".parse::<Integer>().unwrap(), int(0));
        assert!("--3".parse::<Integer>().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(int(-42).to_i64(), Some(-42));
        assert_eq!(int(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(int(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(int(i64::MAX as i128 + 1).to_i128(), Some(i64::MAX as i128 + 1));
        assert_eq!(int(-5).to_natural(), None);
        assert_eq!(int(5).to_natural(), Some(Natural::from(5u64)));
        assert_eq!(int(-3).abs(), int(3));
        assert_eq!(int(i64::MIN as i128).abs(), int(-(i64::MIN as i128)));
        assert_eq!(int(7).gcd(&int(-21)), Natural::from(7u64));
    }

    #[test]
    fn gcd_across_representations() {
        assert_eq!(int(0).gcd(&int(0)), Natural::zero());
        assert_eq!(int(0).gcd(&int(-6)), Natural::from(6u64));
        assert_eq!(int(i64::MIN as i128).gcd(&int(2)), Natural::from(2u64));
        // One big, one small: the limb path must agree with the machine path.
        let big = int(3) * int(10).pow(30);
        assert_eq!(big.gcd(&int(6)), Natural::from(6u64));
        assert_eq!(big.gcd(&int(7)), Natural::from(1u64));
        assert_eq!(big.gcd(&(-&big)), big.magnitude());
    }

    #[test]
    fn exact_division() {
        assert_eq!(int(42).checked_exact_div(&int(7)), Some(int(6)));
        assert_eq!(int(-42).checked_exact_div(&int(7)), Some(int(-6)));
        assert_eq!(int(42).checked_exact_div(&int(-7)), Some(int(-6)));
        assert_eq!(int(43).checked_exact_div(&int(7)), None);
        assert_eq!(int(42).checked_exact_div(&int(0)), None);
        assert_eq!(int(0).checked_exact_div(&int(5)), Some(int(0)));
        // The one small-path overflow: i64::MIN / -1 must promote, not wrap.
        assert_eq!(
            int(i64::MIN as i128).checked_exact_div(&int(-1)),
            Some(int(-(i64::MIN as i128)))
        );
        // Big values divide exactly across the representation boundary.
        let big = int(i64::MAX as i128) * int(1_000_003);
        assert_eq!(big.checked_exact_div(&int(1_000_003)), Some(int(i64::MAX as i128)));
        assert_eq!((&big + &int(1)).checked_exact_div(&int(1_000_003)), None);
        assert_eq!(big.exact_div(&int(i64::MAX as i128)), int(1_000_003));
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn exact_div_panics_on_inexact() {
        let _ = int(10).exact_div(&int(3));
    }
}
