//! Random conjunctive-query workload generators.
//!
//! Two kinds of instances are produced for the benchmarks and property tests:
//!
//! * [`random_projection_free_cq`] / [`random_cq`] — unconstrained random
//!   queries over a small schema (the "adversarial" workload: containment
//!   rarely holds);
//! * [`specialization_pair`] — pairs `(σ(q2), q2)` where the containee is a
//!   grounding of the containing query by a substitution `σ` sending every
//!   existential variable to a head variable or constant. As observed in the
//!   paper's Section 2 example (`σ(q3) = q2` implies `q2 ⊑b q3`), such pairs
//!   are bag-contained **by construction**: the containee's multiplicity is
//!   one summand of the containing query's Equation-2 sum.
//!
//! All generators are deterministic given the caller-provided RNG, so every
//! benchmark and test is reproducible.

use rand::Rng;

use dioph_cq::{Atom, ConjunctiveQuery, Substitution, Term};

/// Configuration for the random query generators.
#[derive(Clone, Debug)]
pub struct QueryShape {
    /// Relation names and arities to draw atoms from.
    pub relations: Vec<(String, usize)>,
    /// Number of body atom *occurrences* (multiplicities included).
    pub atom_occurrences: usize,
    /// Number of head (free) variables.
    pub head_variables: usize,
    /// Number of additional existential variables (ignored by the
    /// projection-free generator).
    pub existential_variables: usize,
    /// Number of language constants available.
    pub constants: usize,
    /// Maximum multiplicity a single atom may be repeated with.
    pub max_multiplicity: u64,
}

impl Default for QueryShape {
    fn default() -> Self {
        QueryShape {
            relations: vec![("R".to_string(), 2), ("S".to_string(), 2), ("T".to_string(), 1)],
            atom_occurrences: 4,
            head_variables: 2,
            existential_variables: 2,
            constants: 1,
            max_multiplicity: 3,
        }
    }
}

impl QueryShape {
    /// A shape with `k` binary relations and otherwise default parameters.
    pub fn with_binary_relations(k: usize) -> Self {
        QueryShape {
            relations: (0..k).map(|i| (format!("R{i}"), 2)).collect(),
            ..QueryShape::default()
        }
    }
}

fn head_var(i: usize) -> Term {
    Term::var(format!("x{i}"))
}

fn exist_var(i: usize) -> Term {
    Term::var(format!("y{i}"))
}

fn constant(i: usize) -> Term {
    Term::constant(format!("c{i}"))
}

fn random_term(shape: &QueryShape, projection_free: bool, rng: &mut impl Rng) -> Term {
    let head = shape.head_variables;
    let exist = if projection_free { 0 } else { shape.existential_variables };
    let consts = shape.constants;
    let total = (head + exist + consts).max(1);
    let pick = rng.random_range(0..total);
    if pick < head {
        head_var(pick)
    } else if pick < head + exist {
        exist_var(pick - head)
    } else if pick < head + exist + consts {
        constant(pick - head - exist)
    } else {
        // Degenerate shape with no terms at all: fall back to a head variable.
        head_var(0)
    }
}

fn random_body(shape: &QueryShape, projection_free: bool, rng: &mut impl Rng) -> Vec<(Atom, u64)> {
    assert!(!shape.relations.is_empty(), "the schema needs at least one relation");
    let mut atoms = Vec::new();
    let mut occurrences = 0;
    while occurrences < shape.atom_occurrences {
        let (name, arity) = &shape.relations[rng.random_range(0..shape.relations.len())];
        let terms: Vec<Term> =
            (0..*arity).map(|_| random_term(shape, projection_free, rng)).collect();
        let remaining = (shape.atom_occurrences - occurrences) as u64;
        let mult = rng.random_range(1..=shape.max_multiplicity.min(remaining).max(1));
        atoms.push((Atom::new(name.clone(), terms), mult));
        occurrences += mult as usize;
    }
    atoms
}

/// Ensures every head variable occurs in the body (safety), by appending an
/// atom mentioning the missing ones if needed.
fn make_safe(shape: &QueryShape, head: &[Term], body: &mut Vec<(Atom, u64)>) {
    let body_vars: std::collections::BTreeSet<String> =
        body.iter().flat_map(|(a, _)| a.variables()).collect();
    let missing: Vec<Term> = head
        .iter()
        .filter(|t| t.as_var().map(|v| !body_vars.contains(v)).unwrap_or(false))
        .cloned()
        .collect();
    if missing.is_empty() {
        return;
    }
    let (name, arity) = &shape.relations[0];
    for chunk in missing.chunks((*arity).max(1)) {
        let mut terms: Vec<Term> = chunk.to_vec();
        while terms.len() < *arity {
            terms.push(chunk[0].clone());
        }
        body.push((Atom::new(name.clone(), terms), 1));
    }
}

/// Generates a random **projection-free** conjunctive query (every body
/// variable is a head variable), safe by construction.
pub fn random_projection_free_cq(
    name: &str,
    shape: &QueryShape,
    rng: &mut impl Rng,
) -> ConjunctiveQuery {
    let head: Vec<Term> = (0..shape.head_variables).map(head_var).collect();
    let mut body = random_body(shape, true, rng);
    make_safe(shape, &head, &mut body);
    ConjunctiveQuery::new(name, head, body)
}

/// Generates a random conjunctive query that may use existential variables.
pub fn random_cq(name: &str, shape: &QueryShape, rng: &mut impl Rng) -> ConjunctiveQuery {
    let head: Vec<Term> = (0..shape.head_variables).map(head_var).collect();
    let mut body = random_body(shape, false, rng);
    make_safe(shape, &head, &mut body);
    ConjunctiveQuery::new(name, head, body)
}

/// Generates a pair `(containee, containing)` that is bag-contained **by
/// construction**: the containing query is random (with existential
/// variables) and the containee is its image under a substitution sending
/// every existential variable to a random head variable or constant.
pub fn specialization_pair(
    shape: &QueryShape,
    rng: &mut impl Rng,
) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let containing = random_cq("q_containing", shape, rng);
    let head_vars: Vec<Term> = containing.head().to_vec();
    let mut targets: Vec<Term> = head_vars;
    for i in 0..shape.constants {
        targets.push(constant(i));
    }
    if targets.is_empty() {
        targets.push(constant(0));
    }
    let sigma = Substitution::from_pairs(
        containing
            .existential_variables()
            .into_iter()
            .map(|v| (v, targets[rng.random_range(0..targets.len())].clone())),
    );
    let containee = containing.apply_substitution(&sigma).with_name("q_containee");
    (containee, containing)
}

/// Generates a pair that is *usually not* bag-contained: a specialization
/// pair whose containee gets one extra copy of one of its atoms, inflating
/// the containee's multiplicity beyond what the containing query can match.
pub fn inflated_pair(
    shape: &QueryShape,
    rng: &mut impl Rng,
) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let (containee, containing) = specialization_pair(shape, rng);
    let atoms: Vec<(Atom, u64)> = containee.body().map(|(a, m)| (a.clone(), m)).collect();
    let bump = rng.random_range(0..atoms.len());
    let body =
        atoms.into_iter().enumerate().map(|(i, (a, m))| (a, if i == bump { m + 1 } else { m }));
    let inflated = ConjunctiveQuery::new("q_containee_inflated", containee.head().to_vec(), body);
    (inflated, containing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::is_bag_contained;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn projection_free_generator_respects_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let shape = QueryShape::default();
        for _ in 0..20 {
            let q = random_projection_free_cq("q", &shape, &mut rng);
            assert!(q.is_projection_free(), "{q}");
            assert!(q.is_safe(), "{q}");
            assert!(q.total_atom_count() >= shape.atom_occurrences as u64);
            assert_eq!(q.arity(), shape.head_variables);
        }
    }

    #[test]
    fn general_generator_is_safe_and_reproducible() {
        let shape = QueryShape::default();
        let a = random_cq("q", &shape, &mut StdRng::seed_from_u64(9));
        let b = random_cq("q", &shape, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        for seed in 0..20 {
            let q = random_cq("q", &shape, &mut StdRng::seed_from_u64(seed));
            assert!(q.is_safe(), "{q}");
        }
    }

    #[test]
    fn specialization_pairs_are_bag_contained() {
        let shape = QueryShape::default();
        for seed in 0..15 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (containee, containing) = specialization_pair(&shape, &mut rng);
            assert!(containee.is_projection_free(), "{containee}");
            let result = is_bag_contained(&containee, &containing)
                .expect("specialization containee is projection-free and safe");
            assert!(
                result.holds(),
                "seed {seed}: specialization pair must be contained\n containee: {containee}\n containing: {containing}"
            );
        }
    }

    #[test]
    fn inflated_pairs_often_break_containment_and_always_decide() {
        let shape = QueryShape::default();
        let mut broken = 0;
        for seed in 0..15 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (containee, containing) = inflated_pair(&shape, &mut rng);
            let result = is_bag_contained(&containee, &containing).expect("decidable");
            if let Some(ce) = result.counterexample() {
                assert!(ce.verify(&containee, &containing));
                broken += 1;
            }
        }
        assert!(broken > 0, "inflating multiplicities should break containment at least once");
    }

    #[test]
    fn shape_with_binary_relations() {
        let shape = QueryShape::with_binary_relations(5);
        assert_eq!(shape.relations.len(), 5);
        assert!(shape.relations.iter().all(|(_, a)| *a == 2));
        let mut rng = StdRng::seed_from_u64(3);
        let q = random_projection_free_cq("q", &shape, &mut rng);
        assert!(q.body_atoms().all(|a| a.relation().starts_with('R')));
    }
}
