//! A minimal JSON reader for the `verify` subcommand and the test suite.
//!
//! The workspace is dependency-free (no serde), and `verify` only needs to
//! read back the JSON the CLI itself emits: objects, arrays, strings,
//! numbers, booleans and null, with the escape sequences `json::string`
//! produces. Errors are values (not panics) so a malformed certificate file
//! turns into a diagnostic, not a crash. The module is public so integration
//! tests (and downstream tooling) can parse `--json` envelopes and
//! `--trace-out` files without a JSON dependency of their own.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (lossily, as `f64` — the CLI keeps big integers in
    /// strings precisely so this never matters).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON value; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("expected '{text}' at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        // The opening quote has been consumed.
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.bytes.get(self.pos).copied();
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "unsupported escape \\{}",
                                other.map_or("<eof>".to_string(), |b| (b as char).to_string())
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("non-empty tail");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                if !self.eat(b'}') {
                    loop {
                        self.skip_ws();
                        let Json::String(key) = self.value()? else {
                            return Err(format!("object key at byte {} is not a string", self.pos));
                        };
                        self.expect(b':')?;
                        map.insert(key, self.value()?);
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b'}')?;
                }
                Ok(Json::Object(map))
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        items.push(self.value()?);
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b']')?;
                }
                Ok(Json::Array(items))
            }
            Some(b'"') => {
                self.pos += 1;
                Ok(Json::String(self.string()?))
            }
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b) if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("digits and sign characters are ASCII");
                text.parse()
                    .map(Json::Number)
                    .map_err(|_| format!("bad number '{text}' at byte {start}"))
            }
            None => Err("unexpected end of JSON input".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cli_shapes() {
        let doc = Json::parse(
            "{\"id\":3,\"probe\":[\"'c1'\"],\"ok\":true,\"none\":null,\
             \"nested\":{\"multiplicity\":\"18446744073709551617\"}}",
        )
        .unwrap();
        assert_eq!(doc.get("id"), Some(&Json::Number(3.0)));
        assert_eq!(doc.get("probe").and_then(Json::as_array).unwrap().len(), 1);
        assert_eq!(
            doc.get("nested").and_then(|n| n.get("multiplicity")).and_then(Json::as_str),
            Some("18446744073709551617"),
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn errors_are_values() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{1:2}").is_err());
    }
}
