//! A sound-but-incomplete baseline: random-bag refutation.
//!
//! Before the paper's result, a natural (and still useful) way to attack a
//! suspected non-containment `q1 ⋢b q2` was to search for a violating bag by
//! sampling: pick bags over the canonical instance of `q1(t*)` with random
//! multiplicities and evaluate both sides with Equation 2. Any violation
//! found is a genuine counterexample (the method is *sound*), but failing to
//! find one proves nothing (it is *incomplete*) — which is exactly the gap
//! the paper's complete decision procedure closes. Experiment E8 measures
//! this gap quantitatively.

use rand::Rng;

use dioph_arith::Natural;
use dioph_bagdb::{bag_answer_multiplicity, BagInstance};
use dioph_containment::Counterexample;
use dioph_cq::{most_general_probe_tuple, Atom, ConjunctiveQuery, Term};

/// Configuration for the random-bag refuter.
#[derive(Clone, Copy, Debug)]
pub struct RefutationConfig {
    /// Number of random bags to try.
    pub attempts: usize,
    /// Multiplicities are sampled uniformly from `0..=max_multiplicity`.
    pub max_multiplicity: u64,
}

impl Default for RefutationConfig {
    fn default() -> Self {
        RefutationConfig { attempts: 200, max_multiplicity: 8 }
    }
}

/// Attempts to refute `containee ⊑b containing` by sampling random bags over
/// the canonical instance of the containee grounded with its most-general
/// probe tuple.
///
/// Returns a verified [`Counterexample`] if one of the sampled bags violates
/// containment, and `None` otherwise (which does **not** establish
/// containment).
///
/// # Panics
/// Panics if the containee is not projection-free (the probe-tuple machinery
/// is only defined for that fragment).
pub fn refute_by_random_bags(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    config: RefutationConfig,
    rng: &mut impl Rng,
) -> Option<Counterexample> {
    assert!(
        containee.is_projection_free(),
        "random-bag refutation requires a projection-free containee"
    );
    let probe: Vec<Term> = most_general_probe_tuple(containee);
    let grounded =
        containee.ground_with(&probe).expect("the most-general probe tuple unifies with the head");
    let atoms: Vec<Atom> = grounded.body_atoms().cloned().collect();
    if atoms.is_empty() {
        return None;
    }

    for _ in 0..config.attempts {
        let bag =
            BagInstance::from_multiplicities(atoms.iter().map(|a| {
                (a.clone(), Natural::from(rng.random_range(0..=config.max_multiplicity)))
            }));
        let lhs = bag_answer_multiplicity(containee, &bag, &probe);
        if lhs.is_zero() {
            continue;
        }
        let rhs = bag_answer_multiplicity(containing, &bag, &probe);
        if lhs > rhs {
            let ce = Counterexample {
                probe: probe.clone(),
                bag,
                containee_multiplicity: lhs,
                containing_multiplicity: rhs,
            };
            debug_assert!(ce.verify(containee, containing));
            return Some(ce);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::is_bag_contained;
    use dioph_cq::paper_examples;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn refutes_easy_non_containment() {
        // q2 ⋢b q1 from the paper's Section 2: a violating bag is found with
        // very small multiplicities, so random search succeeds quickly.
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let mut rng = StdRng::seed_from_u64(42);
        let ce = refute_by_random_bags(&q2, &q1, RefutationConfig::default(), &mut rng)
            .expect("an easy violation should be sampled");
        assert!(ce.verify(&q2, &q1));
    }

    #[test]
    fn never_refutes_true_containment() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let mut rng = StdRng::seed_from_u64(7);
        // q1 ⊑b q2 holds, so no bag can violate it.
        assert!(refute_by_random_bags(&q1, &q2, RefutationConfig::default(), &mut rng).is_none());
    }

    #[test]
    fn found_counterexamples_agree_with_the_complete_decider() {
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        // The complete decider says "not contained".
        assert!(!is_bag_contained(&q1, &q2).unwrap().holds());
        // Whatever the refuter finds (if anything) must verify; with enough
        // attempts and a generous multiplicity range it does find a witness
        // for this instance (the paper's own witness uses multiplicities ≤ 9).
        let mut rng = StdRng::seed_from_u64(2019);
        let config = RefutationConfig { attempts: 5_000, max_multiplicity: 12 };
        let ce = refute_by_random_bags(&q1, &q2, config, &mut rng);
        if let Some(ce) = &ce {
            assert!(ce.verify(&q1, &q2));
        }
    }

    #[test]
    #[should_panic(expected = "projection-free")]
    fn rejects_projected_containees() {
        let q3 = paper_examples::section2_query_q3();
        let q1 = paper_examples::section2_query_q1();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = refute_by_random_bags(&q3, &q1, RefutationConfig::default(), &mut rng);
    }
}
