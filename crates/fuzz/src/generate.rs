//! Seeded random case generation.
//!
//! Cases are deliberately *small* — the oracle's brute-force side enumerates
//! bag databases and Equation-2 assignment spaces, so a handful of atoms over
//! a two-relation schema is the sweet spot: cheap to sweep exhaustively, yet
//! already rich enough to exercise every probe/LP code path. The mix covers
//! the repo's workload families: specialisation pairs (contained by
//! construction), inflated pairs (usually not contained), the optimizer
//! join shapes (chains/stars/cliques with shared subqueries), and fully
//! adversarial random pairs where containment is rare.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dioph_cq::ConjunctiveQuery;
use dioph_workloads::joins::{chain_pair, clique_pair, star_pair};
use dioph_workloads::random::{
    inflated_pair, random_cq, random_projection_free_cq, specialization_pair, QueryShape,
};

/// One generated `(containee, containing)` pair with its family label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzCase {
    /// The generator family the case came from (`specialization`,
    /// `inflated`, `chain`, `star`, `clique` or `adversarial`).
    pub label: &'static str,
    /// The containee (left-hand side of `⊑b`), in the paper fragment.
    pub containee: ConjunctiveQuery,
    /// The containing query (right-hand side of `⊑b`).
    pub containing: ConjunctiveQuery,
}

/// The query shape every random family draws from: two binary relations,
/// three atom occurrences, two head and two existential variables, one
/// constant, multiplicities ≤ 2. Small enough that the canonical fact set
/// stays exhaustively sweepable.
fn fuzz_shape() -> QueryShape {
    QueryShape {
        relations: vec![("R".to_string(), 2), ("S".to_string(), 2)],
        atom_occurrences: 3,
        head_variables: 2,
        existential_variables: 2,
        constants: 1,
        max_multiplicity: 2,
    }
}

/// Generates the case for `(seed, index)`, deterministically. The returned
/// queries are renamed `q{index}a` / `q{index}b` in `diophantus gen` style.
pub fn generate_case(seed: u64, index: usize) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(crate::derive_seed(seed, index as u64));
    let shape = fuzz_shape();
    let (label, (containee, containing)) = match rng.random_range(0..6u32) {
        0 => ("specialization", specialization_pair(&shape, &mut rng)),
        1 => ("inflated", inflated_pair(&shape, &mut rng)),
        2 => ("chain", chain_pair(rng.random_range(2..=3), &mut rng)),
        3 => ("star", star_pair(rng.random_range(2..=3), &mut rng)),
        4 => ("clique", clique_pair(3, &mut rng)),
        _ => {
            let containee = random_projection_free_cq("q_containee", &shape, &mut rng);
            let containing = random_cq("q_containing", &shape, &mut rng);
            ("adversarial", (containee, containing))
        }
    };
    FuzzCase {
        label,
        containee: containee.with_name(format!("q{index}a")),
        containing: containing.with_name(format!("q{index}b")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_in_fragment() {
        let mut labels = std::collections::BTreeSet::new();
        for index in 0..40 {
            let a = generate_case(7, index);
            let b = generate_case(7, index);
            assert_eq!(a, b);
            assert!(a.containee.is_projection_free(), "{}", a.containee);
            assert!(a.containee.is_safe(), "{}", a.containee);
            assert!(a.containee.distinct_atom_count() > 0);
            assert_eq!(a.containee.name(), format!("q{index}a"));
            labels.insert(a.label);
        }
        // 40 draws hit every family with overwhelming probability.
        assert!(labels.len() >= 5, "families seen: {labels:?}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate_case(1, 0).containee, generate_case(2, 0).containee);
    }
}
