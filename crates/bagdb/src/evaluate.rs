//! Evaluation of conjunctive queries under set and bag semantics.
//!
//! Set semantics is the classical one: an answer is any tuple `c` for which a
//! homomorphism of the query body into the instance maps the head to `c`.
//!
//! Bag semantics follows Equation 2 of the paper exactly: the multiplicity of
//! an answer tuple `c` over a bag `µ` is
//!
//! ```text
//!     qᵘ(c)  =  Σ_{h ∈ Hom(q, I), h(x) = c}   Π_{α ∈ body(h(q))}  µ(α)^{µ_{h(q)}(α)}
//! ```
//!
//! — the sum over homomorphisms of the product, over the distinct atoms of
//! the *image query* `h(q)`, of the atom's bag multiplicity raised to the
//! atom's multiplicity in `h(q)` (which accounts for body atoms that collapse
//! under `h`, per Equation 1).

use std::collections::{BTreeMap, BTreeSet};

use dioph_arith::Natural;
use dioph_cq::{
    query_homomorphisms, ConjunctiveQuery, Substitution, Term, UnionOfConjunctiveQueries,
};

use crate::instance::{BagInstance, SetInstance};

/// The answers of a query under **set semantics**: the set of head images of
/// homomorphisms into the instance.
pub fn set_answers(query: &ConjunctiveQuery, instance: &SetInstance) -> BTreeSet<Vec<Term>> {
    query_homomorphisms(query, instance.facts())
        .into_iter()
        .map(|h| h.apply_tuple(query.head()))
        .collect()
}

/// `true` iff `tuple` is an answer of `query` on `instance` under set
/// semantics.
pub fn is_set_answer(query: &ConjunctiveQuery, instance: &SetInstance, tuple: &[Term]) -> bool {
    set_answers(query, instance).contains(tuple)
}

/// The answers of a query under **bag semantics** (Equation 2): a map from
/// answer tuples to their (positive) multiplicities.
///
/// Tuples that are not set-semantics answers have multiplicity zero and are
/// omitted from the map.
pub fn bag_answers(query: &ConjunctiveQuery, bag: &BagInstance) -> BTreeMap<Vec<Term>, Natural> {
    let support = bag.support();
    let mut out: BTreeMap<Vec<Term>, Natural> = BTreeMap::new();
    for h in query_homomorphisms(query, support.facts()) {
        let tuple = h.apply_tuple(query.head());
        let contribution = homomorphism_contribution(query, &h, bag);
        out.entry(tuple).and_modify(|m| *m += &contribution).or_insert(contribution);
    }
    // Homomorphisms can contribute zero only if the bag assigns zero to a
    // fact of its image, which cannot happen because the support is derived
    // from the bag itself; still, drop zeros defensively.
    out.retain(|_, m| !m.is_zero());
    out
}

/// The multiplicity of a single answer tuple under bag semantics.
pub fn bag_answer_multiplicity(
    query: &ConjunctiveQuery,
    bag: &BagInstance,
    tuple: &[Term],
) -> Natural {
    bag_answers(query, bag).remove(tuple).unwrap_or_else(Natural::zero)
}

/// The contribution of one homomorphism `h` to the multiplicity of its answer
/// tuple: `Π_{α ∈ body(h(q))} µ(α)^{µ_{h(q)}(α)}`.
fn homomorphism_contribution(
    query: &ConjunctiveQuery,
    h: &Substitution,
    bag: &BagInstance,
) -> Natural {
    // Build the image query h(q) with merged multiplicities (Equation 1).
    let image = query.apply_substitution(h);
    let mut product = Natural::one();
    for (atom, mult) in image.body() {
        let base = bag.multiplicity(atom);
        product = &product * &base.pow(mult);
        if product.is_zero() {
            break;
        }
    }
    product
}

/// Bag answers of a **union** of conjunctive queries: the sum of the
/// disjuncts' bag answers.
pub fn ucq_bag_answers(
    ucq: &UnionOfConjunctiveQueries,
    bag: &BagInstance,
) -> BTreeMap<Vec<Term>, Natural> {
    let mut out: BTreeMap<Vec<Term>, Natural> = BTreeMap::new();
    for disjunct in ucq.disjuncts() {
        for (tuple, mult) in bag_answers(disjunct, bag) {
            out.entry(tuple).and_modify(|m| *m += &mult).or_insert(mult);
        }
    }
    out
}

/// Set answers of a union of conjunctive queries: the union of the disjuncts'
/// answer sets.
pub fn ucq_set_answers(
    ucq: &UnionOfConjunctiveQueries,
    instance: &SetInstance,
) -> BTreeSet<Vec<Term>> {
    let mut out = BTreeSet::new();
    for disjunct in ucq.disjuncts() {
        out.extend(set_answers(disjunct, instance));
    }
    out
}

/// A witness that one particular bag instance violates a containment
/// `containee ⊑b containing`: an answer tuple whose multiplicity in the
/// containee's bag answer strictly exceeds its multiplicity in the containing
/// query's answer.
///
/// Returned by [`bag_containment_holds_on`] so disagreement reports (and the
/// fuzzing oracle's shrinker) can say *which* tuple broke the containment,
/// not merely that one did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BagViolation {
    /// The violating answer tuple.
    pub tuple: Vec<Term>,
    /// Multiplicity of `tuple` in the containee's answer over the bag.
    pub containee_multiplicity: Natural,
    /// Multiplicity of `tuple` in the containing query's answer over the bag.
    pub containing_multiplicity: Natural,
}

impl std::fmt::Display for BagViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tuple (")?;
        for (i, t) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(
            f,
            ") has containee multiplicity {} > containing multiplicity {}",
            self.containee_multiplicity, self.containing_multiplicity
        )
    }
}

/// Checks that the bag answer of `containee` is a sub-bag of the bag answer
/// of `containing` on this particular bag instance — i.e. the containment
/// `containee ⊑b containing` is not *violated* by `bag`. On violation the
/// first offending tuple (in tuple order, so the result is deterministic) is
/// returned with both multiplicities.
///
/// This is the per-instance check used to validate extracted counterexamples,
/// by the random-refutation baseline and by the differential fuzzing oracle;
/// the full containment decision (quantifying over all bags) lives in
/// `dioph-containment`.
///
/// # Errors
/// The violation witness, when `bag` violates the containment.
pub fn bag_containment_holds_on(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    bag: &BagInstance,
) -> Result<(), BagViolation> {
    let lhs = bag_answers(containee, bag);
    for (tuple, mult) in lhs {
        let rhs = bag_answer_multiplicity(containing, bag, &tuple);
        if mult > rhs {
            return Err(BagViolation {
                tuple,
                containee_multiplicity: mult,
                containing_multiplicity: rhs,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::paper_examples;
    use dioph_cq::Atom;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn paper_section2_bag_answers() {
        // The paper computes qµ = {c1c2^10, c1c5^30}.
        let q = paper_examples::section2_query_q3();
        let bag = BagInstance::from_u64_multiplicities(paper_examples::section2_bag());
        let answers = bag_answers(&q, &bag);
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[&vec![c("c1"), c("c2")]], nat(10));
        assert_eq!(answers[&vec![c("c1"), c("c5")]], nat(30));
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("c1"), c("c2")]), nat(10));
        // Non-answers have multiplicity zero.
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("c2"), c("c2")]), nat(0));
    }

    #[test]
    fn paper_section2_set_answers() {
        let q = paper_examples::section2_query_q3();
        let inst = SetInstance::from_facts(paper_examples::section2_instance());
        let answers = set_answers(&q, &inst);
        assert_eq!(answers.len(), 2);
        assert!(answers.contains(&vec![c("c1"), c("c2")]));
        assert!(answers.contains(&vec![c("c1"), c("c5")]));
        assert!(is_set_answer(&q, &inst, &[c("c1"), c("c5")]));
        assert!(!is_set_answer(&q, &inst, &[c("c1"), c("c4")]));
    }

    #[test]
    fn paper_section2_q1_q2_counterexample_bag() {
        // On Iµ = {R²(c1,c2), P(c2,c2)}: q1µ(c1,c2) = 4 and q2µ(c1,c2) = 8,
        // which shows q2 ⋢b q1 (and is consistent with q1 ⊑b q2).
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let bag =
            BagInstance::from_u64_multiplicities(paper_examples::section2_counterexample_bag());
        assert_eq!(bag_answer_multiplicity(&q1, &bag, &[c("c1"), c("c2")]), nat(4));
        assert_eq!(bag_answer_multiplicity(&q2, &bag, &[c("c1"), c("c2")]), nat(8));
        assert!(bag_containment_holds_on(&q1, &q2, &bag).is_ok());
        let violation = bag_containment_holds_on(&q2, &q1, &bag).unwrap_err();
        assert_eq!(violation.tuple, vec![c("c1"), c("c2")]);
        assert_eq!(violation.containee_multiplicity, nat(8));
        assert_eq!(violation.containing_multiplicity, nat(4));
        assert!(violation.to_string().contains("8 > containing multiplicity 4"));
    }

    #[test]
    fn uniform_bag_counts_homomorphisms() {
        // With all multiplicities 1, the bag answer of a tuple equals the
        // number of homomorphisms producing it.
        let q = paper_examples::section2_query_q3();
        let inst = SetInstance::from_facts(paper_examples::section2_instance());
        let ones = BagInstance::uniform_ones(&inst);
        let answers = bag_answers(&q, &ones);
        assert_eq!(answers[&vec![c("c1"), c("c2")]], nat(2));
        assert_eq!(answers[&vec![c("c1"), c("c5")]], nat(2));
    }

    #[test]
    fn boolean_query_multiplicity() {
        // b() <- R(a, b), R(a, b): multiplicity is µ(R(a,b))^2.
        let q = ConjunctiveQuery::new("b", vec![], [(Atom::new("R", vec![c("a"), c("b")]), 2u64)]);
        let bag = BagInstance::from_u64_multiplicities([(Atom::new("R", vec![c("a"), c("b")]), 5)]);
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[]), nat(25));
        // On a bag missing the fact entirely the query has no answers.
        let empty = BagInstance::new();
        assert!(bag_answers(&q, &empty).is_empty());
    }

    #[test]
    fn existential_variables_sum_over_matches() {
        // q(x) <- R(x, y): multiplicity of 'a' is the sum of µ(R(a, *)).
        let q = dioph_cq::parse_query("q(x) <- R(x, y)").unwrap();
        let bag = BagInstance::from_u64_multiplicities([
            (Atom::new("R", vec![c("a"), c("b")]), 3),
            (Atom::new("R", vec![c("a"), c("d")]), 4),
            (Atom::new("R", vec![c("e"), c("d")]), 9),
        ]);
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("a")]), nat(7));
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("e")]), nat(9));
    }

    #[test]
    fn repeated_atoms_square_the_multiplicity() {
        // q(x) <- R^2(x, y): each match contributes µ(R(x,y))^2.
        let q = dioph_cq::parse_query("q(x) <- R^2(x, y)").unwrap();
        let bag = BagInstance::from_u64_multiplicities([
            (Atom::new("R", vec![c("a"), c("b")]), 3),
            (Atom::new("R", vec![c("a"), c("d")]), 4),
        ]);
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("a")]), nat(9 + 16));
    }

    #[test]
    fn collapsing_homomorphism_merges_exponents() {
        // q(x) <- R(x, y1), R(x, y2): the homomorphism mapping y1 and y2 to
        // the same value makes the two atoms collapse, so its contribution is
        // µ^2 and not µ·µ per-atom (they coincide here, but the collapsed
        // image query must have a single atom of multiplicity 2 — Equation 1).
        let q = dioph_cq::parse_query("q(x) <- R(x, y1), R(x, y2)").unwrap();
        let bag = BagInstance::from_u64_multiplicities([
            (Atom::new("R", vec![c("a"), c("b")]), 2),
            (Atom::new("R", vec![c("a"), c("d")]), 3),
        ]);
        // Homomorphisms: (y1,y2) ∈ {b,d}²: contributions 4, 6, 6, 9 → 25.
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("a")]), nat(25));
    }

    #[test]
    fn ucq_answers_sum() {
        let ucq = dioph_cq::parse_ucq("q1(x) <- R(x, x); q2(x) <- S(x)").unwrap();
        let bag = BagInstance::from_u64_multiplicities([
            (Atom::new("R", vec![c("a"), c("a")]), 2),
            (Atom::new("S", vec![c("a")]), 5),
            (Atom::new("S", vec![c("b")]), 7),
        ]);
        let answers = ucq_bag_answers(&ucq, &bag);
        assert_eq!(answers[&vec![c("a")]], nat(7));
        assert_eq!(answers[&vec![c("b")]], nat(7));
        let inst = bag.support();
        let set = ucq_set_answers(&ucq, &inst);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn huge_multiplicities_stay_exact() {
        let q = dioph_cq::parse_query("q(x) <- R^3(x, y)").unwrap();
        let big = Natural::from(10u64).pow(20);
        let bag =
            BagInstance::from_multiplicities([(Atom::new("R", vec![c("a"), c("b")]), big.clone())]);
        assert_eq!(bag_answer_multiplicity(&q, &bag, &[c("a")]), big.pow(3));
    }
}
