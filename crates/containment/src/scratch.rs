//! The probe layer of the scratch-memory discipline.
//!
//! [`ProbeScratch`] is the unit the engine hands out: one per worker thread
//! (or one per pair on the sequential path), threaded through every
//! [`BagContainmentDecider::decide_probe_in`] call that worker makes. It
//! bundles the MPI/LP scratch of the layers below with the guess-and-check
//! enumeration buffers, so a warmed scratch decides each successive probe —
//! on either the LP route or the enumeration route — without fresh heap
//! allocations beyond the returned witness.
//!
//! Reuse is capacity-only: verdicts and witnesses through a warmed scratch
//! are bit-identical to the fresh-allocation route (pinned by the
//! differential tests in `tests/scratch_differential.rs`).
//!
//! Observability: every probe served by an already-warmed scratch bumps
//! `alloc.scratch.reuses` — on a healthy hot loop that counter tracks
//! `containment.probes.decided` minus one per worker.
//!
//! [`BagContainmentDecider::decide_probe_in`]: crate::BagContainmentDecider::decide_probe_in

use dioph_poly::MpiScratch;

/// Recycled buffers for deciding probes: the MPI/LP scratch of the layers
/// below plus the guess-and-check enumeration buffers.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// The MPI-system and LP-kernel scratch (the LP route).
    pub(crate) mpi: MpiScratch,
    /// Guess-and-check: one exponent-difference row per polynomial term,
    /// row storage recycled across probes.
    pub(crate) gc_rows: Vec<Vec<i128>>,
    /// Guess-and-check: the composition being enumerated.
    pub(crate) gc_current: Vec<u64>,
    /// Whether this scratch has decided a probe before (drives the
    /// `alloc.scratch.reuses` counter).
    pub(crate) warmed: bool,
}

impl ProbeScratch {
    /// A cold scratch; buffers warm up over the first probe and are recycled
    /// from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one probe served by this scratch: counts an
    /// `alloc.scratch.reuses` when the scratch is already warm.
    pub(crate) fn note_probe(&mut self) {
        if self.warmed {
            dioph_obs::registry::ALLOC_SCRATCH_REUSES.incr();
        } else {
            self.warmed = true;
        }
    }
}
