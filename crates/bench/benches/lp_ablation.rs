//! E7 — ablation of the feasibility engine behind Theorem 4.1/4.2:
//! exact phase-1 simplex vs Fourier–Motzkin elimination.
//!
//! Both engines decide the same strict homogeneous systems (and are
//! cross-checked to agree); the sweep over dimension and row count shows
//! Fourier–Motzkin's combinatorial blow-up against the simplex's steady
//! growth — the reason the simplex is the default engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::{bench_rng, random_mpi};
use dioph_linalg::{FeasibilityEngine, StrictHomogeneousSystem};
use rand::Rng;

fn random_system(dimension: usize, rows: usize, rng: &mut impl Rng) -> StrictHomogeneousSystem {
    let mut sys = StrictHomogeneousSystem::new(dimension);
    for _ in 0..rows {
        let row: Vec<i64> = (0..dimension).map(|_| rng.random_range(-4..=6)).collect();
        sys.push_row(row.into_iter().map(dioph_arith::Integer::from).collect());
    }
    sys
}

fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/dimension_sweep");
    for dimension in [2usize, 3, 4, 5, 6] {
        let mut rng = bench_rng();
        let systems: Vec<_> = (0..6).map(|_| random_system(dimension, 8, &mut rng)).collect();
        // Engines must agree on every instance.
        for sys in &systems {
            assert_eq!(
                sys.is_feasible(FeasibilityEngine::Simplex),
                sys.is_feasible(FeasibilityEngine::FourierMotzkin),
            );
        }
        for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), dimension),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_row_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/row_sweep");
    for rows in [4usize, 8, 16, 32] {
        let mut rng = bench_rng();
        let systems: Vec<_> = (0..6).map(|_| random_system(5, rows, &mut rng)).collect();
        for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), rows),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_mpi_derived_systems(c: &mut Criterion) {
    // Systems exactly as they arise from compiled MPIs (non-negative
    // exponents, row = e − e_i), rather than uniform random coefficients.
    let mut group = c.benchmark_group("E7/mpi_derived_systems");
    for unknowns in [3usize, 5, 7] {
        let mut rng = bench_rng();
        let systems: Vec<_> =
            (0..6).map(|_| random_mpi(unknowns, 12, 5, &mut rng).to_strict_system()).collect();
        for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), unknowns),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dimension_sweep, bench_row_sweep, bench_mpi_derived_systems
}
criterion_main!(benches);
