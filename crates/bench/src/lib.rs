//! # dioph-bench — shared workload builders for the benchmark harness
//!
//! Each Criterion bench target in `benches/` regenerates one experiment of
//! `EXPERIMENTS.md` (E1–E9). The instance families are defined here so that
//! the bench files stay small and the workloads are identical across
//! experiments that compare different components on the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dioph_cq::ConjunctiveQuery;
use dioph_poly::{Monomial, Mpi, Polynomial};
use dioph_workloads::random::specialization_pair;
use dioph_workloads::Graph;

// The E4 sweep shapes moved to `dioph_workloads::suite` so the `diophantus`
// CLI can generate them; re-exported here to keep the bench API stable.
pub use dioph_workloads::suite::{exponential_mapping_instance, path_self_containment};

/// The deterministic seed every benchmark uses.
pub const BENCH_SEED: u64 = 0x2019_0630;

/// A fresh deterministic RNG for benchmark workload generation.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(BENCH_SEED)
}

/// E3 / E7: a pseudo-random n-MPI with `terms` polynomial monomials and
/// exponents bounded by `max_exponent`. Roughly half of the generated
/// instances are solvable, so both code paths of the feasibility engines are
/// exercised.
pub fn random_mpi(unknowns: usize, terms: usize, max_exponent: u64, rng: &mut impl Rng) -> Mpi {
    let monomial =
        Monomial::new((0..unknowns).map(|_| rng.random_range(1..=max_exponent)).collect());
    let mut polynomial = Polynomial::zero(unknowns);
    for _ in 0..terms {
        let exponents: Vec<u64> =
            (0..unknowns).map(|_| rng.random_range(0..=max_exponent)).collect();
        polynomial.add_monomial(Monomial::new(exponents));
    }
    Mpi::new(polynomial, monomial)
}

/// E5: the random graphs used by the 3-colorability benchmark.
pub fn bench_graph(vertices: usize, edge_probability: f64) -> Graph {
    let mut rng = bench_rng();
    Graph::random(vertices, edge_probability, &mut rng)
}

/// E6 / E9: contained-by-construction instances of growing size, produced by
/// the specialisation generator over the shared
/// [`dioph_workloads::suite::contained_shape`] schema with `atoms` body
/// atoms (the same shape `diophantus gen contained` emits).
pub fn contained_instance(atoms: usize, seed: u64) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let mut rng = StdRng::seed_from_u64(seed);
    specialization_pair(&dioph_workloads::suite::contained_shape(atoms), &mut rng)
}

/// E8: the paper's Section 3 running example, whose violating bags are sparse
/// enough that random sampling needs many attempts — the workload for the
/// refutation-baseline comparison.
pub fn refutation_instance() -> (ConjunctiveQuery, ConjunctiveQuery) {
    (dioph_cq::paper_examples::section3_query_q1(), dioph_cq::paper_examples::section3_query_q2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::is_bag_contained;

    #[test]
    fn path_instances_are_valid_and_contained() {
        for length in [1, 3, 6] {
            let (containee, containing) = path_self_containment(length);
            assert!(containee.is_projection_free());
            assert_eq!(containee.total_atom_count(), length as u64);
            assert!(is_bag_contained(&containee, &containing).unwrap().holds());
        }
    }

    #[test]
    fn exponential_mapping_instances_have_expected_mapping_count() {
        use dioph_containment::CompiledProbe;
        use dioph_cq::most_general_probe_tuple;
        for k in [1, 3, 5] {
            let (containee, containing) = exponential_mapping_instance(k);
            let probe = most_general_probe_tuple(&containee);
            let compiled = CompiledProbe::compile(&containee, &containing, &probe).unwrap();
            assert_eq!(compiled.mapping_count(), 1 << k);
        }
    }

    #[test]
    fn random_mpis_are_well_formed_and_decidable() {
        let mut rng = bench_rng();
        for _ in 0..10 {
            let mpi = random_mpi(4, 6, 5, &mut rng);
            assert_eq!(mpi.dimension(), 4);
            // Both engines agree.
            let a = mpi.has_diophantine_solution(dioph_linalg::FeasibilityEngine::Simplex).unwrap();
            let b = mpi
                .has_diophantine_solution(dioph_linalg::FeasibilityEngine::FourierMotzkin)
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn contained_instances_are_contained() {
        for seed in 0..5 {
            let (containee, containing) = contained_instance(4, seed);
            assert!(is_bag_contained(&containee, &containing).unwrap().holds());
        }
    }

    #[test]
    fn bench_graphs_are_deterministic() {
        assert_eq!(bench_graph(8, 0.5), bench_graph(8, 0.5));
    }
}
