//! End-to-end tests of the `diophantus` binary, driven through
//! `std::process::Command` exactly as a user would drive it.
//!
//! The `--json` tests parse the CLI's output with a minimal JSON reader (the
//! workspace has no serde) and re-verify the reported counterexample bag with
//! the independent Equation-2 evaluator (`bag_answer_multiplicity`), closing
//! the loop: the binary's machine-readable verdicts are checked against the
//! library, not against the binary's own bookkeeping.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::process::{Command, Output, Stdio};

use diophantus::{bag_answer_multiplicity, parse_program, parse_query, BagInstance, Term};

const BIN: &str = env!("CARGO_BIN_EXE_diophantus");
const ACCEPTANCE: &str = "q(x) <- R^2(x, x). p(x) <- R(x, y), R(y, x).";

/// Runs the binary with the given arguments and stdin, returning the output.
fn run(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("the diophantus binary must spawn");
    child
        .stdin
        .take()
        .expect("stdin was piped")
        .write_all(stdin.as_bytes())
        .expect("writing to the child's stdin");
    child.wait_with_output().expect("the diophantus binary must exit")
}

fn stdout_of(args: &[&str], stdin: &str) -> String {
    let out = run(args, stdin);
    assert!(
        out.status.success(),
        "diophantus {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout must be UTF-8")
}

// ---------------------------------------------------------------------------
// A minimal JSON reader, sufficient for the CLI's output.
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn parse(text: &str) -> Json {
        let mut p = JsonParser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value in: {text}");
        value
    }

    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Object(map) => map.get(key).unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("expected an object with key {key}, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::String(s) => s,
            other => panic!("expected a string, got {other:?}"),
        }
    }

    fn as_array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            other => panic!("expected an array, got {other:?}"),
        }
    }

    fn as_f64(&self) -> f64 {
        match self {
            Json::Number(n) => *n,
            other => panic!("expected a number, got {other:?}"),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(self.bytes.get(self.pos), Some(&b), "expected '{}' at {}", b as char, self.pos);
        self.pos += 1;
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, text: &str) {
        assert!(
            self.bytes[self.pos..].starts_with(text.as_bytes()),
            "expected literal {text} at {}",
            self.pos
        );
        self.pos += text.len();
    }

    fn value(&mut self) -> Json {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                if !self.eat(b'}') {
                    loop {
                        self.skip_ws();
                        let key = match self.value() {
                            Json::String(s) => s,
                            other => panic!("object keys must be strings, got {other:?}"),
                        };
                        self.expect(b':');
                        map.insert(key, self.value());
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b'}');
                }
                Json::Object(map)
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        items.push(self.value());
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b']');
                }
                Json::Array(items)
            }
            Some(b'"') => {
                self.pos += 1;
                let mut out = String::new();
                loop {
                    match self.bytes[self.pos] {
                        b'"' => {
                            self.pos += 1;
                            break;
                        }
                        b'\\' => {
                            self.pos += 1;
                            match self.bytes[self.pos] {
                                b'"' => out.push('"'),
                                b'\\' => out.push('\\'),
                                b'/' => out.push('/'),
                                b'n' => out.push('\n'),
                                b't' => out.push('\t'),
                                b'r' => out.push('\r'),
                                b'u' => {
                                    let hex = std::str::from_utf8(
                                        &self.bytes[self.pos + 1..self.pos + 5],
                                    )
                                    .expect("4 hex digits");
                                    let code = u32::from_str_radix(hex, 16).expect("hex escape");
                                    out.push(char::from_u32(code).expect("valid scalar"));
                                    self.pos += 4;
                                }
                                other => panic!("unsupported escape \\{}", other as char),
                            }
                            self.pos += 1;
                        }
                        _ => {
                            // Consume one UTF-8 character.
                            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                                .expect("valid UTF-8 tail");
                            let ch = rest.chars().next().expect("non-empty tail");
                            out.push(ch);
                            self.pos += ch.len_utf8();
                        }
                    }
                }
                Json::String(out)
            }
            Some(b't') => {
                self.literal("true");
                Json::Bool(true)
            }
            Some(b'f') => {
                self.literal("false");
                Json::Bool(false)
            }
            Some(b'n') => {
                self.literal("null");
                Json::Null
            }
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b) if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
                Json::Number(text.parse().unwrap_or_else(|_| panic!("bad number '{text}'")))
            }
            None => panic!("unexpected end of JSON input"),
        }
    }
}

/// Reconstructs a [`Term`] from its datalog notation, by parsing a synthetic
/// single-term query head.
fn term_from_text(text: &str) -> Term {
    let q = parse_query(&format!("w({text}) <- true."))
        .unwrap_or_else(|e| panic!("term '{text}' must parse: {e}"));
    q.head()[0].clone()
}

/// Reconstructs an [`diophantus::cq::Atom`] from its datalog notation, by
/// parsing a synthetic Boolean query body.
fn atom_from_text(text: &str) -> diophantus::cq::Atom {
    let q = parse_query(&format!("w() <- {text}."))
        .unwrap_or_else(|e| panic!("atom '{text}' must parse: {e}"));
    let atom = q.body_atoms().next().expect("one atom").clone();
    atom
}

// ---------------------------------------------------------------------------
// decide
// ---------------------------------------------------------------------------

#[test]
fn acceptance_pair_prints_a_verdict() {
    let out = stdout_of(&["decide", "--bag"], ACCEPTANCE);
    assert!(out.contains("q ⊑b p: contained"), "{out}");
}

#[test]
fn counterexample_bags_are_independently_confirmed() {
    // A failing pair: dropping a conjunct is set- but not bag-containment.
    let input = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
    let out = stdout_of(&["decide", "--json"], input);
    let doc = Json::parse(&out);
    let pairs = doc.get("pairs").as_array();
    assert_eq!(pairs.len(), 1);
    let result = pairs[0].get("result");
    assert_eq!(result.get("verdict").as_str(), "not_contained");

    // Rebuild the witness from the machine-readable output alone.
    let ce = result.get("counterexample");
    let probe: Vec<Term> =
        ce.get("probe").as_array().iter().map(|t| term_from_text(t.as_str())).collect();
    let bag = BagInstance::from_u64_multiplicities(ce.get("bag").as_array().iter().map(|entry| {
        let atom = atom_from_text(entry.get("atom").as_str());
        let mult: u64 = entry.get("multiplicity").as_str().parse().expect("small multiplicity");
        (atom, mult)
    }));
    let containee = parse_query(pairs[0].get("containee").as_str()).unwrap();
    let containing = parse_query(pairs[0].get("containing").as_str()).unwrap();

    // The independent Equation-2 evaluator must agree with the reported
    // multiplicities, and they must genuinely violate containment.
    let lhs = bag_answer_multiplicity(&containee, &bag, &probe);
    let rhs = bag_answer_multiplicity(&containing, &bag, &probe);
    assert_eq!(lhs.to_string(), ce.get("containee_multiplicity").as_str());
    assert_eq!(rhs.to_string(), ce.get("containing_multiplicity").as_str());
    assert!(lhs > rhs, "the reported bag must violate containment ({lhs} vs {rhs})");
}

#[test]
fn json_output_parses_for_every_subcommand() {
    for (args, stdin) in [
        (vec!["decide", "--json"], ACCEPTANCE),
        (vec!["equiv", "--json"], "q(x) <- R(x, x). q(x) <- R(x, x)."),
        (vec!["gen", "--json", "--count", "2", "--seed", "9"], ""),
        (vec!["bench", "--json", "--repeat", "1"], ACCEPTANCE),
    ] {
        let out = stdout_of(&args, stdin);
        let doc = Json::parse(&out);
        assert!(
            matches!(doc.get("pairs"), Json::Array(items) if !items.is_empty()),
            "{args:?} must report at least one pair"
        );
    }
}

#[test]
fn malformed_input_yields_a_line_column_diagnostic_and_nonzero_exit() {
    let out = run(&["decide"], "q(x) <- R(x, x).\npp(x <- R(x, x).");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("<stdin>:2:6"), "diagnostic must name line 2, column 6: {stderr}");
    assert!(stderr.contains("expected"), "diagnostic must describe the problem: {stderr}");
}

#[test]
fn odd_count_input_files_are_rejected_per_source() {
    // An odd-count file would silently shift every later pair by one query,
    // so each source must pair up on its own, with the file named.
    let dir = std::env::temp_dir().join("dioph-cli-test-odd");
    std::fs::create_dir_all(&dir).unwrap();
    let odd = dir.join("odd.dl");
    let even = dir.join("even.dl");
    std::fs::write(&odd, "a(x) <- R(x, x). b(x) <- R(x, x). c(x) <- R(x, x).").unwrap();
    std::fs::write(&even, "d(x) <- R(x, x). e(x) <- R(x, x). f(x) <- R(x, x).").unwrap();
    let out = run(&["decide", odd.to_str().unwrap(), even.to_str().unwrap()], "");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("odd.dl") && stderr.contains("even number"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_2() {
    let out = run(&["frobnicate"], "");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

// ---------------------------------------------------------------------------
// gen
// ---------------------------------------------------------------------------

#[test]
fn gen_seed_42_is_byte_for_byte_reproducible() {
    let a = run(&["gen", "--seed", "42"], "");
    let b = run(&["gen", "--seed", "42"], "");
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout, "gen --seed 42 must be byte-for-byte reproducible");
    let c = run(&["gen", "--seed", "43"], "");
    assert_ne!(a.stdout, c.stdout, "a different seed must change the workload");
}

#[test]
fn closed_stdout_is_a_clean_exit_not_a_panic() {
    // `diophantus gen … | head` closes the binary's stdout early; that must
    // end the process with exit code 0, not a broken-pipe panic (exit 101).
    let mut child = Command::new(BIN)
        .args(["gen", "--count", "2000", "--seed", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("the diophantus binary must spawn");
    drop(child.stdout.take()); // close the read end before the output fits
    let out = child.wait_with_output().expect("the diophantus binary must exit");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn gen_output_round_trips_through_decide() {
    let workload = stdout_of(&["gen", "spec", "--count", "2", "--seed", "7"], "");
    let verdicts = stdout_of(&["decide"], &workload);
    let lines: Vec<&str> = verdicts.lines().collect();
    assert_eq!(lines.len(), 2, "{verdicts}");
    assert!(
        lines.iter().all(|l| l.contains("contained") && !l.contains("not contained")),
        "specialisation pairs are contained by construction: {verdicts}"
    );
}

// ---------------------------------------------------------------------------
// batch and verify
// ---------------------------------------------------------------------------

#[test]
fn gen_pipes_into_batch_with_json_lines_identical_across_job_counts() {
    // The CI smoke path: `diophantus gen … | diophantus batch --jobs 2 --json`.
    let workload = stdout_of(&["gen", "spec", "--count", "4", "--seed", "3"], "");
    let parallel = stdout_of(&["batch", "--jobs", "2", "--json"], &workload);
    assert_eq!(parallel.lines().count(), 4, "{parallel}");
    for (i, line) in parallel.lines().enumerate() {
        let doc = Json::parse(line);
        assert_eq!(doc.get("id"), &Json::Number((i + 1) as f64), "{line}");
        assert_eq!(
            doc.get("result").get("verdict").as_str(),
            "contained",
            "specialisation pairs are contained by construction: {line}"
        );
    }
    let sequential = stdout_of(&["batch", "--jobs", "1", "--json"], &workload);
    assert_eq!(parallel, sequential, "batch output must be byte-identical across job counts");
}

#[test]
fn skewed_batch_stream_is_identical_across_jobs_and_routes() {
    // One giant all-probes pair (256 probe tuples) leading a crowd of small
    // pairs, with a broken pair wedged in the middle: the unified scheduler
    // interleaves the giant's probe chunks with the small pairs, and
    // per-pair failures cancel only their own units — the emitted stream
    // (verdicts, error line, order) must stay byte-identical for every
    // worker count and LP route.
    let giant = stdout_of(&["gen", "path", "--count", "1", "--size", "3", "--seed", "11"], "");
    let small = stdout_of(&["gen", "expmap", "--count", "5", "--size", "4", "--seed", "11"], "");
    let input = format!("{giant}broken(x <- oops. pbroken(x) <- R(x, x).\n{small}");
    let reference =
        run(&["batch", "--keep-going", "--algorithm", "all-probes", "--jobs", "1"], &input);
    assert_eq!(reference.status.code(), Some(1), "the broken pair must surface in the exit code");
    let reference_stdout = String::from_utf8_lossy(&reference.stdout).into_owned();
    assert!(reference_stdout.contains("[2] parse error:"), "{reference_stdout}");
    assert_eq!(reference_stdout.lines().count(), 7, "{reference_stdout}");
    for jobs in ["2", "4"] {
        for route in ["simplex", "bareiss"] {
            let out = run(
                &[
                    "batch",
                    "--keep-going",
                    "--algorithm",
                    "all-probes",
                    "--jobs",
                    jobs,
                    "--lp-route",
                    route,
                ],
                &input,
            );
            assert_eq!(out.status.code(), Some(1), "--jobs {jobs} --lp-route {route}");
            assert_eq!(
                String::from_utf8_lossy(&out.stdout),
                reference_stdout,
                "skewed batch stream diverged at --jobs {jobs} --lp-route {route}"
            );
        }
    }
}

#[test]
fn batch_keep_going_reports_failures_without_stopping_the_stream() {
    let input = "q1(x) <- R(x, x). p1(x) <- R(x, x).\n\
                 broken(x <- oops. p2(x) <- R(x, x).\n\
                 q3(x) <- R(x, x). p3(x) <- R(x, x).\n";
    let out = run(&["batch", "--keep-going"], input);
    assert_eq!(out.status.code(), Some(1), "failures must surface in the exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[1] q1 ⊑b p1: contained"), "{stdout}");
    assert!(stdout.contains("[2] parse error:"), "{stdout}");
    assert!(stdout.contains("[3] q3 ⊑b p3: contained"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("1 of 3"), "stderr summarises");

    // Without --keep-going the same input stops at the broken pair.
    let out = run(&["batch"], input);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("[3]"), "the stream must stop: {stdout}");
}

#[test]
fn batch_reports_invalid_utf8_input_as_a_read_failure_not_clean_eof() {
    // A valid pair, a stray invalid-UTF-8 line, then another pair: the
    // stream must fail loudly (exit 1, a `read` diagnostic) instead of
    // printing one verdict and exiting 0 as if the input ended there.
    let dir = std::env::temp_dir().join("dioph-cli-test-bad-utf8");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.dl");
    let mut bytes = b"q1(x) <- R(x, x). p1(x) <- R(x, x).\n".to_vec();
    bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
    bytes.extend_from_slice(b"q2(x) <- R(x, x), S(x). p2(x) <- R(x, x).\n");
    std::fs::write(&path, bytes).unwrap();

    let out = run(&["batch", path.to_str().unwrap()], "");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("read error"), "{out:?}");

    let out = run(&["batch", "--keep-going", path.to_str().unwrap()], "");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[1] q1 ⊑b p1: contained"), "{stdout}");
    assert!(stdout.contains("read error"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_recheck_of_a_json_counterexample_file_round_trips() {
    let dir = std::env::temp_dir().join("dioph-cli-test-verify");
    std::fs::create_dir_all(&dir).unwrap();
    let certificate = dir.join("certificate.json");

    let failing = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
    let json = stdout_of(&["decide", "--json"], failing);
    std::fs::write(&certificate, &json).unwrap();
    let out = stdout_of(&["verify", certificate.to_str().unwrap()], "");
    assert!(out.contains("counterexample verified"), "{out}");
    assert!(out.contains("0 failure(s)"), "{out}");

    // A tampered certificate must be caught by the independent evaluator.
    let tampered =
        json.replace("\"containing_multiplicity\":\"1\"", "\"containing_multiplicity\":\"7\"");
    assert_ne!(json, tampered);
    std::fs::write(&certificate, &tampered).unwrap();
    let out = run(&["verify", certificate.to_str().unwrap()], "");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("VERIFICATION FAILED"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_rechecks_batch_json_lines_from_a_pipe() {
    let batch = stdout_of(
        &["batch", "--json", "--jobs", "2"],
        "q(x) <- R(x, x), S(x). p(x) <- R(x, x).\nq2(x) <- R(x, x). p2(x) <- R(x, x).\n",
    );
    let out = stdout_of(&["verify"], &batch);
    assert!(out.contains("[1] q ⋢b p: counterexample verified"), "{out}");
    assert!(out.contains("[2] q2 ⊑b p2: contained"), "{out}");
    assert!(out.contains("1 counterexample(s) verified"), "{out}");
}

// ---------------------------------------------------------------------------
// bench and equiv
// ---------------------------------------------------------------------------

#[test]
fn bench_times_a_workload_file() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/workloads/section3.dl");
    let out = stdout_of(&["bench", "--repeat", "2", path.to_str().unwrap()], "");
    assert!(out.contains("not contained"), "{out}");
    assert!(out.contains("min") && out.contains("mean") && out.contains("max"), "{out}");
    assert!(out.contains("total: 1 pair(s) × 2 run(s)"), "{out}");
}

#[test]
fn equiv_reports_the_broken_direction() {
    let input = "q1(x1, x2) <- P^3(x2, x2), R^2(x1, x2).\n\
                 q2(x1, x2) <- P^3(x2, x2), R^3(x1, x2).";
    let out = stdout_of(&["equiv"], input);
    assert!(out.contains("NOT equivalent"), "{out}");
    assert!(out.contains("forward  (q1 ⊑b q2): contained"), "{out}");
    assert!(out.contains("backward (q2 ⊑b q1): not contained"), "{out}");
}

// ---------------------------------------------------------------------------
// The .dl fixture files under examples/workloads/
// ---------------------------------------------------------------------------

#[test]
fn workload_files_reproduce_the_paper_fixtures() {
    use diophantus::cq::paper_examples as pe;
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/workloads");

    let section2 = parse_program(&std::fs::read_to_string(dir.join("section2.dl")).unwrap())
        .expect("section2.dl must parse");
    assert_eq!(
        section2,
        vec![
            pe::section2_query_q1(),
            pe::section2_query_q2(),
            pe::section2_query_q2(),
            pe::section2_query_q1(),
            pe::section2_query_q1(),
            pe::section2_query_q3(),
            pe::section2_query_q2(),
            pe::section2_query_q3(),
        ]
    );

    let section3 = parse_program(&std::fs::read_to_string(dir.join("section3.dl")).unwrap())
        .expect("section3.dl must parse");
    assert_eq!(section3, vec![pe::section3_query_q1(), pe::section3_query_q2()]);

    let probe = parse_program(&std::fs::read_to_string(dir.join("probe_example.dl")).unwrap())
        .expect("probe_example.dl must parse");
    assert_eq!(probe, vec![pe::section3_probe_example(), pe::section3_probe_example()]);
}

/// Runs the binary with `DIOPH_LP_BUDGET` set (the linalg testing override
/// that shrinks the simplex iteration budget), returning the full output.
fn run_with_lp_budget(args: &[&str], stdin: &str, budget: &str) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .env("DIOPH_LP_BUDGET", budget)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("the diophantus binary must spawn");
    child
        .stdin
        .take()
        .expect("stdin was piped")
        .write_all(stdin.as_bytes())
        .expect("writing to the child's stdin");
    child.wait_with_output().expect("the diophantus binary must exit")
}

#[test]
fn lp_iteration_budget_blowout_is_a_per_pair_error_not_a_poisoned_pool() {
    // Regression for the simplex budget assert: a blown budget used to
    // panic the worker thread holding the pair and take the whole engine
    // pool down with it. Under a 1-iteration budget every LP-reaching pair
    // must now fail with a structured decide error, and --keep-going must
    // stream past every one of them.
    // Both pairs are not-contained: their MPI systems are feasible, so the
    // simplex must genuinely pivot (at least one pivot plus the optimality
    // pass), which a 1-iteration budget cannot cover.
    let input = "q1(x) <- R(x, x), S1(x). p1(x) <- R(x, x).\n\
                 q2(x) <- R(x, x), S2(x). p2(x) <- R(x, x).\n";
    let out = run_with_lp_budget(&["batch", "--keep-going", "--jobs", "2", "--json"], input, "1");
    assert_eq!(out.status.code(), Some(1), "failures must still exit non-zero");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "both pairs must be answered: {stdout}");
    for line in &lines {
        assert!(line.contains("\"error\":{\"stage\":\"decide\""), "{line}");
        assert!(line.contains("iteration budget"), "{line}");
    }

    // decide (no --keep-going) surfaces the same failure as a diagnostic.
    let out = run_with_lp_budget(&["decide"], "q(x) <- R(x, x), S(x). p(x) <- R(x, x).", "1");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("iteration budget"), "{stderr}");

    // Sanity: the same stream under the default budget succeeds, on both
    // LP routes.
    for route in ["simplex", "bareiss"] {
        let out = stdout_of(&["batch", "--lp-route", route], input);
        assert_eq!(out.lines().count(), 2, "{route}: {out}");
        assert!(!out.contains("error"), "{route}: {out}");
    }
}

#[test]
fn workload_files_decide_with_the_paper_verdicts() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/workloads");
    let out = stdout_of(&["decide", dir.join("section2.dl").to_str().unwrap()], "");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "{out}");
    assert!(lines[0].contains("q1 ⊑b q2: contained"), "{out}");
    assert!(lines[1].contains("q2 ⊑b q1: not contained"), "{out}");
    assert!(lines[2].contains("q1 ⊑b q3: contained"), "{out}");
    assert!(lines[3].contains("q2 ⊑b q3: contained"), "{out}");

    let out = stdout_of(&["decide", dir.join("section3.dl").to_str().unwrap()], "");
    assert!(out.contains("q1 ⊑b q2: not contained"), "{out}");

    let probe = dir.join("probe_example.dl");
    let out = stdout_of(&["decide", "--algorithm", "all-probes", probe.to_str().unwrap()], "");
    assert!(out.contains("contained (checked 16 probe tuple(s))"), "{out}");
}

// ---------------------------------------------------------------------------
// check: the static analysis subcommand
// ---------------------------------------------------------------------------

#[test]
fn check_clean_input_exits_zero_with_fragment_labels() {
    let out = run(&["check"], ACCEPTANCE);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("pair 1 (q ⊑b p): paper-decidable"), "{text}");

    // The committed example workloads are lint-clean at --deny warnings.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/workloads");
    for file in ["section2.dl", "section3.dl", "probe_example.dl"] {
        let path = dir.join(file);
        let out = run(&["check", "--deny", "warnings", path.to_str().unwrap()], "");
        assert_eq!(out.status.code(), Some(0), "{file} must lint clean");
    }
}

#[test]
fn check_warnings_exit_one_and_deny_promotes_to_two() {
    let dup = "q(x) <- R(x, x), R(x, x).\np(x) <- R(x, x).";
    let out = run(&["check"], dup);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("<stdin>:1:18: warning[D013] duplicate-atom"), "{text}");

    let out = run(&["check", "--deny", "warnings"], dup);
    assert_eq!(out.status.code(), Some(2), "--deny warnings promotes the exit code");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[D013]"), "{text}");

    let out = run(&["check", "--allow", "D013"], dup);
    assert_eq!(out.status.code(), Some(0), "--allow silences the lint");
}

#[test]
fn check_json_matches_the_golden_fixture_byte_for_byte() {
    // The fixture input is piped through stdin so the reported file name
    // (`<stdin>`) — and therefore every byte of the output — is independent
    // of where the checkout lives.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let input = std::fs::read_to_string(root.join("tests/golden/check.dl")).unwrap();
    let expected = std::fs::read_to_string(root.join("tests/golden/check.json")).unwrap();
    let out = run(&["check", "--json"], &input);
    assert_eq!(out.status.code(), Some(2), "the fixture holds two error-level lints");
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected, "check --json output drifted");
}

#[test]
fn check_json_reports_every_generated_suite_clean() {
    // `gen | check --deny warnings --json` is the CI smoke: every generator
    // must emit lint-clean programs (cost notes are allowed — they do not
    // affect the exit code).
    for kind in ["spec", "inflated", "contained", "path", "expmap", "threecol"] {
        let workload = stdout_of(&["gen", kind, "--count", "3", "--seed", "2019"], "");
        let out = run(&["check", "--deny", "warnings", "--json"], &workload);
        assert_eq!(out.status.code(), Some(0), "gen {kind} must lint clean");
        let doc = Json::parse(&String::from_utf8(out.stdout).unwrap());
        let summary = doc.get("summary");
        assert_eq!(summary.get("errors").as_f64(), 0.0, "{kind}");
        assert_eq!(summary.get("warnings").as_f64(), 0.0, "{kind}");
        // Every generated pair is inside the paper fragment.
        for file in doc.get("files").as_array() {
            for pair in file.get("pairs").as_array() {
                assert_eq!(pair.get("fragment").as_str(), "paper-decidable", "{kind}");
            }
        }
    }
}

#[test]
fn decide_on_bad_file_input_names_file_line_and_column() {
    let dir = std::env::temp_dir().join(format!("dioph-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("projection.dl");
    std::fs::write(&path, "q(x) <- R(x, y).\np(x) <- R(x, x).\n").unwrap();
    let out = run(&["decide", path.to_str().unwrap()], "");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains(&format!("{}:1:14: error[D002]", path.display())),
        "decide must name the file, line and column of the offending variable: {stderr}"
    );
    assert!(stderr.contains("projection-free"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}
