//! # dioph-analyze — static analysis for query programs
//!
//! A span-carrying lint pass over the programs the `diophantus` CLI and
//! the batch engine consume, run **before** anything is compiled:
//!
//! * a [lint registry](LINTS) with stable codes (`D001 unsafe-query`,
//!   `D013 duplicate-atom`, …), default severities and rustc-style
//!   `--deny/--allow/-W` configuration ([`LintConfig`]);
//! * [fragment classification](classify_pair) of every
//!   `(containee, containing)` pair into the decidability matrix of the
//!   source paper and its related work;
//! * a [static cost pass](estimate_cost) bounding the probe space and the
//!   strict-homogeneous-system dimensions without compiling the pair.
//!
//! Diagnostics carry byte [`Span`](dioph_cq::Span)s resolved to 1-based
//! line/column positions in the original source, via the span side-table
//! that [`dioph_cq::parse_program_spanned`] threads out of the parser.
//!
//! ```
//! use dioph_analyze::{analyze_source, LintConfig, Severity};
//!
//! let source = "q(x) <- R(x, y).\np(x) <- R(x, x).";
//! let analysis = analyze_source(source, &LintConfig::new());
//! let d = &analysis.pairs[0].diagnostics[0];
//! assert_eq!((d.code, d.severity), ("D002", Severity::Error));
//! assert_eq!(d.render("demo.dl"),
//!     "demo.dl:1:14: error[D002] containee-not-projection-free: \
//!      the containee must be projection-free; existential variables: y");
//! ```
//!
//! ---
//!
#![doc = include_str!("../../../docs/diagnostics.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod classify;
mod cost;
mod registry;

pub use analysis::{
    analyze_pairs, analyze_source, containee_fragment_diagnostics, first_fragment_error,
    Diagnostic, PairAnalysis, ProgramAnalysis, LP_DIMENSION_NOTE_THRESHOLD,
    PROBE_SPACE_NOTE_THRESHOLD,
};
pub use classify::{classify_pair, FragmentClass};
pub use cost::{estimate_cost, CostEstimate};
pub use registry::{lint, Lint, LintConfig, Severity, LINTS};
