//! Fuzzing run drivers and the byte-stable report.
//!
//! The JSON envelope deliberately records only seed-determined data — no
//! timings, no thread counts, and the engine *family* rather than the LP
//! route — so `fuzz --json` output is byte-identical across `--jobs` and
//! `--lp-route` values. That invariance is pinned by a golden fixture and is
//! itself one of the correctness claims under test.

use dioph_analyze::FragmentClass;
use dioph_containment::{json, BagContainment, ContainmentError};
use dioph_cq::ConjunctiveQuery;

use crate::generate::generate_case;
use crate::oracle::{check_pair, derive_seed, Disagreement};
use crate::FuzzConfig;

/// The oracle's observations on one case, ready for reporting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseReport {
    /// 0-based case index.
    pub index: usize,
    /// Generator family, or `file:pairN` for replayed corpus pairs.
    pub label: String,
    /// The containee as decided.
    pub containee: ConjunctiveQuery,
    /// The containing query as decided.
    pub containing: ConjunctiveQuery,
    /// Decidability-matrix cell of the pair.
    pub fragment: FragmentClass,
    /// Chandra–Merlin set-containment verdict.
    pub set: bool,
    /// Bag-set verdict (`None` when the containee is out of fragment).
    pub bag_set: Option<bool>,
    /// Bag databases checked by the brute-force side.
    pub databases: usize,
    /// The decider's verdict or per-pair error.
    pub result: Result<BagContainment, ContainmentError>,
}

/// A full fuzzing run: per-case verdicts, shrunk disagreements, summary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzReport {
    /// The master seed of the run.
    pub seed: u64,
    /// Active-domain bound used for schema databases.
    pub max_adom: usize,
    /// Multiplicity bound used for every swept bag.
    pub max_mult: u64,
    /// Sampling budget used when enumeration was too large.
    pub samples: usize,
    /// Per-case observations, in case order.
    pub cases: Vec<CaseReport>,
    /// Shrunk disagreements, paired with the index of the offending case.
    pub disagreements: Vec<(usize, Disagreement)>,
}

impl FuzzReport {
    /// Number of `contained` verdicts.
    pub fn contained(&self) -> usize {
        self.cases.iter().filter(|c| matches!(&c.result, Ok(r) if r.holds())).count()
    }

    /// Number of `not_contained` verdicts.
    pub fn not_contained(&self) -> usize {
        self.cases.iter().filter(|c| matches!(&c.result, Ok(r) if !r.holds())).count()
    }

    /// Number of cases that failed to decide (fragment or budget errors).
    pub fn errors(&self) -> usize {
        self.cases.iter().filter(|c| c.result.is_err()).count()
    }

    /// Total bag databases checked across all cases.
    pub fn databases(&self) -> usize {
        self.cases.iter().map(|c| c.databases).sum()
    }

    /// The one-line human summary (mirrored by the `--json` `summary`).
    pub fn summary_line(&self) -> String {
        format!(
            "fuzz seed {}: {} case(s), {} contained, {} not contained, {} error(s), \
             {} database(s) checked, {} disagreement(s)",
            self.seed,
            self.cases.len(),
            self.contained(),
            self.not_contained(),
            self.errors(),
            self.databases(),
            self.disagreements.len()
        )
    }

    /// Multi-line human rendering of every disagreement (empty when clean).
    pub fn disagreement_lines(&self) -> String {
        let mut out = String::new();
        for (index, d) in &self.disagreements {
            let label = &self.cases[*index].label;
            out.push_str(&format!("[case {index} {label}] {}: {}\n", d.kind.label(), d.detail));
            out.push_str(&format!("  containee:  {}\n", d.containee));
            out.push_str(&format!("  containing: {}\n", d.containing));
            out.push_str(&format!("  minimized containee:  {}\n", d.minimized_containee));
            out.push_str(&format!("  minimized containing: {}\n", d.minimized_containing));
            if let Some(ce) = &d.counterexample {
                out.push_str(&format!("  witness: {ce}\n"));
            }
        }
        out
    }

    /// Renders the byte-stable JSON envelope. `pairs` entries reuse the
    /// `decide --json` certificate shape, so `diophantus verify` re-checks
    /// them with the independent Equation-2 evaluator.
    pub fn to_json(&self) -> String {
        let pairs: Vec<String> = self
            .cases
            .iter()
            .map(|c| {
                let outcome = match &c.result {
                    Ok(result) => format!("\"result\":{}", result.to_json()),
                    Err(e) => format!(
                        "\"error\":{{\"message\":{},\"code\":{}}}",
                        json::string(&e.to_string()),
                        match e.lint_code() {
                            Some(code) => format!("\"{code}\""),
                            None => "null".to_string(),
                        }
                    ),
                };
                format!(
                    "{{\"index\":{},\"label\":{},\"containee\":{},\"containing\":{},\
                     \"fragment\":\"{}\",\"set\":\"{}\",\"bag_set\":{},\"databases\":{},{}}}",
                    c.index,
                    json::string(&c.label),
                    json::string(&c.containee.to_string()),
                    json::string(&c.containing.to_string()),
                    c.fragment.label(),
                    verdict_word(c.set),
                    match c.bag_set {
                        Some(b) => format!("\"{}\"", verdict_word(b)),
                        None => "null".to_string(),
                    },
                    c.databases,
                    outcome
                )
            })
            .collect();
        let disagreements: Vec<String> = self
            .disagreements
            .iter()
            .map(|(index, d)| {
                let counterexample = match &d.counterexample {
                    Some(ce) => format!(",\"counterexample\":{}", ce.to_json()),
                    None => String::new(),
                };
                format!(
                    "{{\"index\":{index},\"kind\":\"{}\",\"detail\":{},\"containee\":{},\
                     \"containing\":{},\"minimized\":{{\"containee\":{},\"containing\":{}\
                     {counterexample}}}}}",
                    d.kind.label(),
                    json::string(&d.detail),
                    json::string(&d.containee.to_string()),
                    json::string(&d.containing.to_string()),
                    json::string(&d.minimized_containee.to_string()),
                    json::string(&d.minimized_containing.to_string()),
                )
            })
            .collect();
        format!(
            "{{\"command\":\"fuzz\",\"seed\":{},\"cases\":{},\"max_adom\":{},\"max_mult\":{},\
             \"samples\":{},\"algorithm\":\"all-probes\",\"engine\":\"simplex\",\"pairs\":[{}],\
             \"disagreements\":[{}],\"summary\":{{\"cases\":{},\"contained\":{},\
             \"not_contained\":{},\"errors\":{},\"databases\":{},\"disagreements\":{}}}}}\n",
            self.seed,
            self.cases.len(),
            self.max_adom,
            self.max_mult,
            self.samples,
            pairs.join(","),
            disagreements.join(","),
            self.cases.len(),
            self.contained(),
            self.not_contained(),
            self.errors(),
            self.databases(),
            self.disagreements.len()
        )
    }
}

fn verdict_word(holds: bool) -> &'static str {
    if holds {
        "contained"
    } else {
        "not_contained"
    }
}

fn run_cases(
    config: &FuzzConfig,
    cases: impl IntoIterator<Item = (String, ConjunctiveQuery, ConjunctiveQuery)>,
) -> FuzzReport {
    let mut reports = Vec::new();
    let mut disagreements = Vec::new();
    for (index, (label, containee, containing)) in cases.into_iter().enumerate() {
        // The database-sampling stream is derived from the seed and case
        // index only, never from the engine configuration — a prerequisite
        // for reports being identical across `--jobs` and `--lp-route`.
        let db_seed = derive_seed(derive_seed(config.seed, index as u64), u64::MAX);
        let outcome = check_pair(&containee, &containing, config, db_seed);
        if let Some(d) = outcome.disagreement {
            disagreements.push((index, d));
        }
        reports.push(CaseReport {
            index,
            label,
            containee,
            containing,
            fragment: outcome.fragment,
            set: outcome.set,
            bag_set: outcome.bag_set,
            databases: outcome.databases,
            result: outcome.result,
        });
    }
    FuzzReport {
        seed: config.seed,
        max_adom: config.max_adom,
        max_mult: config.max_mult,
        samples: config.samples,
        cases: reports,
        disagreements,
    }
}

/// Runs a full generated fuzzing campaign: `config.cases` seeded random
/// pairs, each decided through the probe pool and cross-checked against the
/// bounded brute-force ground truth.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_cases(
        config,
        (0..config.cases).map(|index| {
            let case = generate_case(config.seed, index);
            (case.label.to_string(), case.containee, case.containing)
        }),
    )
}

/// Replays an explicit list of labelled pairs (the regression corpus)
/// through the same oracle as [`run_fuzz`].
pub fn run_replay(
    config: &FuzzConfig,
    pairs: Vec<(String, ConjunctiveQuery, ConjunctiveQuery)>,
) -> FuzzReport {
    run_cases(config, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Injection;
    use dioph_cq::parse_query;

    fn small() -> FuzzConfig {
        FuzzConfig { cases: 12, samples: 8, ..FuzzConfig::default() }
    }

    #[test]
    fn generated_runs_are_clean_and_reproducible() {
        let a = run_fuzz(&small());
        let b = run_fuzz(&small());
        assert_eq!(a, b);
        assert_eq!(a.cases.len(), 12);
        assert!(a.disagreements.is_empty(), "{}", a.disagreement_lines());
        assert_eq!(a.errors(), 0);
        assert_eq!(a.contained() + a.not_contained(), 12);
        assert!(a.databases() > 0);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.summary_line().contains("12 case(s)"));
    }

    #[test]
    fn reports_are_byte_identical_across_jobs_and_routes() {
        use dioph_containment::FeasibilityEngine;
        let reference = run_fuzz(&small()).to_json();
        for jobs in [2usize, 4] {
            for engine in [FeasibilityEngine::Bareiss, FeasibilityEngine::Auto] {
                let cfg = FuzzConfig { jobs, engine, ..small() };
                assert_eq!(run_fuzz(&cfg).to_json(), reference, "jobs={jobs} engine={engine:?}");
            }
        }
    }

    #[test]
    fn injected_bugs_surface_in_the_report() {
        let cfg = FuzzConfig { injection: Some(Injection::TamperCertificate), ..small() };
        let report = run_fuzz(&cfg);
        assert!(
            !report.disagreements.is_empty(),
            "12 mixed cases must include a not-contained verdict to tamper with"
        );
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"certificate-rejected\""));
        assert!(report.disagreement_lines().contains("certificate-rejected"));
    }

    #[test]
    fn replay_runs_labelled_pairs_and_reports_fragment_errors() {
        let pairs = vec![
            (
                "corpus:pair1".to_string(),
                parse_query("q(x) <- R^2(x, x)").unwrap(),
                parse_query("p(x) <- R(x, x)").unwrap(),
            ),
            (
                "corpus:pair2".to_string(),
                parse_query("q(x) <- R(x, y)").unwrap(),
                parse_query("p(x) <- R(x, x)").unwrap(),
            ),
        ];
        let report = run_replay(&small(), pairs);
        assert_eq!(report.cases.len(), 2);
        assert_eq!(report.cases[0].label, "corpus:pair1");
        assert!(report.cases[0].result.is_ok());
        assert_eq!(report.errors(), 1);
        assert!(report.to_json().contains("\"code\":\"D002\""));
    }
}
