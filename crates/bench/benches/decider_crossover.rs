//! E6 — the naive enumeration route vs the linear-programming route.
//!
//! Section 5 of the paper notes that writing the whole linear system down
//! (or enumerating candidate solutions, as the Π₂ᵖ guess-and-check procedure
//! does deterministically) costs exponential space/time, which is exactly why
//! the paper's decision procedure goes through LP feasibility instead. The
//! bench runs the same instances through
//! * the LP-based decider (Theorem 5.3 + Theorem 4.2),
//! * the bounded enumeration of Lemma 5.1 (deterministic guess & check),
//! * the all-probes variant of Corollary 3.1,
//!
//! and shows where the enumeration blows up while the LP route stays flat.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::contained_instance;
use dioph_containment::{Algorithm, BagContainmentDecider};
use dioph_cq::paper_examples;

/// Budget given to the enumeration baseline; exceeding it counts as "gave up"
/// but still costs the time spent enumerating.
const GUESS_CHECK_BUDGET: u64 = 200_000;

fn bench_contained_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6/contained_instances");
    // Contained instances are the worst case for enumeration: the whole
    // candidate space up to the Lemma 5.1 bound must be exhausted.
    for atoms in [1usize, 2, 3] {
        let instance = contained_instance(atoms, 7 + atoms as u64);
        let algorithms = [
            ("lp_most_general", Algorithm::MostGeneralProbe),
            ("lp_all_probes", Algorithm::AllProbes),
            ("guess_check", Algorithm::GuessCheck { budget: GUESS_CHECK_BUDGET }),
        ];
        for (label, algorithm) in algorithms {
            let decider = BagContainmentDecider::new(algorithm);
            group.bench_with_input(
                BenchmarkId::new(label, atoms),
                &instance,
                |b, (containee, containing)| {
                    b.iter(|| {
                        // The guess-and-check baseline may exceed its budget;
                        // the time spent is what the experiment measures.
                        let _ = black_box(decider.decide(containee, containing));
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_not_contained_instance(c: &mut Criterion) {
    // The paper's running example (not contained): enumeration exits as soon
    // as it stumbles on a violating direction, so the gap is smaller — the
    // crossover the experiment demonstrates.
    let containee = paper_examples::section3_query_q1();
    let containing = paper_examples::section3_query_q2();
    let mut group = c.benchmark_group("E6/running_example_not_contained");
    let algorithms = [
        ("lp_most_general", Algorithm::MostGeneralProbe),
        ("guess_check", Algorithm::GuessCheck { budget: GUESS_CHECK_BUDGET }),
    ];
    for (label, algorithm) in algorithms {
        let decider = BagContainmentDecider::new(algorithm);
        group.bench_function(BenchmarkId::new(label, "section3"), |b| {
            b.iter(|| {
                let _ = black_box(decider.decide(&containee, &containing));
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_contained_instances, bench_not_contained_instance
}
criterion_main!(benches);
