//! Regression-corpus replay through the differential fuzzing oracle.
//!
//! `tests/fuzz_corpus/` holds hand-built near-miss pairs — set containments
//! that bags refute, multiplicity asymmetries, the paper's running examples.
//! Each is replayed end to end through the `diophantus fuzz --replay`
//! process: the MPI decider's verdict is cross-checked against brute-force
//! bag enumeration, certificate replay and the set-containment necessary
//! condition, and any disagreement fails the run with exit code 1.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_diophantus");

fn corpus_dir() -> String {
    format!("{}/tests/fuzz_corpus", env!("CARGO_MANIFEST_DIR"))
}

/// Runs the binary and returns (exit code, stdout, stderr).
fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().expect("the diophantus binary must spawn");
    (
        out.status.code().expect("the binary must exit with a code"),
        String::from_utf8(out.stdout).expect("stdout must be UTF-8"),
        String::from_utf8(out.stderr).expect("stderr must be UTF-8"),
    )
}

#[test]
fn corpus_replay_is_clean() {
    let dir = corpus_dir();
    let (code, stdout, stderr) = run(&["fuzz", "--replay", &dir]);
    assert_eq!(code, 0, "corpus replay must find no disagreement:\n{stdout}\n{stderr}");
    // 3 files × 2 pairs, every pair decided (no fragment errors), and the
    // hand-computed verdict split: only the m ≤ m² direction and the
    // Section 2 acceptance pair are bag-contained.
    assert!(stdout.contains("6 case(s), 2 contained, 4 not contained, 0 error(s)"), "{stdout}");
    assert!(stdout.contains("0 disagreement(s)"), "{stdout}");
}

#[test]
fn corpus_replay_report_is_stable_across_routes_and_jobs() {
    let dir = corpus_dir();
    let (code, reference, _) = run(&["fuzz", "--replay", &dir, "--json"]);
    assert_eq!(code, 0);
    // Replayed cases carry file-derived labels in sorted file order.
    for label in [
        "near_miss_conjuncts.dl:pair1",
        "near_miss_conjuncts.dl:pair2",
        "near_miss_multiplicity.dl:pair1",
        "near_miss_multiplicity.dl:pair2",
        "paper_pairs.dl:pair1",
        "paper_pairs.dl:pair2",
    ] {
        assert!(reference.contains(label), "missing {label} in {reference}");
    }
    let conjuncts = reference.find("near_miss_conjuncts.dl:pair1").unwrap();
    let paper = reference.find("paper_pairs.dl:pair1").unwrap();
    assert!(conjuncts < paper, "corpus files must replay in sorted name order");
    for extra in [&["--jobs", "4"][..], &["--lp-route", "bareiss"][..], &["--lp-route", "auto"][..]]
    {
        let mut args = vec!["fuzz", "--replay", dir.as_str(), "--json"];
        args.extend_from_slice(extra);
        let (code, out, _) = run(&args);
        assert_eq!(code, 0, "{extra:?}");
        assert_eq!(out, reference, "replay report diverged under {extra:?}");
    }
}

#[test]
fn corpus_report_certificates_survive_independent_verification() {
    // Pipe the replay's JSON report back through `diophantus verify`: every
    // recorded counterexample must reproduce its multiplicities under the
    // independent Equation-2 evaluator.
    use std::io::Write;
    let dir = corpus_dir();
    let (code, report, _) = run(&["fuzz", "--replay", &dir, "--json"]);
    assert_eq!(code, 0);
    let mut child = Command::new(BIN)
        .arg("verify")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("the diophantus binary must spawn");
    child.stdin.take().expect("stdin was piped").write_all(report.as_bytes()).unwrap();
    let out = child.wait_with_output().expect("verify must exit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "verify failed:\n{stdout}");
    assert!(stdout.contains("4 counterexample(s) verified"), "{stdout}");
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
}

#[test]
fn injected_bug_is_caught_and_minimised_on_the_corpus() {
    // The acceptance gate for the oracle itself: corrupt the decider and the
    // corpus replay must fail, producing a small shrunk reproducer.
    let dir = corpus_dir();
    let (code, stdout, stderr) = run(&["fuzz", "--replay", &dir, "--inject", "flip-verdict"]);
    assert_eq!(code, 1, "an injected bug must fail the replay:\n{stdout}");
    assert!(stderr.contains("disagreement(s) found"), "{stderr}");
    assert!(stdout.contains("minimized containee:"), "{stdout}");
}
