//! The `diophantus` command-line interface.
//!
//! The binary (`src/bin/diophantus.rs`) is a thin wrapper around [`run`];
//! everything — argument parsing included — is hand-rolled here so the CLI
//! stays as dependency-free as the rest of the workspace (the build
//! environment has no crates.io access).
//!
//! Four subcommands drive the pipeline end to end:
//!
//! * `decide` — parse datalog query pairs from files or stdin and decide
//!   set/bag containment, printing verdicts and counterexample bags;
//! * `equiv` — decide bag equivalence (mutual containment) per pair;
//! * `gen` — emit seed-reproducible random workloads (specialisation pairs,
//!   3-colorability reductions, E4/E6/E9 shapes) in the same datalog
//!   notation `decide` reads;
//! * `bench` — time a workload file and print per-pair latency statistics.
//!
//! Every subcommand has a `--json` mode whose output embeds the
//! [`BagContainment::to_json`] /
//! [`Counterexample::to_json`](dioph_containment::Counterexample::to_json)
//! certificates. The input grammar is documented in `docs/grammar.md`.

use std::fmt::Write as _;
use std::io::Read;
use std::time::Instant;

use dioph_containment::{
    json, set_containment, Algorithm, BagContainment, BagContainmentDecider, FeasibilityEngine,
};
use dioph_cq::{parse_program, ConjunctiveQuery};
use dioph_workloads::suite::{generate_pairs, WorkloadKind, WorkloadPair};

/// Default budget for the `guess-check` enumeration algorithm.
const DEFAULT_BUDGET: u64 = 1_000_000;
/// Default seed for `gen` (the same constant the benchmark harness uses).
const DEFAULT_SEED: u64 = 0x2019_0630;
/// Default number of pairs `gen` emits.
const DEFAULT_COUNT: usize = 5;
/// Default number of timed runs per pair in `bench`.
const DEFAULT_REPEAT: usize = 5;

const HELP: &str = "\
diophantus — bag containment for conjunctive queries (PODS 2019)

USAGE:
    diophantus <COMMAND> [OPTIONS] [FILE...]

COMMANDS:
    decide    Decide containment for consecutive (containee, containing)
              query pairs read from FILEs (or stdin). Non-containment
              verdicts come with an independently verified counterexample
              bag.
    equiv     Decide bag equivalence (containment in both directions) for
              each pair.
    gen       Emit a seed-reproducible random workload in the same datalog
              notation `decide` reads.
    bench     Time the decision procedure on a workload and print per-pair
              latency statistics.
    help      Show this message.
    version   Show the version.

OPTIONS (decide, equiv, bench):
    --bag                Bag semantics (default).
    --set                Set semantics (Chandra–Merlin); decide/equiv only.
    --algorithm <NAME>   most-general (default) | all-probes | guess-check
    --budget <N>         Enumeration budget for guess-check (default 1000000).
    --engine <NAME>      simplex (default) | fourier-motzkin
    --json               Machine-readable output.

OPTIONS (gen):
    <KIND>               spec (default) | inflated | contained | path |
                         expmap | threecol
    --count <N>          Number of pairs to emit (default 5).
    --size <K>           Size parameter: atom occurrences (spec, inflated,
                         contained), path length (path), log2 of the mapping
                         count (expmap), vertices (threecol).
    --seed <S>           RNG seed; output is byte-for-byte reproducible.
    --json               Machine-readable output.

OPTIONS (bench):
    --repeat <N>         Timed runs per pair (default 5).

INPUT FORMAT:
    Queries are written in the paper's datalog notation, one '.'-terminated
    query at a time; '%' and '#' start line comments:

        q(x) <- R^2(x, x).
        p(x) <- R(x, y), R(y, x).

    Queries are decided in consecutive pairs (first ⊑ second); each input
    file must therefore hold an even number of queries. The full
    grammar — multiplicities R^2(…), constants 'c1' and 42, canonical
    constants ^x, the `true` body — is documented in docs/grammar.md; the
    pipeline itself is described in ARCHITECTURE.md.

EXIT STATUS:
    0 on success (whatever the verdicts), 1 on input/decision errors,
    2 on usage errors.
";

/// Runs the CLI with the given arguments (excluding the program name),
/// reading stdin if a reading subcommand receives no input files. Returns
/// the process exit code: 0 on success, 1 on input or decision errors, 2 on
/// usage errors.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args, &mut std::io::stdin().lock()) {
        Ok(output) => {
            // A closed stdout (e.g. `diophantus gen … | head`) is a normal
            // way for a pipeline to end, not an error worth a panic.
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            match stdout.write_all(output.as_bytes()).and_then(|()| stdout.flush()) {
                Ok(()) => 0,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
                Err(e) => {
                    eprintln!("diophantus: stdout: {e}");
                    1
                }
            }
        }
        Err(CliError::Failure(message)) => {
            eprintln!("diophantus: {message}");
            1
        }
        Err(CliError::Usage(message)) => {
            eprintln!("diophantus: {message}\nRun `diophantus help` for usage.");
            2
        }
    }
}

enum CliError {
    /// Bad command line — exit code 2.
    Usage(String),
    /// Bad input or an undecidable pair — exit code 1.
    Failure(String),
}

type CliResult = Result<String, CliError>;

fn dispatch(args: &[String], stdin: &mut dyn Read) -> CliResult {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".to_string()));
    };
    match command.as_str() {
        "decide" => cmd_decide(&args[1..], stdin, false),
        "equiv" => cmd_decide(&args[1..], stdin, true),
        "gen" => cmd_gen(&args[1..]),
        "bench" => cmd_bench(&args[1..], stdin),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        "version" | "--version" | "-V" => Ok(format!("diophantus {}\n", env!("CARGO_PKG_VERSION"))),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Option parsing
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Semantics {
    Bag,
    Set,
}

impl Semantics {
    fn name(self) -> &'static str {
        match self {
            Semantics::Bag => "bag",
            Semantics::Set => "set",
        }
    }

    /// The containment symbol used in human-readable verdict lines.
    fn symbol(self) -> &'static str {
        match self {
            Semantics::Bag => "⊑b",
            Semantics::Set => "⊑s",
        }
    }
}

struct DecideOpts {
    semantics: Semantics,
    algorithm: Algorithm,
    algorithm_name: &'static str,
    engine: FeasibilityEngine,
    engine_name: &'static str,
    json: bool,
    repeat: usize,
    repeat_set: bool,
    files: Vec<String>,
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    it.next().cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
}

fn parse_count(text: &str, flag: &str) -> Result<usize, CliError> {
    text.parse().map_err(|_| CliError::Usage(format!("{flag} needs a number, got '{text}'")))
}

fn parse_decide_opts(args: &[String]) -> Result<DecideOpts, CliError> {
    let mut semantics = Semantics::Bag;
    let mut algorithm_name = "most-general".to_string();
    let mut algorithm_set = false;
    let mut budget = DEFAULT_BUDGET;
    let mut budget_set = false;
    let mut engine_name = "simplex".to_string();
    let mut engine_set = false;
    let mut json = false;
    let mut repeat = DEFAULT_REPEAT;
    let mut repeat_set = false;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bag" => semantics = Semantics::Bag,
            "--set" => semantics = Semantics::Set,
            "--json" => json = true,
            "--algorithm" => {
                algorithm_name = next_value(&mut it, "--algorithm")?;
                algorithm_set = true;
            }
            "--budget" => {
                let text = next_value(&mut it, "--budget")?;
                budget = text.parse().map_err(|_| {
                    CliError::Usage(format!("--budget needs a number, got '{text}'"))
                })?;
                budget_set = true;
            }
            "--engine" => {
                engine_name = next_value(&mut it, "--engine")?;
                engine_set = true;
            }
            "--repeat" => {
                repeat = parse_count(&next_value(&mut it, "--repeat")?, "--repeat")?;
                repeat_set = true;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            file => files.push(file.to_string()),
        }
    }
    // Flag combinations that would be silently ignored are rejected instead:
    // the set-semantics check never touches the bag machinery, and the
    // budget only configures the guess-check enumeration.
    if semantics == Semantics::Set {
        for (set, flag) in
            [(algorithm_set, "--algorithm"), (engine_set, "--engine"), (budget_set, "--budget")]
        {
            if set {
                return Err(CliError::Usage(format!(
                    "{flag} only applies to bag semantics; drop --set"
                )));
            }
        }
    }
    if budget_set && algorithm_name != "guess-check" {
        return Err(CliError::Usage(
            "--budget only applies to --algorithm guess-check".to_string(),
        ));
    }
    let (algorithm, algorithm_name) = match algorithm_name.as_str() {
        "most-general" | "most-general-probe" | "mgp" => {
            (Algorithm::MostGeneralProbe, "most-general")
        }
        "all-probes" => (Algorithm::AllProbes, "all-probes"),
        "guess-check" => (Algorithm::GuessCheck { budget }, "guess-check"),
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm '{other}' (expected most-general, all-probes or guess-check)"
            )))
        }
    };
    let (engine, engine_name) = match engine_name.as_str() {
        "simplex" => (FeasibilityEngine::Simplex, "simplex"),
        "fourier-motzkin" | "fm" => (FeasibilityEngine::FourierMotzkin, "fourier-motzkin"),
        other => {
            return Err(CliError::Usage(format!(
                "unknown engine '{other}' (expected simplex or fourier-motzkin)"
            )))
        }
    };
    if repeat == 0 {
        return Err(CliError::Usage("--repeat must be at least 1".to_string()));
    }
    Ok(DecideOpts {
        semantics,
        algorithm,
        algorithm_name,
        engine,
        engine_name,
        json,
        repeat,
        repeat_set,
        files,
    })
}

// ---------------------------------------------------------------------------
// Input loading
// ---------------------------------------------------------------------------

fn load_queries(files: &[String], stdin: &mut dyn Read) -> Result<Vec<ConjunctiveQuery>, CliError> {
    let mut sources: Vec<(String, String)> = Vec::new();
    if files.is_empty() {
        let mut text = String::new();
        stdin.read_to_string(&mut text).map_err(|e| CliError::Failure(format!("<stdin>: {e}")))?;
        sources.push(("<stdin>".to_string(), text));
    } else {
        for file in files {
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError::Failure(format!("{file}: {e}")))?;
            sources.push((file.clone(), text));
        }
    }
    let mut queries = Vec::new();
    for (name, text) in &sources {
        let parsed = parse_program(text).map_err(|e| {
            CliError::Failure(format!("{name}:{}:{}: {}", e.line(), e.column(), e.message()))
        })?;
        // Each source must pair up on its own: concatenating an odd-count
        // file would silently shift every later pair by one query.
        if !parsed.len().is_multiple_of(2) {
            return Err(CliError::Failure(format!(
                "{name}: holds {} queries, but every input must hold an even number \
                 (consecutive (containee, containing) pairs); concatenate files with `cat` \
                 if a pair spans them",
                parsed.len()
            )));
        }
        queries.extend(parsed);
    }
    Ok(queries)
}

fn into_pairs(
    queries: Vec<ConjunctiveQuery>,
) -> Result<Vec<(ConjunctiveQuery, ConjunctiveQuery)>, CliError> {
    if queries.is_empty() {
        return Err(CliError::Failure(
            "no queries in the input; expected '.'-terminated datalog queries in consecutive \
             (containee, containing) pairs — see docs/grammar.md"
                .to_string(),
        ));
    }
    // Evenness is guaranteed per source by `load_queries`.
    let mut pairs = Vec::with_capacity(queries.len() / 2);
    let mut it = queries.into_iter();
    while let (Some(containee), Some(containing)) = (it.next(), it.next()) {
        pairs.push((containee, containing));
    }
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// decide / equiv
// ---------------------------------------------------------------------------

/// Decides one direction under the selected semantics; returns the verdict
/// and its rendering in the requested output mode only (no point formatting
/// JSON for a human run, or vice versa).
fn decide_direction(
    opts: &DecideOpts,
    decider: &BagContainmentDecider,
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
) -> Result<(bool, String), CliError> {
    match opts.semantics {
        Semantics::Bag => {
            let result = decider.decide(containee, containing).map_err(|e| {
                CliError::Failure(format!(
                    "cannot decide {} {} {}: {e}",
                    containee.name(),
                    opts.semantics.symbol(),
                    containing.name()
                ))
            })?;
            let rendered = if opts.json { result.to_json() } else { result.to_string() };
            Ok((result.holds(), rendered))
        }
        Semantics::Set => {
            let result = set_containment(containee, containing);
            let rendered = match (result.witness(), opts.json) {
                (Some(witness), false) => format!("contained (witness homomorphism {witness})"),
                (Some(witness), true) => format!(
                    "{{\"verdict\":\"contained\",\"witness\":{}}}",
                    json::string(&witness.to_string())
                ),
                (None, false) => "not contained (no containment mapping exists)".to_string(),
                (None, true) => "{\"verdict\":\"not_contained\"}".to_string(),
            };
            Ok((result.holds(), rendered))
        }
    }
}

fn cmd_decide(args: &[String], stdin: &mut dyn Read, mutual: bool) -> CliResult {
    let opts = parse_decide_opts(args)?;
    if opts.repeat_set {
        return Err(CliError::Usage("--repeat only applies to bench".to_string()));
    }
    let pairs = into_pairs(load_queries(&opts.files, stdin)?)?;
    let decider = BagContainmentDecider::new(opts.algorithm).with_engine(opts.engine);
    let mut human = String::new();
    let mut json_pairs: Vec<String> = Vec::new();
    for (i, (containee, containing)) in pairs.iter().enumerate() {
        let index = i + 1;
        let forward = decide_direction(&opts, &decider, containee, containing)?;
        if mutual {
            let backward = decide_direction(&opts, &decider, containing, containee)?;
            let equivalent = forward.0 && backward.0;
            if opts.json {
                json_pairs.push(format!(
                    "{{\"index\":{index},\"containee\":{},\"containing\":{},\"equivalent\":{},\
                     \"forward\":{},\"backward\":{}}}",
                    json::string(&containee.to_string()),
                    json::string(&containing.to_string()),
                    equivalent,
                    forward.1,
                    backward.1,
                ));
            } else {
                let eq_symbol = if opts.semantics == Semantics::Bag { "≡b" } else { "≡s" };
                let verdict = if equivalent { "equivalent" } else { "NOT equivalent" };
                writeln!(
                    human,
                    "[{index}] {} {eq_symbol} {}: {verdict}\n    forward  ({} {} {}): {}\n    \
                     backward ({} {} {}): {}",
                    containee.name(),
                    containing.name(),
                    containee.name(),
                    opts.semantics.symbol(),
                    containing.name(),
                    forward.1,
                    containing.name(),
                    opts.semantics.symbol(),
                    containee.name(),
                    backward.1,
                )
                .expect("writing to a String cannot fail");
            }
        } else if opts.json {
            json_pairs.push(format!(
                "{{\"index\":{index},\"containee\":{},\"containing\":{},\"result\":{}}}",
                json::string(&containee.to_string()),
                json::string(&containing.to_string()),
                forward.1,
            ));
        } else {
            writeln!(
                human,
                "[{index}] {} {} {}: {}",
                containee.name(),
                opts.semantics.symbol(),
                containing.name(),
                forward.1
            )
            .expect("writing to a String cannot fail");
        }
    }
    if opts.json {
        let command = if mutual { "equiv" } else { "decide" };
        Ok(format!(
            "{{\"command\":\"{command}\",\"semantics\":\"{}\",\"algorithm\":\"{}\",\
             \"engine\":\"{}\",\"pairs\":[{}]}}\n",
            opts.semantics.name(),
            opts.algorithm_name,
            opts.engine_name,
            json_pairs.join(",")
        ))
    } else {
        Ok(human)
    }
}

// ---------------------------------------------------------------------------
// gen
// ---------------------------------------------------------------------------

fn cmd_gen(args: &[String]) -> CliResult {
    let mut kind_name: Option<String> = None;
    let mut count = DEFAULT_COUNT;
    let mut size: Option<usize> = None;
    let mut seed = DEFAULT_SEED;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--count" => count = parse_count(&next_value(&mut it, "--count")?, "--count")?,
            "--size" => size = Some(parse_count(&next_value(&mut it, "--size")?, "--size")?),
            "--seed" => {
                let text = next_value(&mut it, "--seed")?;
                seed = text
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--seed needs a number, got '{text}'")))?;
            }
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown option '{flag}'")))
            }
            positional => {
                if kind_name.is_some() {
                    return Err(CliError::Usage(format!(
                        "unexpected extra argument '{positional}'"
                    )));
                }
                kind_name = Some(positional.to_string());
            }
        }
    }
    let kind_name = kind_name.unwrap_or_else(|| "spec".to_string());
    // Resolve the kind-specific size parameter up front so the provenance
    // header records the *effective* value, not whatever was (or wasn't)
    // passed — re-running the recorded command must regenerate the workload
    // even if a default changes.
    let (kind, size) = match kind_name.as_str() {
        "spec" | "specialization" => {
            let atoms = size.unwrap_or(4);
            (WorkloadKind::Specialization { atoms }, atoms)
        }
        "inflated" => {
            let atoms = size.unwrap_or(4);
            (WorkloadKind::Inflated { atoms }, atoms)
        }
        "contained" => {
            let atoms = size.unwrap_or(4);
            (WorkloadKind::Contained { atoms }, atoms)
        }
        "path" => {
            let length = size.unwrap_or(3);
            if length == 0 {
                return Err(CliError::Usage("--size must be at least 1 for path".to_string()));
            }
            (WorkloadKind::Path { length }, length)
        }
        "expmap" => {
            let mappings_log2 = size.unwrap_or(2);
            (WorkloadKind::ExponentialMapping { mappings_log2 }, mappings_log2)
        }
        "threecol" => {
            let vertices = size.unwrap_or(5);
            if vertices == 0 {
                return Err(CliError::Usage("--size must be at least 1 for threecol".to_string()));
            }
            (WorkloadKind::ThreeColorability { vertices }, vertices)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown workload kind '{other}' (expected spec, inflated, contained, path, \
                 expmap or threecol)"
            )))
        }
    };
    let pairs = generate_pairs(kind, count, seed);
    if json {
        let rendered: Vec<String> = pairs
            .iter()
            .map(|p| {
                format!(
                    "{{\"label\":{},\"containee\":{},\"containing\":{}}}",
                    json::string(&p.label),
                    json::string(&p.containee.to_string()),
                    json::string(&p.containing.to_string())
                )
            })
            .collect();
        Ok(format!(
            "{{\"command\":\"gen\",\"kind\":\"{kind_name}\",\"count\":{count},\"size\":{size},\
             \"seed\":{seed},\"pairs\":[{}]}}\n",
            rendered.join(",")
        ))
    } else {
        let mut out =
            format!("% diophantus gen {kind_name} --count {count} --size {size} --seed {seed}\n");
        for (i, WorkloadPair { label, containee, containing }) in pairs.iter().enumerate() {
            writeln!(out, "% pair {}: {label}\n{containee}.\n{containing}.", i + 1)
                .expect("writing to a String cannot fail");
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

/// Renders a duration in nanoseconds with a human-friendly unit.
fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

fn cmd_bench(args: &[String], stdin: &mut dyn Read) -> CliResult {
    let opts = parse_decide_opts(args)?;
    if opts.semantics == Semantics::Set {
        return Err(CliError::Usage("bench times the bag-containment decider; drop --set".into()));
    }
    let pairs = into_pairs(load_queries(&opts.files, stdin)?)?;
    let decider = BagContainmentDecider::new(opts.algorithm).with_engine(opts.engine);
    let mut human = String::new();
    let mut json_pairs: Vec<String> = Vec::new();
    let mut total_ns: u128 = 0;
    for (i, (containee, containing)) in pairs.iter().enumerate() {
        let index = i + 1;
        let mut durations_ns: Vec<u128> = Vec::with_capacity(opts.repeat);
        let mut verdict: Option<BagContainment> = None;
        for _ in 0..opts.repeat {
            let start = Instant::now();
            let result = decider.decide(containee, containing).map_err(|e| {
                CliError::Failure(format!(
                    "cannot decide {} ⊑b {}: {e}",
                    containee.name(),
                    containing.name()
                ))
            })?;
            durations_ns.push(start.elapsed().as_nanos());
            verdict.get_or_insert(result);
        }
        let verdict = verdict.expect("repeat >= 1 guarantees at least one run");
        let min = *durations_ns.iter().min().expect("at least one run");
        let max = *durations_ns.iter().max().expect("at least one run");
        let sum: u128 = durations_ns.iter().sum();
        let mean = sum / durations_ns.len() as u128;
        total_ns += sum;
        if opts.json {
            json_pairs.push(format!(
                "{{\"index\":{index},\"containee\":{},\"containing\":{},\"verdict\":\"{}\",\
                 \"runs\":{},\"min_ns\":{min},\"mean_ns\":{mean},\"max_ns\":{max}}}",
                json::string(&containee.to_string()),
                json::string(&containing.to_string()),
                if verdict.holds() { "contained" } else { "not_contained" },
                opts.repeat,
            ));
        } else {
            let verdict_name = if verdict.holds() { "contained" } else { "not contained" };
            writeln!(
                human,
                "[{index}] {} ⊑b {}: {verdict_name:<13} min {:>8}  mean {:>8}  max {:>8}  \
                 ({} runs)",
                containee.name(),
                containing.name(),
                format_ns(min),
                format_ns(mean),
                format_ns(max),
                opts.repeat
            )
            .expect("writing to a String cannot fail");
        }
    }
    if opts.json {
        Ok(format!(
            "{{\"command\":\"bench\",\"algorithm\":\"{}\",\"engine\":\"{}\",\"repeat\":{},\
             \"total_ns\":{total_ns},\"pairs\":[{}]}}\n",
            opts.algorithm_name,
            opts.engine_name,
            opts.repeat,
            json_pairs.join(",")
        ))
    } else {
        writeln!(
            human,
            "total: {} pair(s) × {} run(s) in {}",
            pairs.len(),
            opts.repeat,
            format_ns(total_ns)
        )
        .expect("writing to a String cannot fail");
        Ok(human)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str], stdin: &str) -> String {
        let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        let mut input = stdin.as_bytes();
        match dispatch(&args, &mut input) {
            Ok(out) => out,
            Err(CliError::Usage(m) | CliError::Failure(m)) => panic!("unexpected error: {m}"),
        }
    }

    fn run_err(args: &[&str], stdin: &str) -> (bool, String) {
        let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        let mut input = stdin.as_bytes();
        match dispatch(&args, &mut input) {
            Ok(out) => panic!("expected an error, got output:\n{out}"),
            Err(CliError::Usage(m)) => (true, m),
            Err(CliError::Failure(m)) => (false, m),
        }
    }

    const ACCEPTANCE: &str = "q(x) <- R^2(x, x). p(x) <- R(x, y), R(y, x).";

    #[test]
    fn decide_prints_a_verdict_for_the_acceptance_pair() {
        let out = run_ok(&["decide", "--bag"], ACCEPTANCE);
        assert!(out.contains("q ⊑b p"), "{out}");
        assert!(out.contains("contained"), "{out}");
        assert!(!out.contains("not contained"), "{out}");
    }

    #[test]
    fn decide_reports_counterexamples_with_the_violating_bag() {
        let out = run_ok(&["decide"], "q(x) <- R(x, x), S(x). p(x) <- R(x, x).");
        assert!(out.contains("not contained"), "{out}");
        assert!(out.contains("on bag {"), "{out}");
    }

    #[test]
    fn decide_supports_all_algorithms_and_engines() {
        for algorithm in ["most-general", "all-probes", "guess-check"] {
            for engine in ["simplex", "fourier-motzkin"] {
                let out =
                    run_ok(&["decide", "--algorithm", algorithm, "--engine", engine], ACCEPTANCE);
                assert!(out.contains("contained"), "{algorithm}/{engine}: {out}");
            }
        }
        let out =
            run_ok(&["decide", "--algorithm", "guess-check", "--budget", "100000"], ACCEPTANCE);
        assert!(out.contains("contained"), "{out}");
    }

    #[test]
    fn decide_set_semantics() {
        // Dropping a conjunct is a set containment but not a bag containment.
        let input = "q(x) <- R(x, x), S(x). p(x) <- R(x, x).";
        let set = run_ok(&["decide", "--set"], input);
        assert!(set.contains("⊑s") && set.contains("witness"), "{set}");
        let bag = run_ok(&["decide", "--bag"], input);
        assert!(bag.contains("not contained"), "{bag}");
    }

    #[test]
    fn equiv_decides_both_directions() {
        let out = run_ok(
            &["equiv"],
            "q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2).\n\
             q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2).",
        );
        assert!(out.contains("NOT equivalent"), "{out}");
        assert!(out.contains("forward") && out.contains("backward"), "{out}");
        let out = run_ok(&["equiv"], "q(x) <- R(x, x). q(x) <- R(x, x).");
        assert!(out.contains(": equivalent"), "{out}");
    }

    #[test]
    fn gen_is_reproducible_and_round_trips_through_decide() {
        let a = run_ok(&["gen", "spec", "--count", "3", "--seed", "42"], "");
        let b = run_ok(&["gen", "spec", "--count", "3", "--seed", "42"], "");
        assert_eq!(a, b, "gen must be byte-for-byte reproducible");
        let c = run_ok(&["gen", "spec", "--count", "3", "--seed", "43"], "");
        assert_ne!(a, c, "different seeds must give different workloads");
        // The emitted datalog feeds straight back into decide, and
        // specialisation pairs are contained by construction.
        let verdicts = run_ok(&["decide"], &a);
        assert_eq!(verdicts.lines().count(), 3, "{verdicts}");
        assert!(verdicts.lines().all(|l| l.contains("contained")), "{verdicts}");
        assert!(!verdicts.contains("not contained"), "{verdicts}");
    }

    #[test]
    fn gen_header_records_the_effective_size() {
        // The provenance header must regenerate the workload verbatim, so it
        // records the resolved --size even when the caller relied on the
        // default.
        let out = run_ok(&["gen", "spec", "--count", "2", "--seed", "5"], "");
        assert!(out.starts_with("% diophantus gen spec --count 2 --size 4 --seed 5\n"), "{out}");
        let sized = run_ok(&["gen", "spec", "--count", "2", "--size", "4", "--seed", "5"], "");
        assert_eq!(out, sized, "explicit default size must match the recorded command");
        let json = run_ok(&["gen", "--json", "--count", "1", "--size", "3", "--seed", "5"], "");
        assert!(json.contains("\"size\":3"), "{json}");
    }

    #[test]
    fn gen_covers_every_kind() {
        for kind in ["spec", "inflated", "contained", "path", "expmap", "threecol"] {
            let out = run_ok(&["gen", kind, "--count", "2", "--seed", "7"], "");
            assert_eq!(out.matches("% pair").count(), 2, "{kind}: {out}");
            // Every emitted query parses back.
            let queries = dioph_cq::parse_program(&out).expect(kind);
            assert_eq!(queries.len(), 4, "{kind}");
        }
    }

    #[test]
    fn bench_reports_latency_stats() {
        let out = run_ok(&["bench", "--repeat", "2"], ACCEPTANCE);
        assert!(out.contains("min") && out.contains("mean") && out.contains("max"), "{out}");
        assert!(out.contains("total: 1 pair(s) × 2 run(s)"), "{out}");
    }

    #[test]
    fn json_outputs_have_the_expected_envelopes() {
        let out = run_ok(&["decide", "--json"], ACCEPTANCE);
        assert!(out.starts_with("{\"command\":\"decide\",\"semantics\":\"bag\""), "{out}");
        assert!(out.contains("\"verdict\":\"contained\""), "{out}");
        let out = run_ok(&["equiv", "--json"], "q(x) <- R(x, x). q(x) <- R(x, x).");
        assert!(out.contains("\"equivalent\":true"), "{out}");
        let out = run_ok(&["gen", "--json", "--count", "1", "--seed", "1"], "");
        assert!(out.starts_with("{\"command\":\"gen\""), "{out}");
        let out = run_ok(&["bench", "--json", "--repeat", "1"], ACCEPTANCE);
        assert!(out.contains("\"min_ns\":"), "{out}");
    }

    #[test]
    fn parse_errors_name_the_line_and_column() {
        let (usage, message) = run_err(&["decide"], "q(x <- R(x, x).");
        assert!(!usage, "parse errors are failures, not usage errors");
        assert!(message.contains("<stdin>:1:5"), "{message}");
    }

    #[test]
    fn unpaired_queries_are_rejected() {
        let (_, message) = run_err(&["decide"], "q(x) <- R(x, x).");
        assert!(message.contains("even number"), "{message}");
        let (_, message) = run_err(&["decide"], "% only comments\n");
        assert!(message.contains("no queries"), "{message}");
    }

    #[test]
    fn undecidable_containees_fail_with_context() {
        let (_, message) = run_err(&["decide"], "q(x) <- R(x, y). p(x) <- R(x, x).");
        assert!(message.contains("projection-free"), "{message}");
    }

    #[test]
    fn usage_errors() {
        assert!(run_err(&["frobnicate"], "").0);
        assert!(run_err(&["decide", "--algorithm", "magic"], "").0);
        assert!(run_err(&["decide", "--engine", "abacus"], "").0);
        assert!(run_err(&["gen", "nope"], "").0);
        assert!(run_err(&["gen", "--seed"], "").0);
        assert!(run_err(&["bench", "--set"], "").0);
        assert!(run_err(&["bench", "--repeat", "0"], "").0);
        assert!(run_err(&["decide", "--repeat", "3"], "").0, "--repeat is bench-only");
        assert!(run_err(&["equiv", "--repeat", "3"], "").0, "--repeat is bench-only");
        assert!(run_err(&["decide", "--set", "--engine", "simplex"], "").0, "set ignores engine");
        assert!(run_err(&["decide", "--set", "--algorithm", "all-probes"], "").0);
        assert!(run_err(&["decide", "--set", "--budget", "9"], "").0);
        assert!(run_err(&["decide", "--budget", "9"], "").0, "budget needs guess-check");
        assert!(run_err(&["gen", "path", "--size", "0"], "").0, "path needs size >= 1");
        assert!(run_err(&["gen", "threecol", "--size", "0"], "").0);
        assert!(run_err(&[], "").0);
    }

    #[test]
    fn help_and_version() {
        let help = run_ok(&["help"], "");
        for needle in ["decide", "equiv", "gen", "bench", "docs/grammar.md", "ARCHITECTURE.md"] {
            assert!(help.contains(needle), "help must mention {needle}");
        }
        let version = run_ok(&["--version"], "");
        assert!(version.starts_with("diophantus "), "{version}");
    }
}
