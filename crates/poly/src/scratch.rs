//! The MPI layer of the scratch-memory discipline.
//!
//! Deciding one probe means building the strict homogeneous system of
//! Theorem 4.1 from the probe's MPI and handing it to an LP kernel. Both
//! halves used to allocate per call: one entry vector per polynomial term
//! plus a fresh [`StrictHomogeneousSystem`], then the kernel's whole working
//! set. [`MpiScratch`] owns a recycled system and the
//! [`LpScratch`](dioph_linalg::LpScratch) below it; the system's rows are
//! built from — and torn back down into — the scratch's shared integer
//! entry pool, so a warmed scratch rebuilds and decides the Theorem 4.1
//! system of each successive probe without fresh heap allocations.
//!
//! Reuse is capacity-only: [`Mpi::to_strict_system_in`] produces a system
//! equal to [`Mpi::to_strict_system`], and the `_in` decision entry points
//! return bit-identical verdicts and witnesses to their scratch-free twins.
//!
//! [`Mpi::to_strict_system_in`]: crate::Mpi::to_strict_system_in
//! [`Mpi::to_strict_system`]: crate::Mpi::to_strict_system

use dioph_linalg::{LpScratch, StrictHomogeneousSystem};

/// Recycled buffers for MPI-system construction and LP solving: one value
/// per worker serves every probe that worker decides.
#[derive(Debug, Default)]
pub struct MpiScratch {
    /// The recycled Theorem 4.1 system (rows rebuilt per probe).
    pub(crate) sys: StrictHomogeneousSystem,
    /// The LP kernels' recycled working set; its integer entry pool also
    /// backs the rows of `sys`.
    pub(crate) lp: LpScratch,
}

impl MpiScratch {
    /// A cold scratch; buffers warm up over the first probe and are
    /// recycled from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// The system built by the last [`to_strict_system_in`] call (for
    /// callers that inspect the system after deciding it).
    ///
    /// [`to_strict_system_in`]: crate::Mpi::to_strict_system_in
    pub fn system(&self) -> &StrictHomogeneousSystem {
        &self.sys
    }
}
