//! The generators must emit lint-clean programs: every workload family,
//! at every seed, renders to a program that passes
//! `diophantus check --deny warnings` — zero errors, zero warnings
//! (cost-advisory notes are allowed and keep exit 0), and every pair
//! classified paper-decidable.
//!
//! This is the contract behind the CI `gen | check --deny warnings` smoke,
//! stated as a property over the whole seed space instead of one seed.

use dioph_analyze::{analyze_source, FragmentClass, LintConfig, Severity};
use dioph_workloads::suite::{generate_pairs, WorkloadKind, WorkloadPair};
use proptest::prelude::*;

fn kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Specialization { atoms: 4 },
        WorkloadKind::Inflated { atoms: 4 },
        WorkloadKind::Contained { atoms: 4 },
        WorkloadKind::Path { length: 2 },
        WorkloadKind::ExponentialMapping { mappings_log2: 1 },
        WorkloadKind::ThreeColorability { vertices: 5 },
    ]
}

/// Renders pairs the way `diophantus gen` does: one query per line,
/// terminated with `.`, consecutive lines forming (containee, containing)
/// pairs.
fn render_program(pairs: &[WorkloadPair]) -> String {
    let mut text = String::new();
    for pair in pairs {
        text.push_str(&format!("{}.\n{}.\n", pair.containee, pair.containing));
    }
    text
}

fn assert_lint_clean(kind: WorkloadKind, seed: u64) {
    let pairs = generate_pairs(kind, 3, seed);
    let source = render_program(&pairs);
    let mut config = LintConfig::new();
    config.deny_warnings();
    let analysis = analyze_source(&source, &config);

    for d in analysis.all_diagnostics() {
        assert!(
            d.severity < Severity::Warning,
            "{kind:?} seed {seed}: generator emitted a lintable program: {}\n{source}",
            d.render("<gen>")
        );
    }
    assert_eq!(analysis.pairs.len(), pairs.len(), "{kind:?} seed {seed}");
    for pair in &analysis.pairs {
        assert_eq!(
            pair.fragment,
            FragmentClass::PaperDecidable,
            "{kind:?} seed {seed} pair {}",
            pair.index
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every workload family stays warning-free across the seed space.
    #[test]
    fn generated_workloads_are_lint_clean(seed in any::<u64>(), kind_index in 0usize..6) {
        assert_lint_clean(kinds()[kind_index], seed);
    }
}

/// The fixed CI seed stays clean for every family — the deterministic
/// anchor the `gen | check --deny warnings --json` CI step relies on.
#[test]
fn ci_seed_is_lint_clean_for_every_kind() {
    for kind in kinds() {
        assert_lint_clean(kind, 2019);
    }
}
