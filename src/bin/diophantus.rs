//! The `diophantus` workload CLI: parse datalog query pairs, decide set/bag
//! containment and equivalence, generate random workloads and time the
//! decision procedure. All the logic lives in [`diophantus::cli`]; run
//! `diophantus help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(diophantus::cli::run(&args));
}
