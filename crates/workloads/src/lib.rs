//! # dioph-workloads — workload generators for the diophantus workspace
//!
//! Everything the examples, property tests and benchmarks feed into the
//! bag-containment machinery:
//!
//! * [`graphs`] — undirected graphs, generators and a brute-force
//!   3-colorability oracle;
//! * [`threecol`] — the Theorem 5.4 reduction from 3-colorability to bag
//!   containment (NP-hardness workload, experiment E5);
//! * [`random`] — random conjunctive queries, including pairs that are
//!   bag-contained by construction (specialisation pairs) and pairs designed
//!   to break containment (experiments E4, E6, E9);
//! * [`joins`] — optimizer-trace-style join shapes (chains, stars, cliques
//!   over a shared relation pool) with specialisation containees;
//! * [`refutation`] — the sound-but-incomplete random-bag refutation baseline
//!   (experiment E8);
//! * [`suite`] — named, seed-reproducible workload suites (the generator
//!   plumbing behind `diophantus gen` and the E4 sweep shapes);
//! * [`polynomials`] — the Ioannidis–Ramakrishnan-style encoding of
//!   polynomials as unions of conjunctive queries over star bags
//!   (experiments E2/E3 and the `diophantine_lab` example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphs;
pub mod joins;
pub mod polynomials;
pub mod random;
pub mod refutation;
pub mod suite;
pub mod threecol;

pub use graphs::Graph;
pub use joins::{chain_pair, clique_pair, star_pair};
pub use random::QueryShape;
pub use refutation::{refute_by_random_bags, RefutationConfig};
pub use suite::{generate_pairs, WorkloadKind, WorkloadPair};
