//! A small parser for conjunctive queries in the paper's datalog notation.
//!
//! Three entry points, in increasing granularity:
//!
//! * [`parse_query`] — a single query (byte-offset errors);
//! * [`parse_ucq`] — `;`/newline-separated disjuncts of one arity;
//! * [`parse_program`] — a whole file of `.`-terminated queries with
//!   `%`/`#` line comments and line/column error spans, the entry point the
//!   `diophantus` CLI uses for its diagnostics.
//!
//! The normative grammar (with one runnable example per production) lives in
//! `docs/grammar.md`, which is also included verbatim in the crate-root
//! documentation so its examples run as doctests.
//!
//! Example (the paper's Section 2 running query):
//!
//! ```
//! use dioph_cq::parse_query;
//! let q = parse_query("q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4).").unwrap();
//! assert_eq!(q.total_atom_count(), 6);
//! assert_eq!(q.distinct_atom_count(), 4);
//! ```

use core::fmt;

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::span::{line_column, AtomOccurrence, QuerySpans, Span, SpannedQuery};
use crate::term::Term;
use crate::ucq::UnionOfConjunctiveQueries;

/// Error produced when parsing a query fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// Human-readable description of the problem.
    message: String,
    /// Byte offset in the input at which the problem was detected.
    position: usize,
}

impl ParseQueryError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseQueryError { message: message.into(), position }
    }

    /// The byte offset at which parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseQueryError {}

/// Parses a conjunctive query written in datalog notation with optional
/// multiplicity superscripts (see the module documentation for the grammar).
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseQueryError> {
    parse_query_spanned(input).map(|sq| sq.query)
}

/// Like [`parse_query`], but also returns the span side table recording
/// where the head, every body-atom occurrence and every term sit in `input`
/// (see [`SpannedQuery`]).
pub fn parse_query_spanned(input: &str) -> Result<SpannedQuery, ParseQueryError> {
    let mut p = Parser::new(input);
    let q = p.query()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(ParseQueryError::new("unexpected trailing input", p.pos));
    }
    Ok(q)
}

/// Parses a union of conjunctive queries: one query per non-empty line (or
/// queries separated by `;`). All disjuncts must share the same arity.
pub fn parse_ucq(input: &str) -> Result<UnionOfConjunctiveQueries, ParseQueryError> {
    let mut disjuncts = Vec::new();
    for piece in input.split([';', '\n']) {
        if piece.trim().is_empty() {
            continue;
        }
        disjuncts.push(parse_query(piece)?);
    }
    if disjuncts.is_empty() {
        return Err(ParseQueryError::new("a UCQ needs at least one disjunct", 0));
    }
    let arity = disjuncts[0].arity();
    if disjuncts.iter().any(|d| d.arity() != arity) {
        return Err(ParseQueryError::new("all UCQ disjuncts must have the same arity", 0));
    }
    Ok(UnionOfConjunctiveQueries::new(disjuncts))
}

/// Error produced when parsing a multi-query program fails. Unlike
/// [`ParseQueryError`], the position is resolved to a 1-based line and
/// column, ready for CLI-style `file:line:column` diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramParseError {
    message: String,
    line: usize,
    column: usize,
}

impl ProgramParseError {
    fn at(input: &str, position: usize, message: String) -> Self {
        let (line, column) = line_column(input, position);
        ProgramParseError { message, line, column }
    }

    /// The 1-based line on which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The 1-based column (in characters) at which parsing failed.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ProgramParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ProgramParseError {}

/// Replaces `%`/`#` line comments with spaces, keeping every byte offset
/// (and the line structure) identical so error positions computed on the
/// stripped text remain valid in the original.
fn blank_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut in_comment = false;
    for ch in input.chars() {
        if ch == '\n' {
            in_comment = false;
            out.push('\n');
        } else if in_comment || ch == '%' || ch == '#' {
            in_comment = true;
            for _ in 0..ch.len_utf8() {
                out.push(' ');
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Parses a whole *program*: any number of queries, each terminated by `.`
/// (the final terminator is optional), with `%` and `#` line comments.
///
/// This is the file-level entry point behind the `diophantus` CLI: errors
/// come with the line and column of the offending token (see
/// [`ProgramParseError`]), so malformed workload files produce actionable
/// diagnostics. An empty (or comment-only) input yields an empty vector.
///
/// ```
/// use dioph_cq::parse_program;
///
/// let queries = parse_program("q(x) <- R^2(x, x). % containee\np(x) <- R(x, y), R(y, x).")
///     .unwrap();
/// assert_eq!(queries.len(), 2);
///
/// let err = parse_program("q(x) <- R(x, x).\np(x) <- R(x, ").unwrap_err();
/// assert_eq!((err.line(), err.column()), (2, 14));
/// ```
pub fn parse_program(input: &str) -> Result<Vec<ConjunctiveQuery>, ProgramParseError> {
    parse_program_spanned(input).map(|queries| queries.into_iter().map(|sq| sq.query).collect())
}

/// Like [`parse_program`], but each query comes with its span side table
/// (see [`SpannedQuery`]). Comment blanking keeps byte offsets identical, so
/// every span indexes into the **original** `input`, comments and all.
pub fn parse_program_spanned(input: &str) -> Result<Vec<SpannedQuery>, ProgramParseError> {
    let cleaned = blank_comments(input);
    let mut p = Parser::new(&cleaned);
    let mut queries = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        let q = p.query().map_err(|e| ProgramParseError::at(input, e.position, e.message))?;
        p.skip_ws();
        if !p.terminated && !p.at_end() {
            return Err(ProgramParseError::at(
                input,
                p.pos,
                "expected '.' before the next query".to_string(),
            ));
        }
        queries.push(q);
    }
    Ok(queries)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Whether the most recently parsed query consumed its trailing `.`.
    terminated: bool,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0, terminated: false }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: u8) -> Result<(), ParseQueryError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseQueryError::new(
                format!(
                    "expected '{}', found {}",
                    expected as char,
                    other.map_or("end of input".to_string(), |b| format!("'{}'", b as char))
                ),
                self.pos,
            )),
        }
    }

    fn identifier(&mut self) -> Result<String, ParseQueryError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParseQueryError::new("expected an identifier", self.pos));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<u64, ParseQueryError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParseQueryError::new("expected a number", self.pos));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| ParseQueryError::new("number too large", start))
    }

    fn query(&mut self) -> Result<SpannedQuery, ParseQueryError> {
        self.skip_ws();
        let name_start = self.pos;
        let name = self.identifier()?;
        let name_span = Span::new(name_start, self.pos);
        self.expect(b'(')?;
        let (head, head_term_spans) = self.term_list(b')')?;
        self.expect(b')')?;
        // Arrow: "<-" or ":-".
        self.skip_ws();
        match (self.bump(), self.bump()) {
            (Some(b'<'), Some(b'-')) | (Some(b':'), Some(b'-')) => {}
            _ => {
                return Err(ParseQueryError::new(
                    "expected '<-' or ':-'",
                    self.pos.saturating_sub(2),
                ))
            }
        }
        self.skip_ws();
        // Body: the keyword "true" (not merely a relation name that starts
        // with it, like `trueness`) or a list of atoms.
        let mut occurrences: Vec<AtomOccurrence> = Vec::new();
        let rest = &self.bytes[self.pos..];
        let true_keyword = rest.starts_with(b"true")
            && !matches!(rest.get(4), Some(b) if b.is_ascii_alphanumeric() || *b == b'_');
        let mut body_end;
        if true_keyword {
            self.pos += 4;
            body_end = self.pos;
        } else {
            loop {
                occurrences.push(self.atom()?);
                body_end = self.pos;
                self.skip_ws();
                if self.peek() == Some(b',') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.skip_ws();
        self.terminated = self.peek() == Some(b'.');
        if self.terminated {
            self.pos += 1;
        }
        let atoms = occurrences.iter().map(|occ| (occ.atom.clone(), occ.multiplicity));
        let query = ConjunctiveQuery::new(name, head, atoms);
        let spans = QuerySpans {
            span: Span::new(name_start, body_end),
            name_span,
            head_term_spans,
            atoms: occurrences,
        };
        Ok(SpannedQuery { query, spans })
    }

    fn atom(&mut self) -> Result<AtomOccurrence, ParseQueryError> {
        self.skip_ws();
        let start = self.pos;
        let relation = self.identifier()?;
        let relation_span = Span::new(start, self.pos);
        self.skip_ws();
        let mult = if self.peek() == Some(b'^') {
            self.pos += 1;
            let position = self.pos;
            let mult = self.number()?;
            if mult == 0 {
                return Err(ParseQueryError::new("multiplicity must be at least 1", position));
            }
            mult
        } else {
            1
        };
        self.expect(b'(')?;
        let (terms, term_spans) = self.term_list(b')')?;
        self.expect(b')')?;
        Ok(AtomOccurrence {
            atom: Atom::new(relation, terms),
            multiplicity: mult,
            span: Span::new(start, self.pos),
            relation_span,
            term_spans,
        })
    }

    fn term_list(&mut self, closing: u8) -> Result<(Vec<Term>, Vec<Span>), ParseQueryError> {
        let mut terms = Vec::new();
        let mut spans = Vec::new();
        self.skip_ws();
        if self.peek() == Some(closing) {
            return Ok((terms, spans));
        }
        loop {
            let (term, span) = self.term()?;
            terms.push(term);
            spans.push(span);
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok((terms, spans))
    }

    fn term(&mut self) -> Result<(Term, Span), ParseQueryError> {
        self.skip_ws();
        let start = self.pos;
        let term = match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let name = self.identifier()?;
                self.expect(b'\'')?;
                Term::constant(name)
            }
            Some(b'^') => {
                self.pos += 1;
                let name = self.identifier()?;
                Term::canon(name)
            }
            Some(b) if b.is_ascii_digit() => {
                let n = self.number()?;
                Term::constant(n.to_string())
            }
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => Term::var(self.identifier()?),
            other => {
                return Err(ParseQueryError::new(
                    format!(
                        "expected a term, found {}",
                        other.map_or("end of input".to_string(), |b| format!("'{}'", b as char))
                    ),
                    self.pos,
                ))
            }
        };
        Ok((term, Span::new(start, self.pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;

    #[test]
    fn parses_paper_section2_query() {
        let q =
            parse_query("q3(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4).").unwrap();
        assert_eq!(q, paper_examples::section2_query_q3());
    }

    #[test]
    fn parses_constants_and_canonical_constants() {
        let q = parse_query("q(x1, x2) <- R^2(x1, x2), R('c1', x2), R^3(x1, 'c2')").unwrap();
        assert_eq!(q, paper_examples::section3_query_q1().with_name("q"));
        let g = parse_query("g(^x1, ^x2) <- R(^x1, ^x2)").unwrap();
        assert_eq!(g.head(), &[Term::canon("x1"), Term::canon("x2")]);
        assert!(g.body_atoms().all(Atom::is_ground));
    }

    #[test]
    fn numeric_constants() {
        let q = parse_query("q(x) <- R(x, 42)").unwrap();
        let atom = q.body_atoms().next().unwrap();
        assert_eq!(atom.terms()[1], Term::constant("42"));
    }

    #[test]
    fn boolean_and_empty_body_queries() {
        let b = parse_query("b() <- R('a', 'b'), R('b', 'c')").unwrap();
        assert!(b.is_boolean());
        assert_eq!(b.total_atom_count(), 2);
        let t = parse_query("t() <- true.").unwrap();
        assert!(t.is_boolean());
        assert_eq!(t.total_atom_count(), 0);
    }

    #[test]
    fn relations_starting_with_true_are_ordinary_atoms() {
        // "true" is a keyword only on a word boundary; `trueness(x)` and
        // `true_edge(x, y)` are legal relation names per the grammar's NAME.
        let q = parse_query("q(x) <- trueness(x, x).").unwrap();
        assert_eq!(q.body_atoms().next().unwrap().relation(), "trueness");
        let q = parse_query("q(x, y) <- true_edge(x, y)").unwrap();
        assert_eq!(q.total_atom_count(), 1);
        // A relation literally named "true" still cannot follow the keyword
        // interpretation — `true(x)` is the keyword then trailing input.
        assert!(parse_query("q(x) <- true(x)").is_err());
    }

    #[test]
    fn zero_multiplicities_are_rejected() {
        // The grammar requires a positive multiplicity; silently dropping
        // the atom would change verdicts without a diagnostic.
        let err = parse_query("q(x) <- R^0(x, x)").unwrap_err();
        assert!(err.to_string().contains("multiplicity"), "{err}");
        let err = parse_program("q(x) <- S(x), R^0(x, x).").unwrap_err();
        assert!(err.message().contains("multiplicity"), "{err}");
        assert!(parse_query("q(x) <- R^1(x, x)").is_ok());
    }

    #[test]
    fn prolog_style_arrow_and_no_period() {
        let q = parse_query("q(x) :- R(x, x)").unwrap();
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn roundtrip_through_display() {
        // Display output re-parses to the same query.
        for q in [
            paper_examples::section2_query_q1(),
            paper_examples::section2_query_q2(),
            paper_examples::section2_query_q3(),
            paper_examples::section3_query_q1(),
            paper_examples::section3_query_q2(),
        ] {
            let reparsed = parse_query(&q.to_string()).unwrap();
            assert_eq!(reparsed, q, "round-trip failed for {q}");
        }
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_query("q(x) <- ").unwrap_err();
        assert!(err.to_string().contains("identifier"));
        let err = parse_query("q(x R(x)").unwrap_err();
        assert!(err.position() > 0);
        assert!(parse_query("q(x) - R(x)").is_err());
        assert!(parse_query("q(x) <- R(x, )").is_err());
        assert!(parse_query("q(x) <- R(x) extra").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("q(x) <- R^(x)").is_err());
        assert!(parse_query("q(x) <- R('unterminated)").is_err());
    }

    #[test]
    fn parses_programs() {
        let queries = parse_program(
            "% Section 2 containment pair\n\
             q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2).  # containee\n\
             q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)\n",
        )
        .unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0], paper_examples::section2_query_q1());
        assert_eq!(queries[1], paper_examples::section2_query_q2());
        // One line, two terminated queries (the CLI acceptance shape).
        let queries = parse_program("q(x) <- R^2(x, x). p(x) <- R(x, y), R(y, x).").unwrap();
        assert_eq!(queries.len(), 2);
        // Empty and comment-only programs are fine (and empty).
        assert_eq!(parse_program("").unwrap(), vec![]);
        assert_eq!(parse_program("  % nothing here\n# or here\n").unwrap(), vec![]);
    }

    #[test]
    fn program_queries_must_be_separated_by_periods() {
        let err = parse_program("q(x) <- R(x, x)\np(x) <- S(x, x).").unwrap_err();
        assert!(err.message().contains("expected '.'"), "{err}");
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 1);
    }

    #[test]
    fn program_errors_name_the_offending_line_and_column() {
        // Error on line 3: missing closing parenthesis in the head.
        let input = "% header comment\nq(x) <- R(x, x).\np(x <- R(x, x).\n";
        let err = parse_program(input).unwrap_err();
        assert_eq!(err.line(), 3);
        assert_eq!(err.column(), 5, "error should point at the '<' of line 3: {err}");
        let rendered = err.to_string();
        assert!(rendered.contains("line 3") && rendered.contains("column 5"), "{rendered}");

        // The same malformed text on line 1 reports line 1 — positions are
        // not cumulative across earlier successful queries.
        let err = parse_program("p(x <- R(x, x).").unwrap_err();
        assert_eq!((err.line(), err.column()), (1, 5));

        // Errors inside a comment-free region are unaffected by comment
        // blanking on earlier lines (offsets are preserved byte-for-byte).
        let err = parse_program("% a long comment línea\nq(x) <- R(x, ) .").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 14);
    }

    #[test]
    fn program_error_display_and_accessors() {
        let err = parse_program("q(x) <-").unwrap_err();
        assert!(err.line() == 1 && err.column() >= 8);
        assert!(!err.message().is_empty());
        let cloned = err.clone();
        assert_eq!(cloned, err);
    }

    #[test]
    fn parses_ucqs() {
        let ucq = parse_ucq("q1(x) <- R(x, x); q2(x) <- S(x, 'c')").unwrap();
        assert_eq!(ucq.disjuncts().len(), 2);
        let ucq2 = parse_ucq("q1(x) <- R(x, x)\nq2(x) <- S(x, 'c')\n").unwrap();
        assert_eq!(ucq2.disjuncts().len(), 2);
        assert!(parse_ucq("").is_err());
        assert!(parse_ucq("q1(x) <- R(x); q2(x, y) <- R(x, y)").is_err());
    }
}
