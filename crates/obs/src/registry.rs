//! The process-wide counter/gauge registry.
//!
//! Every instrumented event in the workspace increments one of the static
//! [`Counter`]s defined here, under a stable dotted name (`arith.small_hits`,
//! `lp.bareiss.pivots`, …). The registry is a **static table**: no runtime
//! registration, no locks on the hot path, one relaxed atomic add per event.
//! [`snapshot`] reads every cell at once; [`MetricsSnapshot::since`] turns
//! two snapshots into a delta, which is how the CLI reports per-command (and
//! `bench` per-run) numbers instead of process-lifetime totals.
//!
//! Counters carry a [`Stability`] class. `Deterministic` counters are a pure
//! function of the input stream and the selected algorithm — invariant
//! across `--jobs` and `--lp-route` — and may appear in byte-stable output.
//! `Volatile` counters depend on the LP route (the arith fast-path tallies,
//! the per-kernel pivot counts) or on thread scheduling (cache hit/miss
//! splits under racing workers, probe claims) and must never be emitted into
//! output that is pinned byte-identical across those knobs.

use core::sync::atomic::{AtomicU64, Ordering};

/// How a counter's value relates to the run configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stability {
    /// A pure function of (input, algorithm, semantics): byte-identical
    /// across `--jobs` and `--lp-route`. Safe to embed in deterministic
    /// output.
    Deterministic,
    /// Depends on the LP route or on thread scheduling; compare only
    /// statistically.
    Volatile,
}

/// The accumulation semantics of a registry cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Monotone event count; deltas between snapshots are meaningful.
    Counter,
    /// High-water mark updated with a relaxed `fetch_max`; snapshots report
    /// the current watermark, and deltas pass it through undifferenced.
    Gauge,
}

/// One named relaxed-atomic cell of the registry.
pub struct Counter {
    name: &'static str,
    stability: Stability,
    kind: Kind,
    help: &'static str,
    cell: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str, stability: Stability, kind: Kind, help: &'static str) -> Self {
        Counter { name, stability, kind, help, cell: AtomicU64::new(0) }
    }

    /// The stable dotted name (`engine.pairs_decided`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The stability class (see [`Stability`]).
    pub fn stability(&self) -> Stability {
        self.stability
    }

    /// Counter or gauge (see [`Kind`]).
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// A one-line description, surfaced by `docs/metrics.md`.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Adds `n` events (relaxed; the only ordering the whole registry uses).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Raises a gauge to at least `value` (relaxed `fetch_max`).
    #[inline]
    pub fn record_max(&self, value: u64) {
        self.cell.fetch_max(value, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets the cell to zero (benches and tests; production readers
    /// difference snapshots instead).
    pub fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

use Kind::{Counter as C, Gauge as G};
use Stability::{Deterministic as Det, Volatile as Vol};

/// Heap allocations observed by the counting-allocator harness.
pub static ALLOC_HEAP_ALLOCS: Counter = Counter::new(
    "alloc.heap.allocs",
    Vol,
    C,
    "heap allocations observed by the counting-allocator harness (zero when no counting \
     allocator is installed in the binary)",
);
/// Monomials whose exponents fit the inline cap.
pub static ALLOC_MONOMIAL_INLINE: Counter = Counter::new(
    "alloc.monomial.inline",
    Vol,
    C,
    "monomial exponent vectors stored inline on the stack (length within the inline cap)",
);
/// Monomials whose exponents spilled to the heap.
pub static ALLOC_MONOMIAL_SPILLS: Counter = Counter::new(
    "alloc.monomial.spills",
    Vol,
    C,
    "monomial exponent vectors that spilled to the heap (length past the inline cap)",
);
/// High-water mark of pooled row buffers held by one scratch.
pub static ALLOC_POOL_ROWS_HWM: Counter = Counter::new(
    "alloc.pool.rows.hwm",
    Vol,
    G,
    "high-water mark of recycled row buffers held by a single probe scratch's pools",
);
/// Scratch buffer acquisitions served from recycled capacity.
pub static ALLOC_SCRATCH_REUSES: Counter = Counter::new(
    "alloc.scratch.reuses",
    Vol,
    C,
    "probe decisions served by an already-warmed ProbeScratch (recycled buffer capacity)",
);
/// Scratch buffer acquisitions that had to allocate fresh.
pub static ALLOC_SCRATCH_SPILLS: Counter = Counter::new(
    "alloc.scratch.spills",
    Vol,
    C,
    "pooled-buffer requests the scratch pools could not serve from recycled capacity",
);
/// Rational ops that fell back to the limb representation.
pub static ARITH_BIG_FALLBACKS: Counter = Counter::new(
    "arith.big_fallbacks",
    Vol,
    C,
    "rational operations that fell back to the limb representation",
);
/// Integer kernel ops that fell back to the limb representation.
pub static ARITH_INT_BIG_FALLBACKS: Counter = Counter::new(
    "arith.int_big_fallbacks",
    Vol,
    C,
    "integer kernel operations that fell back to the limb representation",
);
/// Integer kernel ops served by the machine-word fast path.
pub static ARITH_INT_SMALL_HITS: Counter = Counter::new(
    "arith.int_small_hits",
    Vol,
    C,
    "integer kernel operations (exact division, gcd) served by the machine-word fast path",
);
/// Rational ops served by the machine-word fast path.
pub static ARITH_SMALL_HITS: Counter = Counter::new(
    "arith.small_hits",
    Vol,
    C,
    "rational operations served by the machine-word fast path",
);
/// Batch compilation-cache hits.
pub static CACHE_COMPILED_PAIR_HITS: Counter = Counter::new(
    "cache.compiled_pair.hits",
    Vol,
    C,
    "batch compilation-cache lookups answered by a cached CompiledPair",
);
/// Batch compilation-cache misses.
pub static CACHE_COMPILED_PAIR_MISSES: Counter = Counter::new(
    "cache.compiled_pair.misses",
    Vol,
    C,
    "batch compilation-cache lookups that compiled a fresh CompiledPair",
);
/// Probe compilations (cold `CompiledProbe` builds).
pub static CACHE_PROBE_COMPILED: Counter = Counter::new(
    "cache.probe.compiled",
    Vol,
    C,
    "cold CompiledProbe builds (memoised probe slots count only their first fill)",
);
/// Containment mappings enumerated during probe compilation.
pub static CONTAINMENT_MAPPINGS: Counter = Counter::new(
    "containment.mappings.enumerated",
    Vol,
    C,
    "containment mappings enumerated while assembling MPIs",
);
/// Probes decided (sequential loop and pool workers alike).
pub static CONTAINMENT_PROBES_DECIDED: Counter = Counter::new(
    "containment.probes.decided",
    Vol,
    C,
    "probe tuples decided (the parallel pool may legitimately decide fewer after an early \
     non-containment event)",
);
/// Batch jobs that failed.
pub static ENGINE_BATCH_FAILURES: Counter =
    Counter::new("engine.batch.failures", Det, C, "batch jobs that ended in a structured error");
/// Batch jobs emitted.
pub static ENGINE_BATCH_JOBS: Counter =
    Counter::new("engine.batch.jobs", Det, C, "batch jobs emitted (success or failure)");
/// High-water mark of the batch channel queue depth.
pub static ENGINE_BATCH_QUEUE_DEPTH_MAX: Counter = Counter::new(
    "engine.batch.queue_depth.max",
    Vol,
    G,
    "high-water mark of jobs in flight between the batch feeder and the workers",
);
/// High-water mark of the per-run worker claim spread.
pub static ENGINE_CLAIM_SPREAD_MAX: Counter = Counter::new(
    "engine.claim_spread.max",
    Vol,
    G,
    "high-water mark of the per-run claim spread (busiest minus idlest worker's claimed units)",
);
/// Pairs decided.
pub static ENGINE_PAIRS_DECIDED: Counter = Counter::new(
    "engine.pairs_decided",
    Det,
    C,
    "(containee, containing) pairs decided (equiv counts both directions)",
);
/// Probe indices claimed by pool workers.
pub static ENGINE_PROBES_CLAIMED: Counter = Counter::new(
    "engine.probes_claimed",
    Vol,
    C,
    "probe indices claimed by probe-pool workers (includes claims skipped past the cutoff)",
);
/// Unit chunks stolen from a pair another worker started.
pub static ENGINE_STEALS: Counter = Counter::new(
    "engine.steals",
    Vol,
    C,
    "unit chunks claimed from a pair that a different worker claimed first",
);
/// Work units claimed by scheduler workers.
pub static ENGINE_UNITS_CLAIMED: Counter = Counter::new(
    "engine.units_claimed",
    Vol,
    C,
    "(pair, probe-index) work units claimed by scheduler workers (includes units skipped past a \
     cutoff)",
);
/// Contained verdicts.
pub static ENGINE_VERDICTS_CONTAINED: Counter =
    Counter::new("engine.verdicts.contained", Det, C, "decisions that ended in 'contained'");
/// Not-contained verdicts.
pub static ENGINE_VERDICTS_NOT_CONTAINED: Counter = Counter::new(
    "engine.verdicts.not_contained",
    Det,
    C,
    "decisions that ended in 'not contained'",
);
/// Bareiss kernel pivots.
pub static LP_BAREISS_PIVOTS: Counter = Counter::new(
    "lp.bareiss.pivots",
    Vol,
    C,
    "pivot iterations of the fraction-free Bareiss phase-1 simplex",
);
/// LP feasibility decisions.
pub static LP_FEASIBILITY_CALLS: Counter = Counter::new(
    "lp.feasibility.calls",
    Vol,
    C,
    "strict-homogeneous-system feasibility decisions (one per probe reaching the LP)",
);
/// Fourier–Motzkin variable eliminations.
pub static LP_FM_ELIMINATIONS: Counter = Counter::new(
    "lp.fm.eliminations",
    Vol,
    C,
    "variables eliminated by the Fourier-Motzkin engine",
);
/// Rational simplex pivots.
pub static LP_SIMPLEX_PIVOTS: Counter = Counter::new(
    "lp.simplex.pivots",
    Vol,
    C,
    "pivot iterations of the exact rational phase-1 simplex",
);
/// Queries parsed.
pub static PARSE_QUERIES: Counter =
    Counter::new("parse.queries", Det, C, "datalog queries parsed from input sources");

/// Every registry cell, sorted by name (the sort is pinned by a test, so
/// snapshot iteration — and therefore every rendered counter block — is in
/// stable name order).
static COUNTERS: [&Counter; 30] = [
    &ALLOC_HEAP_ALLOCS,
    &ALLOC_MONOMIAL_INLINE,
    &ALLOC_MONOMIAL_SPILLS,
    &ALLOC_POOL_ROWS_HWM,
    &ALLOC_SCRATCH_REUSES,
    &ALLOC_SCRATCH_SPILLS,
    &ARITH_BIG_FALLBACKS,
    &ARITH_INT_BIG_FALLBACKS,
    &ARITH_INT_SMALL_HITS,
    &ARITH_SMALL_HITS,
    &CACHE_COMPILED_PAIR_HITS,
    &CACHE_COMPILED_PAIR_MISSES,
    &CACHE_PROBE_COMPILED,
    &CONTAINMENT_MAPPINGS,
    &CONTAINMENT_PROBES_DECIDED,
    &ENGINE_BATCH_FAILURES,
    &ENGINE_BATCH_JOBS,
    &ENGINE_BATCH_QUEUE_DEPTH_MAX,
    &ENGINE_CLAIM_SPREAD_MAX,
    &ENGINE_PAIRS_DECIDED,
    &ENGINE_PROBES_CLAIMED,
    &ENGINE_STEALS,
    &ENGINE_UNITS_CLAIMED,
    &ENGINE_VERDICTS_CONTAINED,
    &ENGINE_VERDICTS_NOT_CONTAINED,
    &LP_BAREISS_PIVOTS,
    &LP_FEASIBILITY_CALLS,
    &LP_FM_ELIMINATIONS,
    &LP_SIMPLEX_PIVOTS,
    &PARSE_QUERIES,
];

/// The full registry, in stable (sorted-by-name) order.
pub fn counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Looks a cell up by its dotted name.
pub fn counter(name: &str) -> Option<&'static Counter> {
    COUNTERS.binary_search_by(|c| c.name.cmp(name)).ok().map(|i| COUNTERS[i])
}

/// A point-in-time reading of every registry cell, aligned with
/// [`counters`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: Vec<u64>,
}

impl MetricsSnapshot {
    /// Per-cell deltas since `earlier` (saturating, so a concurrent
    /// [`reset`] cannot underflow). Gauges are high-water marks, not event
    /// counts: the delta passes the later watermark through undifferenced.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = COUNTERS
            .iter()
            .zip(&self.values)
            .zip(&earlier.values)
            .map(|((c, later), earlier)| match c.kind {
                Kind::Counter => later.saturating_sub(*earlier),
                Kind::Gauge => *later,
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Iterates `(cell, value)` in stable registry order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static Counter, u64)> + '_ {
        COUNTERS.iter().copied().zip(self.values.iter().copied())
    }

    /// The recorded value of the named cell.
    pub fn get(&self, name: &str) -> Option<u64> {
        COUNTERS.binary_search_by(|c| c.name.cmp(name)).ok().map(|i| self.values[i])
    }
}

/// Reads every cell at once.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot { values: COUNTERS.iter().map(|c| c.get()).collect() }
}

/// Resets every cell to zero (benches and tests; production readers
/// difference snapshots instead — in-process concurrent readers would see
/// each other's resets).
pub fn reset() {
    for c in COUNTERS {
        c.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_table_is_sorted_and_duplicate_free() {
        let names: Vec<&str> = counters().iter().map(|c| c.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "the registry table must be sorted by name, without repeats");
    }

    #[test]
    fn lookup_finds_every_cell() {
        for cell in counters() {
            assert!(std::ptr::eq(counter(cell.name()).unwrap(), *cell));
        }
        assert!(counter("no.such.counter").is_none());
    }

    #[test]
    fn snapshots_difference_counters_and_pass_gauges_through() {
        // Deltas of this test's own events: tests share the process, so
        // absolute values are off-limits.
        let before = snapshot();
        LP_SIMPLEX_PIVOTS.add(3);
        ENGINE_BATCH_QUEUE_DEPTH_MAX.record_max(u64::MAX);
        let delta = snapshot().since(&before);
        assert!(delta.get("lp.simplex.pivots").unwrap() >= 3);
        // The gauge reports the watermark itself, not a difference.
        assert_eq!(delta.get("engine.batch.queue_depth.max"), Some(u64::MAX));
        assert_eq!(delta.get("no.such.counter"), None);
    }

    #[test]
    fn names_follow_the_dotted_lowercase_convention() {
        for cell in counters() {
            assert!(
                cell.name().chars().all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{} breaks the naming convention",
                cell.name()
            );
            assert!(cell.name().contains('.'), "{} has no namespace", cell.name());
            assert!(!cell.help().is_empty());
        }
    }
}
