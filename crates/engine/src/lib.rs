//! # dioph-engine — parallel batch decision engine
//!
//! The decision procedures in `dioph-containment` decide one pair at a time,
//! one probe tuple at a time. Both loops are embarrassingly parallel — every
//! probe tuple of a pair is decided independently (Corollary 3.1), and every
//! pair of a workload stream is decided independently — so this crate owns
//! the machinery that exploits it with nothing beyond `std::thread` and
//! `std::sync::mpsc` (the build environment is offline; no rayon, no
//! crossbeam):
//!
//! Both fronts are served by **one scheduler** whose unit of work is a
//! **(pair, probe-index) claim** from a shared queue (the
//! [`dioph_cq::ProbeSpace`] makes probes randomly addressable, and
//! [`CompiledPair::probe_units`] is the claiming surface):
//!
//! * [`DecisionEngine::decide`] admits **one pair** and fans its probe
//!   units across a worker pool (capped at the unit count — `--jobs 8` on
//!   a 3-probe pair spawns 3 threads). Workers claim unit chunks with a
//!   relaxed atomic cursor, decide them with the exact same per-probe
//!   routine the sequential decider uses, and the merge keeps the event
//!   with the **lowest probe index** — so verdicts, counterexample bags
//!   and JSON certificates are bit-identical to a sequential run, for any
//!   thread count.
//! * [`DecisionEngine::run_batch`] is the streaming front-end: a feeder
//!   thread pulls [`Job`]s from an input iterator, parses + compiles them,
//!   and publishes every admitted pair's probe space into the same shared
//!   queue; workers pull unit chunks from *any* in-flight pair (a giant
//!   pair amid small ones is drained by the whole pool instead of starving
//!   one worker), and the collector emits [`Verdict`]s strictly in
//!   submission order while later jobs are still in flight. Compilation is
//!   amortised across the stream through a [`CompiledPair`] cache keyed by
//!   the pair's (name-normalised) text, so a stream that replays a pair
//!   reuses its containment-mapping enumeration.
//! * [`JobReader`] turns any `BufRead` (stdin, a file) into a stream of
//!   [`Job`]s without waiting for end of input, which is what lets
//!   `diophantus batch` answer pair 1 while pair 1000 is still being typed.
//!
//! Per-pair failures are values, not aborts: a [`Verdict`] carries either a
//! [`PairOutcome`] or a structured [`BatchError`], so a driver can implement
//! `--keep-going` by simply not stopping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod pool;

pub use batch::{BatchError, BatchStats, CompilationCache, Job, JobReader, PairOutcome, Verdict};

use dioph_containment::{
    Algorithm, BagContainment, BagContainmentDecider, CompiledPair, ContainmentError,
    FeasibilityEngine,
};
use dioph_cq::ConjunctiveQuery;

/// Configuration of a [`DecisionEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of worker threads (clamped to at least 1).
    pub jobs: usize,
    /// The decision algorithm every worker runs.
    pub algorithm: Algorithm,
    /// The LP feasibility engine behind the MPI-based algorithms.
    pub engine: FeasibilityEngine,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            algorithm: Algorithm::default(),
            engine: FeasibilityEngine::default(),
        }
    }
}

/// A parallel bag-containment decision engine.
///
/// Construct one per configuration and reuse it freely: the engine is
/// stateless between calls (each call builds its own scoped worker pool, so
/// no threads linger when the engine is idle).
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionEngine {
    config: EngineConfig,
}

impl DecisionEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        DecisionEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The equivalent sequential decider (same algorithm, same LP engine).
    pub fn sequential_decider(&self) -> BagContainmentDecider {
        BagContainmentDecider::new(self.config.algorithm).with_engine(self.config.engine)
    }

    /// Decides `containee ⊑b containing`, fanning probe tuples across the
    /// configured number of worker threads. The verdict — including the
    /// counterexample bag, when containment fails — is bit-identical to
    /// [`BagContainmentDecider::decide`] for every `jobs` value.
    ///
    /// # Errors
    /// The same errors as [`BagContainmentDecider::decide`].
    pub fn decide(
        &self,
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
    ) -> Result<BagContainment, ContainmentError> {
        let pair = CompiledPair::new(containee.clone(), containing.clone())?;
        self.decide_pair(&pair)
    }

    /// Decides a pre-compiled pair, reusing its compilation cache.
    ///
    /// # Errors
    /// The same errors as [`BagContainmentDecider::decide`].
    pub fn decide_pair(&self, pair: &CompiledPair) -> Result<BagContainment, ContainmentError> {
        let decider = self.sequential_decider();
        // The most-general-probe algorithm decides a single probe — there is
        // nothing to fan out — and a single worker is the sequential loop.
        if self.config.jobs <= 1 || self.config.algorithm == Algorithm::MostGeneralProbe {
            return decider.decide_pair(pair);
        }
        pool::decide_pair_parallel(&decider, pair, self.config.jobs)
    }

    /// Decides bag equivalence (containment in both directions), each
    /// direction probe-parallel. Mirrors
    /// [`bag_equivalence`](dioph_containment::bag_equivalence): the forward
    /// direction is decided (and its errors surface) first.
    ///
    /// # Errors
    /// The same errors as [`BagContainmentDecider::decide`], for either
    /// direction.
    pub fn equivalence(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> Result<(BagContainment, BagContainment), ContainmentError> {
        let forward = self.decide(q1, q2)?;
        let backward = self.decide(q2, q1)?;
        Ok((forward, backward))
    }

    /// Runs a streaming batch: pulls [`Job`]s from `jobs` as they become
    /// available, decides them on the worker pool, and calls `emit` with
    /// each [`Verdict`] strictly in submission order (verdict `k` is emitted
    /// as soon as jobs `1..=k` have finished, while later jobs are still in
    /// flight). `emit` returns whether to continue: `false` stops the feeder
    /// and discards in-flight work, which is how a driver aborts on the
    /// first error when resilience was not requested. One caveat: the feeder
    /// notices the stop only between items, so if `jobs` is blocked waiting
    /// for more input (an idle interactive stream), the call returns once
    /// that read yields or the stream closes — drivers of interactive
    /// streams should therefore report failures *before* returning `false`,
    /// as the CLI does. Returns throughput statistics, including how often
    /// the shared compilation cache was hit.
    pub fn run_batch<I, F>(&self, jobs: I, emit: F) -> BatchStats
    where
        I: Iterator<Item = Job> + Send,
        F: FnMut(Verdict) -> bool,
    {
        batch::run_batch(self, jobs, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    fn engines(jobs: usize) -> Vec<DecisionEngine> {
        [
            Algorithm::MostGeneralProbe,
            Algorithm::AllProbes,
            Algorithm::GuessCheck { budget: 2_000_000 },
        ]
        .into_iter()
        .map(|algorithm| {
            DecisionEngine::new(EngineConfig {
                jobs,
                algorithm,
                engine: FeasibilityEngine::default(),
            })
        })
        .collect()
    }

    #[test]
    fn parallel_verdicts_match_sequential_on_the_paper_examples() {
        use dioph_cq::paper_examples;
        let cases = [
            (paper_examples::section2_query_q1(), paper_examples::section2_query_q2()),
            (paper_examples::section2_query_q2(), paper_examples::section2_query_q1()),
            (paper_examples::section3_query_q1(), paper_examples::section3_query_q2()),
            (q("q(x) <- R(x, x), S(x)"), q("p(x) <- R(x, x)")),
        ];
        for (containee, containing) in cases {
            for jobs in [1usize, 2, 4] {
                for engine in engines(jobs) {
                    let sequential =
                        engine.sequential_decider().decide(&containee, &containing).unwrap();
                    let parallel = engine.decide(&containee, &containing).unwrap();
                    assert_eq!(
                        parallel,
                        sequential,
                        "jobs={jobs} {:?} must match sequential",
                        engine.config().algorithm
                    );
                    assert_eq!(parallel.to_json(), sequential.to_json());
                }
            }
        }
    }

    #[test]
    fn fraction_free_lp_route_is_verdict_identical_through_the_pool() {
        // The Bareiss and Auto engines must be indistinguishable from the
        // rational simplex through the probe-parallel pool: same verdicts,
        // same certificates, for every thread count.
        use dioph_cq::paper_examples;
        let cases = [
            (paper_examples::section3_query_q1(), paper_examples::section3_query_q2()),
            (q("q(x) <- R(x, x), S(x)"), q("p(x) <- R(x, x)")),
            (q("q(x) <- R^2(x, x)"), q("p(x) <- R(x, y), R(y, x)")),
        ];
        for (containee, containing) in cases {
            let reference = DecisionEngine::new(EngineConfig {
                jobs: 1,
                algorithm: Algorithm::AllProbes,
                engine: FeasibilityEngine::Simplex,
            })
            .decide(&containee, &containing)
            .unwrap();
            for jobs in [1usize, 2, 4] {
                for lp in [FeasibilityEngine::Bareiss, FeasibilityEngine::Auto] {
                    let engine = DecisionEngine::new(EngineConfig {
                        jobs,
                        algorithm: Algorithm::AllProbes,
                        engine: lp,
                    });
                    let routed = engine.decide(&containee, &containing).unwrap();
                    assert_eq!(routed.to_json(), reference.to_json(), "jobs={jobs} {lp:?}");
                }
            }
        }
    }

    #[test]
    fn equivalence_matches_the_sequential_helper() {
        use dioph_cq::paper_examples;
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let engine = DecisionEngine::new(EngineConfig { jobs: 4, ..Default::default() });
        let (forward, backward) = engine.equivalence(&q1, &q2).unwrap();
        let (sf, sb) = dioph_containment::bag_equivalence(&q1, &q2).unwrap();
        assert_eq!(forward, sf);
        assert_eq!(backward, sb);
    }

    #[test]
    fn errors_propagate_from_either_direction() {
        let engine = DecisionEngine::new(EngineConfig { jobs: 2, ..Default::default() });
        let pf = q("q(x) <- R(x, x)");
        let not_pf = q("p(x) <- R(x, y), R(y, y)");
        assert!(engine.decide(&not_pf, &pf).is_err());
        assert!(engine.equivalence(&pf, &not_pf).is_err());
    }

    #[test]
    fn budget_errors_are_deterministic_across_thread_counts() {
        use dioph_cq::paper_examples;
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        for jobs in [1usize, 2, 4] {
            let engine = DecisionEngine::new(EngineConfig {
                jobs,
                algorithm: Algorithm::GuessCheck { budget: 3 },
                engine: FeasibilityEngine::default(),
            });
            let err = engine.decide(&q1, &q2).unwrap_err();
            assert!(matches!(err, ContainmentError::BudgetExceeded { budget: 3 }), "jobs={jobs}");
        }
    }
}
