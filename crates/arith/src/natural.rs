//! Arbitrary-precision natural numbers (unsigned integers).
//!
//! [`Natural`] is a **hybrid** representation: values that fit a machine word
//! are stored inline (no heap allocation), and only values above `u64::MAX`
//! promote to little-endian 64-bit limbs. The representation is canonical —
//! the limb form is used *only* for values of at least two limbs — so the
//! derived equality and hashing are value equality, and every constructor
//! re-normalises. All arithmetic is exact; subtraction of a larger number
//! from a smaller one is reported through [`Natural::checked_sub`] returning
//! `None` (the `Sub` operator panics, mirroring the standard library
//! behaviour for unsigned overflow).
//!
//! The small path covers the quantities the bag-containment pipeline
//! manipulates most of the time (Equation-2 multiplicities, MPI coefficients,
//! simplex pivots); the big path favours clarity and correctness over raw
//! speed: schoolbook multiplication and Knuth's Algorithm D for division
//! (run over 32-bit half-limbs so all intermediate quotient estimates fit in
//! `u64`).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use core::str::FromStr;

/// The internal representation. Invariant (canonical form): `Big` is used
/// only for values that do **not** fit in a `u64`, i.e. with at least two
/// little-endian limbs and no trailing zero limb. This makes the derived
/// `PartialEq`/`Hash` agree with value equality.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// A value `<= u64::MAX`, stored inline.
    Small(u64),
    /// A value `> u64::MAX`: little-endian limbs, `len() >= 2`, no trailing
    /// zero limb.
    Big(Vec<u64>),
}

/// An arbitrary-precision natural number (non-negative integer).
///
/// # Examples
///
/// ```
/// use dioph_arith::Natural;
///
/// let a = Natural::from(10u64).pow(30);
/// let b = Natural::from(2u64).pow(64);
/// assert!(a > b);
/// assert_eq!(&(&a * &b) / &b, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Natural(Repr);

impl Default for Natural {
    fn default() -> Self {
        Natural::zero()
    }
}

impl Natural {
    /// The natural number zero.
    pub const fn zero() -> Self {
        Natural(Repr::Small(0))
    }

    /// The natural number one.
    pub const fn one() -> Self {
        Natural(Repr::Small(1))
    }

    /// Builds a natural from little-endian limbs, normalising trailing zeros
    /// (and demoting to the inline form when the value fits a word).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Natural(Repr::Small(0)),
            1 => Natural(Repr::Small(limbs[0])),
            _ => Natural(Repr::Big(limbs)),
        }
    }

    /// Returns the little-endian limb slice (no trailing zeros; empty for 0).
    pub fn limbs(&self) -> &[u64] {
        match &self.0 {
            Repr::Small(0) => &[],
            Repr::Small(v) => core::slice::from_ref(v),
            Repr::Big(limbs) => limbs,
        }
    }

    /// The inline value, if this natural is on the small path.
    fn small(&self) -> Option<u64> {
        match self.0 {
            Repr::Small(v) => Some(v),
            Repr::Big(_) => None,
        }
    }

    /// `true` iff this number is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// `true` iff this number is one.
    pub fn is_one(&self) -> bool {
        matches!(self.0, Repr::Small(1))
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bit_len(&self) -> usize {
        let limbs = self.limbs();
        match limbs.last() {
            None => 0,
            Some(&top) => (limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs().get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// `true` iff the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs().first().is_none_or(|&l| l & 1 == 0)
    }

    /// Converts to `u64` if the value fits (always on the small path, by the
    /// canonical-representation invariant).
    pub fn to_u64(&self) -> Option<u64> {
        self.small()
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs() {
            [] => Some(0),
            [lo] => Some(*lo as u128),
            [lo, hi] => Some((*hi as u128) << 64 | *lo as u128),
            _ => None,
        }
    }

    /// Converts to `usize` if the value fits.
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Approximate conversion to `f64` (may lose precision, saturates to
    /// `f64::INFINITY` for huge values). Useful only for reporting.
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs().iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }

    /// Builds the canonical form of a 128-bit value.
    fn from_u128_value(v: u128) -> Natural {
        if v <= u64::MAX as u128 {
            Natural(Repr::Small(v as u64))
        } else {
            Natural(Repr::Big(vec![v as u64, (v >> 64) as u64]))
        }
    }

    /// Addition producing a new value.
    fn add_impl(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &x) in long.iter().enumerate() {
            let y = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Subtraction `a - b`; returns `None` if `b > a`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if let (Some(a), Some(b)) = (self.small(), other.small()) {
            return a.checked_sub(b).map(|d| Natural(Repr::Small(d)));
        }
        if self < other {
            return None;
        }
        let a = self.limbs();
        let b = other.limbs();
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &x) in a.iter().enumerate() {
            let y = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = x.overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(Natural::from_limbs(out))
    }

    /// Schoolbook multiplication.
    fn mul_impl(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Multiplies by a single `u64` in place.
    pub fn mul_assign_u64(&mut self, m: u64) {
        match &mut self.0 {
            Repr::Small(v) => {
                let wide = (*v as u128) * (m as u128);
                *self = Natural::from_u128_value(wide);
            }
            Repr::Big(limbs) => {
                if m == 0 {
                    *self = Natural::zero();
                    return;
                }
                let mut carry = 0u128;
                for limb in limbs.iter_mut() {
                    let cur = (*limb as u128) * (m as u128) + carry;
                    *limb = cur as u64;
                    carry = cur >> 64;
                }
                if carry != 0 {
                    limbs.push(carry as u64);
                }
            }
        }
    }

    /// Adds a single `u64` in place.
    pub fn add_assign_u64(&mut self, a: u64) {
        match &mut self.0 {
            Repr::Small(v) => {
                let wide = (*v as u128) + (a as u128);
                *self = Natural::from_u128_value(wide);
            }
            Repr::Big(limbs) => {
                let mut carry = a;
                let mut i = 0;
                while carry != 0 {
                    if i == limbs.len() {
                        limbs.push(carry);
                        return;
                    }
                    let (s, c) = limbs[i].overflowing_add(carry);
                    limbs[i] = s;
                    carry = c as u64;
                    i += 1;
                }
            }
        }
    }

    /// Divides by a single non-zero `u64`, returning `(quotient, remainder)`.
    pub fn div_rem_u64(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        if let Some(v) = self.small() {
            return (Natural(Repr::Small(v / d)), v % d);
        }
        let limbs = self.limbs();
        let mut out = vec![0u64; limbs.len()];
        let mut rem = 0u128;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 64) | limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Natural::from_limbs(out), rem as u64)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and `remainder < divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        assert!(!divisor.is_zero(), "division by zero");
        if let (Some(a), Some(b)) = (self.small(), divisor.small()) {
            return (Natural(Repr::Small(a / b)), Natural(Repr::Small(a % b)));
        }
        if self < divisor {
            return (Natural::zero(), self.clone());
        }
        if let Some(d) = divisor.small() {
            let (q, r) = self.div_rem_u64(d);
            return (q, Natural::from(r));
        }
        // Knuth Algorithm D over 32-bit half-limbs so quotient estimation
        // fits comfortably in u64 arithmetic.
        let u = to_half_limbs(self.limbs());
        let v = to_half_limbs(divisor.limbs());
        let (q32, r32) = knuth_div(&u, &v);
        (Natural::from_limbs(from_half_limbs(&q32)), Natural::from_limbs(from_half_limbs(&r32)))
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, mut exp: u64) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Greatest common divisor (binary GCD; `gcd(0, x) = x`).
    pub fn gcd(&self, other: &Natural) -> Natural {
        if let (Some(a), Some(b)) = (self.small(), other.small()) {
            return Natural(Repr::Small(gcd_u64(a, b)));
        }
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let shift_a = a.trailing_zeros();
        let shift_b = b.trailing_zeros();
        let shift = shift_a.min(shift_b);
        a = &a >> shift_a;
        b = &b >> shift_b;
        loop {
            // Once both operands have shed their high limbs, finish on the
            // machine-word path instead of looping limb subtractions.
            if let (Some(sa), Some(sb)) = (a.small(), b.small()) {
                return &Natural(Repr::Small(gcd_u64(sa, sb))) << shift;
            }
            debug_assert!(!a.is_even() && !b.is_even());
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a by construction");
            if b.is_zero() {
                return &a << shift;
            }
            b = &b >> b.trailing_zeros();
        }
    }

    /// Least common multiple; `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &Natural) -> Natural {
        if self.is_zero() || other.is_zero() {
            return Natural::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }

    /// Number of trailing zero bits (zero input returns 0).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &limb) in self.limbs().iter().enumerate() {
            if limb != 0 {
                return i * 64 + limb.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Parses a decimal string (optionally with `_` separators).
    pub fn from_decimal_str(s: &str) -> Result<Natural, ParseNaturalError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseNaturalError::Empty);
        }
        let mut out = Natural::zero();
        let mut seen = false;
        for ch in s.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch.to_digit(10).ok_or(ParseNaturalError::InvalidDigit(ch))? as u64;
            out.mul_assign_u64(10);
            out.add_assign_u64(d);
            seen = true;
        }
        if !seen {
            return Err(ParseNaturalError::Empty);
        }
        Ok(out)
    }

    /// Renders the value as a decimal string.
    pub fn to_decimal_string(&self) -> String {
        if let Some(v) = self.small() {
            return v.to_string();
        }
        // Peel 19 decimal digits at a time (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(&chunk.to_string());
            } else {
                out.push_str(&format!("{chunk:019}"));
            }
        }
        out
    }
}

/// Binary GCD on machine words (`gcd(0, x) = x`); shared with
/// [`crate::Integer::gcd`]'s small path.
pub(crate) fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Error produced when parsing a [`Natural`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNaturalError {
    /// The input contained no digits.
    Empty,
    /// The input contained a non-decimal-digit character.
    InvalidDigit(char),
}

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNaturalError::Empty => write!(f, "empty natural-number literal"),
            ParseNaturalError::InvalidDigit(c) => {
                write!(f, "invalid digit {c:?} in natural-number literal")
            }
        }
    }
}

impl std::error::Error for ParseNaturalError {}

fn to_half_limbs(limbs: &[u64]) -> Vec<u32> {
    let mut out = Vec::with_capacity(limbs.len() * 2);
    for &l in limbs {
        out.push(l as u32);
        out.push((l >> 32) as u32);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn from_half_limbs(half: &[u32]) -> Vec<u64> {
    let mut out = Vec::with_capacity(half.len().div_ceil(2));
    let mut i = 0;
    while i < half.len() {
        let lo = half[i] as u64;
        let hi = half.get(i + 1).copied().unwrap_or(0) as u64;
        out.push(lo | (hi << 32));
        i += 2;
    }
    out
}

/// Knuth Algorithm D on 32-bit digits. Requires `v.len() >= 2` and `u >= v`
/// element-wise comparison not required (handled by the caller for the
/// single-digit and `u < v` cases). Returns `(quotient, remainder)` as
/// normalised half-limb vectors.
fn knuth_div(u: &[u32], v: &[u32]) -> (Vec<u32>, Vec<u32>) {
    const BASE: u64 = 1 << 32;
    let n = v.len();
    let m = u.len() - n;
    debug_assert!(n >= 2);

    // D1: normalise so the top digit of v is >= BASE/2.
    let shift = v[n - 1].leading_zeros();
    let vn = shl_digits(v, shift);
    let mut un = shl_digits(u, shift);
    un.resize(u.len() + 1, 0); // extra top digit

    let mut q = vec![0u32; m + 1];

    // D2..D7 main loop.
    for j in (0..=m).rev() {
        // D3: estimate q_hat.
        let top = (un[j + n] as u64) * BASE + un[j + n - 1] as u64;
        let mut q_hat = top / vn[n - 1] as u64;
        let mut r_hat = top % vn[n - 1] as u64;
        while q_hat >= BASE || q_hat * vn[n - 2] as u64 > r_hat * BASE + un[j + n - 2] as u64 {
            q_hat -= 1;
            r_hat += vn[n - 1] as u64;
            if r_hat >= BASE {
                break;
            }
        }
        // D4: multiply and subtract.
        let mut borrow: i64 = 0;
        let mut carry: u64 = 0;
        for i in 0..n {
            let p = q_hat * vn[i] as u64 + carry;
            carry = p >> 32;
            let sub = (un[i + j] as i64) - ((p & 0xFFFF_FFFF) as i64) + borrow;
            un[i + j] = sub as u32;
            borrow = sub >> 32;
        }
        let sub = (un[j + n] as i64) - (carry as i64) + borrow;
        un[j + n] = sub as u32;
        borrow = sub >> 32;

        // D5/D6: if we subtracted too much, add back.
        if borrow < 0 {
            q_hat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let s = un[i + j] as u64 + vn[i] as u64 + carry;
                un[i + j] = s as u32;
                carry = s >> 32;
            }
            un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
        }
        q[j] = q_hat as u32;
    }

    // D8: denormalise remainder.
    let rem = shr_digits(&un[..n], shift);
    let mut q_norm = q;
    while q_norm.last() == Some(&0) {
        q_norm.pop();
    }
    (q_norm, rem)
}

fn shl_digits(d: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return d.to_vec();
    }
    let mut out = Vec::with_capacity(d.len() + 1);
    let mut carry = 0u32;
    for &x in d {
        out.push((x << shift) | carry);
        carry = x >> (32 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_digits(d: &[u32], shift: u32) -> Vec<u32> {
    let mut out = vec![0u32; d.len()];
    if shift == 0 {
        out.copy_from_slice(d);
    } else {
        for i in 0..d.len() {
            let hi = if i + 1 < d.len() { d[i + 1] << (32 - shift) } else { 0 };
            out[i] = (d[i] >> shift) | hi;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {
        $(impl From<$t> for Natural {
            fn from(v: $t) -> Self {
                Natural(Repr::Small(v as u64))
            }
        })*
    };
}

impl_from_unsigned!(u8, u16, u32, u64);

impl From<usize> for Natural {
    fn from(v: usize) -> Self {
        Natural(Repr::Small(v as u64))
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_u128_value(v)
    }
}

impl FromStr for Natural {
    type Err = ParseNaturalError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Natural::from_decimal_str(s)
    }
}

// ---------------------------------------------------------------------------
// Ordering and formatting
// ---------------------------------------------------------------------------

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Canonical form: Big is always at least two limbs, i.e. > u64.
            (Repr::Small(_), Repr::Big(_)) => Ordering::Less,
            (Repr::Big(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(a), Repr::Big(b)) => match a.len().cmp(&b.len()) {
                Ordering::Equal => {
                    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                        match x.cmp(y) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    Ordering::Equal
                }
                ord => ord,
            },
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal_string())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural({})", self.to_decimal_string())
    }
}

// ---------------------------------------------------------------------------
// Operator implementations (owned and borrowed forms)
// ---------------------------------------------------------------------------

impl Add for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            // u64 + u64 always fits u128; promotion happens on demand.
            return Natural::from_u128_value(a as u128 + b as u128);
        }
        Natural::from_limbs(Natural::add_impl(self.limbs(), rhs.limbs()))
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        &self + &rhs
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Natural {
    fn add_assign(&mut self, rhs: Natural) {
        *self += &rhs;
    }
}

impl Sub for &Natural {
    type Output = Natural;
    fn sub(self, rhs: &Natural) -> Natural {
        self.checked_sub(rhs).expect("Natural subtraction underflow")
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(self, rhs: Natural) -> Natural {
        &self - &rhs
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = &*self - rhs;
    }
}

impl Mul for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        if let (Some(a), Some(b)) = (self.small(), rhs.small()) {
            // u64 × u64 always fits u128; promotion happens on demand.
            return Natural::from_u128_value(a as u128 * b as u128);
        }
        Natural::from_limbs(Natural::mul_impl(self.limbs(), rhs.limbs()))
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = &*self * rhs;
    }
}

impl Div for &Natural {
    type Output = Natural;
    fn div(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).0
    }
}

impl Div for Natural {
    type Output = Natural;
    fn div(self, rhs: Natural) -> Natural {
        &self / &rhs
    }
}

impl Rem for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Rem for Natural {
    type Output = Natural;
    fn rem(self, rhs: Natural) -> Natural {
        &self % &rhs
    }
}

impl Shl<usize> for &Natural {
    type Output = Natural;
    fn shl(self, shift: usize) -> Natural {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        if let Some(v) = self.small() {
            if shift < 64 && (v >> (64 - shift)) == 0 {
                return Natural(Repr::Small(v << shift));
            }
        }
        self.shl_general(shift)
    }
}

impl Natural {
    /// Limb-level left shift (the general path of `<<`).
    fn shl_general(&self, shift: usize) -> Natural {
        if shift == 0 {
            return self.clone();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let src = self.limbs();
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            let mut carry = 0u64;
            for &l in src {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Natural::from_limbs(out)
    }
}

impl Shr<usize> for &Natural {
    type Output = Natural;
    fn shr(self, shift: usize) -> Natural {
        if let Some(v) = self.small() {
            return Natural(Repr::Small(if shift >= 64 { 0 } else { v >> shift }));
        }
        let limbs = self.limbs();
        let limb_shift = shift / 64;
        if limb_shift >= limbs.len() {
            return Natural::zero();
        }
        let bit_shift = shift % 64;
        let src = &limbs[limb_shift..];
        let mut out = vec![0u64; src.len()];
        if bit_shift == 0 {
            out.copy_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() { src[i + 1] << (64 - bit_shift) } else { 0 };
                out[i] = (src[i] >> bit_shift) | hi;
            }
        }
        Natural::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one_are_canonical() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert_eq!(Natural::from(0u64), Natural::zero());
        assert_eq!(Natural::from_limbs(vec![0, 0, 0]), Natural::zero());
        assert_eq!(Natural::from_limbs(vec![1, 0, 0]), Natural::one());
    }

    #[test]
    fn representation_is_canonical_across_the_boundary() {
        // One-limb values constructed through the limb door must compare and
        // hash equal to the inline form.
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Natural::from_limbs(vec![v]), Natural::from(v));
            assert_eq!(Natural::from_limbs(vec![v, 0, 0]), Natural::from(v));
        }
        // Values just over the boundary must be on the limb path (two limbs).
        let big = nat(u64::MAX as u128 + 1);
        assert_eq!(big.limbs().len(), 2);
        assert_eq!(big.to_u64(), None);
        // Arithmetic that shrinks a value back under the boundary demotes it.
        let shrunk = &big - &nat(1);
        assert_eq!(shrunk.limbs().len(), 1);
        assert_eq!(shrunk.to_u64(), Some(u64::MAX));
        assert_eq!(shrunk, nat(u64::MAX as u128));
    }

    #[test]
    fn addition_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (u64::MAX as u128, 1),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 100, 1 << 99),
        ];
        for (a, b) in cases {
            assert_eq!(&nat(a) + &nat(b), nat(a + b), "{a} + {b}");
        }
    }

    #[test]
    fn subtraction_matches_u128() {
        let cases =
            [(5u128, 3u128), (u64::MAX as u128 + 5, 6), (1 << 100, 1), ((1 << 100) + 7, 1 << 100)];
        for (a, b) in cases {
            assert_eq!(&nat(a) - &nat(b), nat(a - b), "{a} - {b}");
        }
        assert_eq!(nat(3).checked_sub(&nat(5)), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = &nat(1) - &nat(2);
    }

    #[test]
    fn multiplication_matches_u128() {
        let cases = [
            (0u128, 17u128),
            (1, 1),
            (u64::MAX as u128, u64::MAX as u128),
            (123456789, 987654321),
            (1 << 63, 1 << 63),
        ];
        for (a, b) in cases {
            assert_eq!(&nat(a) * &nat(b), nat(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn large_multiplication_and_division_roundtrip() {
        let a = Natural::from(123_456_789_012_345_678_901_234_567_890u128);
        let b = Natural::from(987_654_321_098_765_432_109_876_543_210u128);
        let prod = &a * &b;
        let (q, r) = prod.div_rem(&b);
        assert_eq!(q, a);
        assert!(r.is_zero());
        let prod_plus = &prod + &Natural::from(42u64);
        let (q2, r2) = prod_plus.div_rem(&b);
        assert_eq!(q2, a);
        assert_eq!(r2, Natural::from(42u64));
    }

    #[test]
    fn division_by_single_limb() {
        let a = Natural::from(1_000_000_000_000_000_000_000_000u128);
        let (q, r) = a.div_rem(&Natural::from(7u64));
        assert_eq!(&(&q * &Natural::from(7u64)) + &r, a);
        assert!(r < Natural::from(7u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = nat(5).div_rem(&Natural::zero());
    }

    #[test]
    fn division_smaller_than_divisor() {
        let (q, r) = nat(5).div_rem(&nat(100));
        assert!(q.is_zero());
        assert_eq!(r, nat(5));
    }

    #[test]
    fn knuth_division_add_back_case() {
        // Construct a case known to trigger the D6 add-back branch:
        // u = BASE^2 * (BASE - 1), v = BASE^2 - 1 over 32-bit digits.
        let base = Natural::from(1u128 << 32);
        let u = &base.pow(2) * &(&base - &Natural::one());
        let v = &base.pow(2) - &Natural::one();
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn pow_matches_u128() {
        assert_eq!(nat(2).pow(10), nat(1024));
        assert_eq!(nat(3).pow(0), nat(1));
        assert_eq!(nat(0).pow(0), nat(1), "0^0 = 1 by convention");
        assert_eq!(nat(0).pow(5), nat(0));
        assert_eq!(nat(10).pow(30).to_decimal_string(), "1000000000000000000000000000000");
    }

    #[test]
    fn gcd_and_lcm() {
        assert_eq!(nat(12).gcd(&nat(18)), nat(6));
        assert_eq!(nat(0).gcd(&nat(7)), nat(7));
        assert_eq!(nat(7).gcd(&nat(0)), nat(7));
        assert_eq!(nat(17).gcd(&nat(13)), nat(1));
        assert_eq!(nat(12).lcm(&nat(18)), nat(36));
        assert_eq!(nat(0).lcm(&nat(3)), nat(0));
        let a = nat(1 << 100);
        let b = nat(3 * (1 << 50));
        assert_eq!(a.gcd(&b), nat(1 << 50));
    }

    #[test]
    fn gcd_mixed_small_big_operands() {
        // Exercise the mixed path: one operand beyond u64, one inside.
        let big = nat((1u128 << 90) * 3);
        let small = nat(1 << 20);
        assert_eq!(big.gcd(&small), nat(1 << 20));
        assert_eq!(small.gcd(&big), nat(1 << 20));
        let odd_big = &nat(1 << 100) + &nat(1); // odd, > u64
        assert_eq!(odd_big.gcd(&nat(1)), nat(1));
    }

    #[test]
    fn shifts() {
        assert_eq!(&nat(1) << 100, nat(1 << 100));
        assert_eq!(&nat(1 << 100) >> 100, nat(1));
        assert_eq!(&nat(0b1011) << 3, nat(0b1011000));
        assert_eq!(&nat(0b1011000) >> 3, nat(0b1011));
        assert_eq!(&nat(5) >> 200, Natural::zero());
        // Shifts that cross the word boundary in both directions.
        assert_eq!(&nat(u64::MAX as u128) << 1, nat((u64::MAX as u128) << 1));
        assert_eq!(&nat(1) << 63, nat(1 << 63));
        assert_eq!(&nat(1) << 64, nat(1 << 64));
        assert_eq!(&nat(1 << 64) >> 1, nat(1 << 63));
        assert_eq!(&nat(3) << 126, nat(3 << 126));
    }

    #[test]
    fn bit_accessors() {
        let x = nat(0b1010);
        assert!(!x.bit(0));
        assert!(x.bit(1));
        assert!(!x.bit(2));
        assert!(x.bit(3));
        assert!(!x.bit(64));
        assert_eq!(x.bit_len(), 4);
        assert_eq!(Natural::zero().bit_len(), 0);
        assert_eq!(nat(1 << 127).bit_len(), 128);
        assert_eq!(nat(6).trailing_zeros(), 1);
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            let n: Natural = s.parse().unwrap();
            assert_eq!(n.to_decimal_string(), s);
        }
        assert_eq!("1_000".parse::<Natural>().unwrap(), nat(1000));
        assert!("".parse::<Natural>().is_err());
        assert!("12x".parse::<Natural>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(nat(5) < nat(6));
        assert!(nat(1 << 100) > nat(u64::MAX as u128));
        assert_eq!(nat(77).cmp(&nat(77)), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(nat(42).to_u64(), Some(42));
        assert_eq!(nat(1 << 100).to_u64(), None);
        assert_eq!(nat(1 << 100).to_u128(), Some(1 << 100));
        assert_eq!(Natural::from(3u8), nat(3));
        assert_eq!(Natural::from(3usize), nat(3));
        assert!((nat(1 << 80).to_f64_lossy() - (1u128 << 80) as f64).abs() < 1e10);
    }
}
