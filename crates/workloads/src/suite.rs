//! Named, seed-reproducible workload suites.
//!
//! This is the generator plumbing behind `diophantus gen`: every family of
//! query pairs used by the experiments (E4/E5/E6/E9) is addressable through
//! one [`WorkloadKind`] value, and [`generate_pairs`] expands a kind into a
//! concrete list of [`WorkloadPair`]s. Generation is **deterministic**: the
//! same `(kind, count, seed)` triple always produces byte-for-byte identical
//! pairs (random kinds draw from a single `StdRng` stream seeded with
//! `seed`; deterministic sweeps ignore the seed entirely).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dioph_cq::{Atom, ConjunctiveQuery, Term};

use crate::graphs::Graph;
use crate::joins::{chain_pair, clique_pair, star_pair};
use crate::random::{inflated_pair, specialization_pair, QueryShape};
use crate::threecol::three_colorability_instance;

/// A generated `(containee, containing)` pair with a human-readable label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkloadPair {
    /// Short description of how the pair was built (family and parameters).
    pub label: String,
    /// The containee (left-hand side of `⊑b`), projection-free.
    pub containee: ConjunctiveQuery,
    /// The containing query (right-hand side of `⊑b`).
    pub containing: ConjunctiveQuery,
}

/// The workload families `diophantus gen` can emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// Specialisation pairs `(σ(q), q)` — bag-contained by construction
    /// (the Section 2 observation; the E6/E9 "contained" workload family).
    Specialization {
        /// Number of body atom occurrences of the containing query.
        atoms: usize,
    },
    /// Specialisation pairs with one multiplicity bumped on the containee —
    /// usually **not** contained, and every failure carries a witness bag.
    Inflated {
        /// Number of body atom occurrences of the containing query.
        atoms: usize,
    },
    /// The exact E6/E9 benchmark shape (two binary relations, two head and
    /// two existential variables, one constant, multiplicities ≤ 2).
    Contained {
        /// Number of body atom occurrences of the containing query.
        atoms: usize,
    },
    /// E4 containee-scaling sweep: path queries paired with themselves,
    /// lengths `length, length+1, …` (deterministic — the seed is ignored).
    Path {
        /// Length (number of binary atoms) of the first path in the sweep.
        length: usize,
    },
    /// E4 containing-query sweep: instances with `2^k` containment mappings,
    /// `k = mappings_log2, mappings_log2+1, …` (deterministic).
    ExponentialMapping {
        /// Base-2 logarithm of the mapping count of the first instance.
        mappings_log2: usize,
    },
    /// Theorem 5.4 reductions: `G` is 3-colorable iff `q_T ⊑b q_T ∧ q_G`,
    /// over Erdős–Rényi graphs `G(vertices, 1/2)` (the E5 workload).
    ThreeColorability {
        /// Number of vertices of each random graph.
        vertices: usize,
    },
    /// Optimizer-style linear join chains with specialisation containees —
    /// contained by construction (see [`crate::joins::chain_pair`]).
    Chain {
        /// Number of binary edge atoms in the chain.
        length: usize,
    },
    /// Star joins (one hub, `rays` existential satellites) with
    /// specialisation containees (see [`crate::joins::star_pair`]).
    Star {
        /// Number of satellite atoms joined to the hub.
        rays: usize,
    },
    /// Clique joins (an edge atom per unordered vertex pair) with
    /// specialisation containees (see [`crate::joins::clique_pair`]).
    Clique {
        /// Number of clique vertices.
        vertices: usize,
    },
}

/// E4 (containee scaling): a projection-free "path" containee with `length`
/// binary atoms `R(x0,x1), …, R(x_{length-1}, x_length)`, paired with itself
/// as the containing query (a contained instance, so the decider does the
/// full infeasibility proof).
pub fn path_self_containment(length: usize) -> (ConjunctiveQuery, ConjunctiveQuery) {
    assert!(length >= 1);
    let var = |name: String| Term::var(name);
    let head: Vec<Term> = (0..=length).map(|i| var(format!("x{i}"))).collect();
    let body: Vec<Atom> = (0..length)
        .map(|i| Atom::new("R", vec![var(format!("x{i}")), var(format!("x{}", i + 1))]))
        .collect();
    let q = ConjunctiveQuery::from_atom_list("q_path", head, body);
    (q.clone(), q)
}

/// E4 (containing-query scaling): a fixed three-atom containee
/// `q1(x) ← R(x,x), E(x,'a'), E(x,'b')` against a containing query with
/// `k` existential edge atoms `E(x, z_i)`, which admits `2^k` containment
/// mappings (each `z_i` maps to `'a'` or `'b'`). This isolates the
/// exponential dependence on the containing query that Theorem 5.2 allows.
pub fn exponential_mapping_instance(k: usize) -> (ConjunctiveQuery, ConjunctiveQuery) {
    let x = Term::var("x");
    let containee = ConjunctiveQuery::from_atom_list(
        "q_containee",
        vec![x.clone()],
        vec![
            Atom::new("R", vec![x.clone(), x.clone()]),
            Atom::new("E", vec![x.clone(), Term::constant("a")]),
            Atom::new("E", vec![x.clone(), Term::constant("b")]),
        ],
    );
    let mut body = vec![Atom::new("R", vec![x.clone(), x.clone()])];
    for i in 0..k {
        body.push(Atom::new("E", vec![x.clone(), Term::var(format!("z{i}"))]));
    }
    let containing = ConjunctiveQuery::from_atom_list("q_containing", vec![x], body);
    (containee, containing)
}

fn random_shape(atoms: usize) -> QueryShape {
    QueryShape { atom_occurrences: atoms, ..QueryShape::default() }
}

/// The E6/E9 benchmark shape with the given number of atom occurrences —
/// the single definition shared by [`WorkloadKind::Contained`] and the
/// `dioph-bench` `contained_instance` builder, so the CLI workload and the
/// benchmark workload cannot drift apart.
pub fn contained_shape(atoms: usize) -> QueryShape {
    QueryShape {
        relations: vec![("R".to_string(), 2), ("S".to_string(), 2)],
        atom_occurrences: atoms,
        head_variables: 2,
        existential_variables: 2,
        constants: 1,
        max_multiplicity: 2,
    }
}

/// Expands a workload kind into `count` pairs, deterministically in
/// `(kind, count, seed)`. Queries are renamed `q{i}a` (containee) and
/// `q{i}b` (containing) with `i` the 1-based pair index, so emitted
/// workload files stay readable.
pub fn generate_pairs(kind: WorkloadKind, count: usize, seed: u64) -> Vec<WorkloadPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..=count)
        .map(|i| {
            let (label, (containee, containing)) = match kind {
                WorkloadKind::Specialization { atoms } => (
                    format!("specialization(atoms={atoms}, seed={seed})"),
                    specialization_pair(&random_shape(atoms), &mut rng),
                ),
                WorkloadKind::Inflated { atoms } => (
                    format!("inflated(atoms={atoms}, seed={seed})"),
                    inflated_pair(&random_shape(atoms), &mut rng),
                ),
                WorkloadKind::Contained { atoms } => (
                    format!("contained(atoms={atoms}, seed={seed})"),
                    specialization_pair(&contained_shape(atoms), &mut rng),
                ),
                WorkloadKind::Path { length } => {
                    let length = length + i - 1;
                    (format!("path(length={length})"), path_self_containment(length))
                }
                WorkloadKind::ExponentialMapping { mappings_log2 } => {
                    let k = mappings_log2 + i - 1;
                    (format!("expmap(k={k})"), exponential_mapping_instance(k))
                }
                WorkloadKind::ThreeColorability { vertices } => (
                    format!("threecol(vertices={vertices}, seed={seed})"),
                    three_colorability_instance(&Graph::random(vertices, 0.5, &mut rng)),
                ),
                WorkloadKind::Chain { length } => {
                    (format!("chain(length={length}, seed={seed})"), chain_pair(length, &mut rng))
                }
                WorkloadKind::Star { rays } => {
                    (format!("star(rays={rays}, seed={seed})"), star_pair(rays, &mut rng))
                }
                WorkloadKind::Clique { vertices } => (
                    format!("clique(vertices={vertices}, seed={seed})"),
                    clique_pair(vertices, &mut rng),
                ),
            };
            WorkloadPair {
                label,
                containee: containee.with_name(format!("q{i}a")),
                containing: containing.with_name(format!("q{i}b")),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::is_bag_contained;

    const ALL_KINDS: [WorkloadKind; 9] = [
        WorkloadKind::Specialization { atoms: 4 },
        WorkloadKind::Inflated { atoms: 4 },
        WorkloadKind::Contained { atoms: 4 },
        WorkloadKind::Path { length: 2 },
        WorkloadKind::ExponentialMapping { mappings_log2: 1 },
        WorkloadKind::ThreeColorability { vertices: 5 },
        WorkloadKind::Chain { length: 3 },
        WorkloadKind::Star { rays: 3 },
        WorkloadKind::Clique { vertices: 3 },
    ];

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for kind in ALL_KINDS {
            let a = generate_pairs(kind, 3, 42);
            let b = generate_pairs(kind, 3, 42);
            assert_eq!(a, b, "{kind:?} must be reproducible");
            assert_eq!(a.len(), 3);
        }
        // Different seeds give different random pairs.
        let a = generate_pairs(WorkloadKind::Specialization { atoms: 4 }, 3, 1);
        let b = generate_pairs(WorkloadKind::Specialization { atoms: 4 }, 3, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn every_kind_yields_decidable_pairs() {
        for kind in ALL_KINDS {
            for pair in generate_pairs(kind, 2, 7) {
                assert!(pair.containee.is_projection_free(), "{}", pair.label);
                assert!(pair.containee.is_safe(), "{}", pair.label);
                let result = is_bag_contained(&pair.containee, &pair.containing)
                    .unwrap_or_else(|e| panic!("{} must be decidable: {e}", pair.label));
                if let Some(ce) = result.counterexample() {
                    assert!(ce.verify(&pair.containee, &pair.containing), "{}", pair.label);
                }
            }
        }
    }

    #[test]
    fn contained_kinds_are_contained() {
        for kind in [
            WorkloadKind::Specialization { atoms: 4 },
            WorkloadKind::Contained { atoms: 4 },
            WorkloadKind::Path { length: 1 },
            WorkloadKind::Chain { length: 3 },
            WorkloadKind::Star { rays: 3 },
            WorkloadKind::Clique { vertices: 3 },
        ] {
            for pair in generate_pairs(kind, 3, 11) {
                assert!(
                    is_bag_contained(&pair.containee, &pair.containing).unwrap().holds(),
                    "{} must be contained by construction",
                    pair.label
                );
            }
        }
    }

    #[test]
    fn deterministic_sweeps_scale_with_the_pair_index() {
        let pairs = generate_pairs(WorkloadKind::Path { length: 2 }, 3, 0);
        let lengths: Vec<u64> = pairs.iter().map(|p| p.containee.total_atom_count()).collect();
        assert_eq!(lengths, vec![2, 3, 4]);
        let pairs = generate_pairs(WorkloadKind::ExponentialMapping { mappings_log2: 1 }, 3, 0);
        // k existential edge atoms plus one R atom on the containing side.
        let atoms: Vec<u64> = pairs.iter().map(|p| p.containing.total_atom_count()).collect();
        assert_eq!(atoms, vec![2, 3, 4]);
    }

    #[test]
    fn pairs_are_renamed_by_index() {
        let pairs = generate_pairs(WorkloadKind::Inflated { atoms: 4 }, 2, 3);
        assert_eq!(pairs[0].containee.name(), "q1a");
        assert_eq!(pairs[0].containing.name(), "q1b");
        assert_eq!(pairs[1].containee.name(), "q2a");
        assert_eq!(pairs[1].containing.name(), "q2b");
    }
}
