//! Golden-certificate differential suite for the hybrid numeric tower.
//!
//! The fixtures under `tests/golden/` were produced by the **pre-refactor**
//! tree (big-only `Natural`/`Integer`/`Rational`, dense LP rows) running
//!
//! ```text
//! diophantus gen <kind> --count 3 --seed 2019 | diophantus decide --json
//! diophantus gen <kind> --count 3 --seed 2019 | diophantus batch --jobs 2 --json
//! diophantus gen path --count 3 --seed 2019 | diophantus equiv --json
//! ```
//!
//! for every `WorkloadKind` suite (`equiv` only where the reverse direction
//! is decidable, i.e. the containing query is also projection-free). The
//! current binary must reproduce each file **byte-identically**: verdicts,
//! counterexample bags, multiplicities and probe orders are all observable
//! in the JSON, so any representation-dependent divergence of the hybrid
//! small-int fast paths or the sparse LP rows shows up as a diff here.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_diophantus");

/// Runs the binary, asserting success, and returns stdout.
fn stdout_of(args: &[&str], stdin: &str) -> String {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("the diophantus binary must spawn");
    child
        .stdin
        .take()
        .expect("stdin was piped")
        .write_all(stdin.as_bytes())
        .expect("writing to the child's stdin");
    let out = child.wait_with_output().expect("the diophantus binary must exit");
    assert!(
        out.status.success(),
        "diophantus {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout must be UTF-8")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn workload(kind: &str) -> String {
    stdout_of(&["gen", kind, "--count", "3", "--seed", "2019"], "")
}

const KINDS: [&str; 6] = ["spec", "inflated", "contained", "path", "expmap", "threecol"];

#[test]
fn decide_certificates_match_the_pre_refactor_tree() {
    for kind in KINDS {
        let out = stdout_of(&["decide", "--json"], &workload(kind));
        assert_eq!(
            out,
            golden(&format!("{kind}.decide.json")),
            "{kind}: decide --json diverged from the pre-refactor golden output"
        );
    }
}

#[test]
fn batch_certificates_match_the_pre_refactor_tree_for_all_job_counts() {
    for kind in KINDS {
        let expected = golden(&format!("{kind}.batch.jsonl"));
        for jobs in ["1", "2", "4"] {
            let out = stdout_of(&["batch", "--jobs", jobs, "--json"], &workload(kind));
            assert_eq!(
                out, expected,
                "{kind}: batch --jobs {jobs} --json diverged from the pre-refactor golden output"
            );
        }
    }
}

#[test]
fn bareiss_route_reproduces_every_golden_certificate() {
    // The fraction-free LP route (and the auto route that may pick either
    // kernel per system) must be byte-identical to the rational simplex on
    // every fixture: same verdicts, same witnesses, same JSON — across
    // decide, equiv and batch at jobs 1/2/4. This is the differential
    // gate for `--lp-route`.
    for route in ["bareiss", "auto"] {
        for kind in KINDS {
            let out = stdout_of(&["decide", "--json", "--lp-route", route], &workload(kind));
            assert_eq!(
                out,
                golden(&format!("{kind}.decide.json")),
                "{kind}: decide --lp-route {route} diverged from the golden output"
            );
            let expected = golden(&format!("{kind}.batch.jsonl"));
            for jobs in ["1", "2", "4"] {
                let out = stdout_of(
                    &["batch", "--jobs", jobs, "--json", "--lp-route", route],
                    &workload(kind),
                );
                assert_eq!(
                    out, expected,
                    "{kind}: batch --jobs {jobs} --lp-route {route} diverged from the golden \
                     output"
                );
            }
        }
        let out = stdout_of(&["equiv", "--json", "--lp-route", route], &workload("path"));
        assert_eq!(
            out,
            golden("path.equiv.json"),
            "path: equiv --lp-route {route} diverged from the golden output"
        );
    }
}

#[test]
fn equiv_certificates_match_the_pre_refactor_tree() {
    // Only the path family has projection-free queries on both sides, so
    // only it can be decided in both directions.
    let out = stdout_of(&["equiv", "--json"], &workload("path"));
    assert_eq!(
        out,
        golden("path.equiv.json"),
        "path: equiv --json diverged from the pre-refactor golden output"
    );
}

#[test]
fn golden_certificates_still_verify() {
    // The recorded counterexamples must pass the independent Equation-2
    // re-checker of the *current* binary (arith changes could in principle
    // break evaluation while leaving certificates identical).
    for kind in KINDS {
        let verdicts = golden(&format!("{kind}.decide.json"));
        let out = stdout_of(&["verify"], &verdicts);
        assert!(out.contains("0 failure(s)"), "{kind}: {out}");
    }
}
