#!/usr/bin/env bash
# Greps first-party sources for constructs that must never reach main,
# independently of (and in addition to) the clippy lint gate:
#
#   * dbg!(...), todo!(...), unimplemented!(...) — debug leftovers;
#   * non-Relaxed atomic memory orderings outside #[cfg(test)] code — the
#     engine's atomics are flags and counters with no cross-thread data
#     dependencies (channels carry the data), so every ordering is Relaxed;
#     anything stronger is either a mistake or needs a design discussion.
#     This gate deliberately covers crates/obs too: metrics cells are the
#     canonical Relaxed-only use case;
#   * static atomics outside crates/obs — the metrics registry is the one
#     sanctioned home for process-global atomic state. Ad-hoc global
#     counters bypass its naming, stability classification and snapshot
#     semantics; route new ones through dioph-obs instead.
#
# Exits non-zero listing every offending line. Vendored crates under
# vendor/ keep their upstream style and are not scanned.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

scan() {
    local label="$1" pattern="$2"
    # First-party Rust sources only: the facade, the workspace crates and
    # the integration tests; vendor/ and target/ are excluded.
    local matches
    matches=$(grep -rnE "$pattern" src crates tests --include='*.rs' | grep -v '^\s*//' || true)
    if [ -n "$matches" ]; then
        echo "forbid.sh: $label:" >&2
        echo "$matches" >&2
        fail=1
    fi
}

scan "dbg! macro left in code" '\bdbg!\('
scan "todo! macro left in code" '\btodo!\('
scan "unimplemented! macro left in code" '\bunimplemented!\('

# Atomic orderings: match the std::sync::atomic::Ordering variants only —
# cmp::Ordering (Less/Equal/Greater) appears all over the codebase and is
# fine. Test modules are allowed to use stronger orderings for stress
# harnesses; first-party non-test code must stay Relaxed.
ordering_matches=$(grep -rnE 'Ordering::(SeqCst|Acquire|Release|AcqRel)' src crates --include='*.rs' \
    | grep -v '^\s*//' || true)
if [ -n "$ordering_matches" ]; then
    filtered=""
    while IFS= read -r line; do
        file="${line%%:*}"
        # Allow matches in files' #[cfg(test)] regions: approximate by
        # checking whether the match line comes after a `mod tests` marker.
        lineno=$(echo "$line" | cut -d: -f2)
        teststart=$(grep -n '#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
        if [ -n "$teststart" ] && [ "$lineno" -gt "$teststart" ]; then
            continue
        fi
        filtered="${filtered}${line}"$'\n'
    done <<< "$ordering_matches"
    if [ -n "${filtered%$'\n'}" ]; then
        echo "forbid.sh: non-Relaxed atomic ordering outside #[cfg(test)]:" >&2
        printf '%s' "$filtered" >&2
        fail=1
    fi
fi

# Static atomics: process-global mutable state belongs in the dioph-obs
# registry (stable names, stability classes, snapshot/delta semantics), so
# a `static NAME: Atomic*` anywhere else is forbidden. Local `let`-bound
# atomics (the engine's per-call scheduling counters) are fine and don't
# match the pattern. Test modules may declare scratch statics.
static_matches=$(grep -rnE 'static[[:space:]]+[A-Z0-9_]+:[[:space:]]*([a-z:]+::)?Atomic' \
    src crates tests --include='*.rs' | grep -v '^crates/obs/' | grep -v '^\s*//' || true)
if [ -n "$static_matches" ]; then
    filtered=""
    while IFS= read -r line; do
        file="${line%%:*}"
        lineno=$(echo "$line" | cut -d: -f2)
        teststart=$(grep -n '#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
        if [ -n "$teststart" ] && [ "$lineno" -gt "$teststart" ]; then
            continue
        fi
        filtered="${filtered}${line}"$'\n'
    done <<< "$static_matches"
    if [ -n "${filtered%$'\n'}" ]; then
        echo "forbid.sh: static atomic outside crates/obs (route it through the dioph-obs registry):" >&2
        printf '%s' "$filtered" >&2
        fail=1
    fi
fi

if [ "$fail" -eq 0 ]; then
    echo "forbid.sh: clean"
fi
exit "$fail"
