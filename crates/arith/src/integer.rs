//! Arbitrary-precision signed integers built on top of [`Natural`].

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

use crate::natural::{Natural, ParseNaturalError};

/// Sign of an [`Integer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Mul for Sign {
    type Output = Sign;

    /// Returns the sign of a product of two signed values.
    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

impl Sign {
    /// Flips the sign (zero stays zero).
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use dioph_arith::Integer;
///
/// let a = Integer::from(-7i64);
/// let b = Integer::from(3i64);
/// assert_eq!(&a * &b, Integer::from(-21i64));
/// assert_eq!((&a + &b).to_i64(), Some(-4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    magnitude: Natural,
}

impl Default for Integer {
    fn default() -> Self {
        Integer::zero()
    }
}

impl Integer {
    /// The integer zero.
    pub fn zero() -> Self {
        Integer { sign: Sign::Zero, magnitude: Natural::zero() }
    }

    /// The integer one.
    pub fn one() -> Self {
        Integer { sign: Sign::Positive, magnitude: Natural::one() }
    }

    /// The integer minus one.
    pub fn minus_one() -> Self {
        Integer { sign: Sign::Negative, magnitude: Natural::one() }
    }

    /// Builds an integer from a sign and magnitude (normalising zero).
    pub fn from_sign_magnitude(sign: Sign, magnitude: Natural) -> Self {
        if magnitude.is_zero() {
            Integer::zero()
        } else {
            assert!(sign != Sign::Zero, "non-zero magnitude with Sign::Zero");
            Integer { sign, magnitude }
        }
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value as a [`Natural`].
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Consumes the integer, returning its absolute value.
    pub fn into_magnitude(self) -> Natural {
        self.magnitude
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.magnitude.is_one()
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Absolute value.
    pub fn abs(&self) -> Integer {
        Integer::from_sign_magnitude(
            if self.is_zero() { Sign::Zero } else { Sign::Positive },
            self.magnitude.clone(),
        )
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(mag).ok(),
            Sign::Negative => {
                if mag <= i64::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag = self.magnitude.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(mag).ok(),
            Sign::Negative => {
                if mag <= i128::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Lossy conversion to `f64` for reporting purposes only.
    pub fn to_f64_lossy(&self) -> f64 {
        let m = self.magnitude.to_f64_lossy();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }

    /// Converts a non-negative integer into a [`Natural`]; `None` for negatives.
    pub fn to_natural(&self) -> Option<Natural> {
        match self.sign {
            Sign::Negative => None,
            _ => Some(self.magnitude.clone()),
        }
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, exp: u64) -> Integer {
        let mag = self.magnitude.pow(exp);
        let sign = match self.sign {
            Sign::Zero => {
                if exp == 0 {
                    Sign::Positive
                } else {
                    Sign::Zero
                }
            }
            Sign::Positive => Sign::Positive,
            Sign::Negative => {
                if exp.is_multiple_of(2) {
                    Sign::Positive
                } else {
                    Sign::Negative
                }
            }
        };
        Integer::from_sign_magnitude(
            sign,
            if self.is_zero() && exp == 0 { Natural::one() } else { mag },
        )
    }

    /// Greatest common divisor of absolute values (always non-negative).
    pub fn gcd(&self, other: &Integer) -> Natural {
        self.magnitude.gcd(&other.magnitude)
    }

    /// Truncated division: returns `(quotient, remainder)` with the remainder
    /// carrying the sign of the dividend (like Rust's `/` and `%` on
    /// primitive integers).
    pub fn div_rem(&self, other: &Integer) -> (Integer, Integer) {
        assert!(!other.is_zero(), "division by zero");
        let (q_mag, r_mag) = self.magnitude.div_rem(&other.magnitude);
        let q_sign = if q_mag.is_zero() { Sign::Zero } else { self.sign * other.sign };
        let r_sign = if r_mag.is_zero() { Sign::Zero } else { self.sign };
        (Integer::from_sign_magnitude(q_sign, q_mag), Integer::from_sign_magnitude(r_sign, r_mag))
    }
}

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        let sign = if n.is_zero() { Sign::Zero } else { Sign::Positive };
        Integer { sign, magnitude: n }
    }
}

impl From<&Natural> for Integer {
    fn from(n: &Natural) -> Self {
        Integer::from(n.clone())
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {
        $(impl From<$t> for Integer {
            fn from(v: $t) -> Self {
                let sign = match v.cmp(&0) {
                    Ordering::Less => Sign::Negative,
                    Ordering::Equal => Sign::Zero,
                    Ordering::Greater => Sign::Positive,
                };
                Integer { sign, magnitude: Natural::from(v.unsigned_abs() as u128) }
            }
        })*
    };
}

impl_from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {
        $(impl From<$t> for Integer {
            fn from(v: $t) -> Self {
                Integer::from(Natural::from(v as u128))
            }
        })*
    };
}

impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

/// Error produced when parsing an [`Integer`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntegerError(ParseNaturalError);

impl fmt::Display for ParseIntegerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseIntegerError {}

impl FromStr for Integer {
    type Err = ParseIntegerError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, rest) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag = Natural::from_decimal_str(rest).map_err(ParseIntegerError)?;
        let sign = if mag.is_zero() {
            Sign::Zero
        } else if neg {
            Sign::Negative
        } else {
            Sign::Positive
        };
        Ok(Integer::from_sign_magnitude(sign, mag))
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
            },
            ord => ord,
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Negative => write!(f, "-{}", self.magnitude),
            _ => write!(f, "{}", self.magnitude),
        }
    }
}

impl fmt::Debug for Integer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Integer({self})")
    }
}

impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        Integer { sign: self.sign.negate(), magnitude: self.magnitude.clone() }
    }
}

impl Neg for Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        Integer { sign: self.sign.negate(), magnitude: self.magnitude }
    }
}

impl Add for &Integer {
    type Output = Integer;
    fn add(self, rhs: &Integer) -> Integer {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Integer::from_sign_magnitude(a, &self.magnitude + &rhs.magnitude),
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match self.magnitude.cmp(&rhs.magnitude) {
                    Ordering::Equal => Integer::zero(),
                    Ordering::Greater => {
                        Integer::from_sign_magnitude(self.sign, &self.magnitude - &rhs.magnitude)
                    }
                    Ordering::Less => {
                        Integer::from_sign_magnitude(rhs.sign, &rhs.magnitude - &self.magnitude)
                    }
                }
            }
        }
    }
}

impl Add for Integer {
    type Output = Integer;
    fn add(self, rhs: Integer) -> Integer {
        &self + &rhs
    }
}

impl AddAssign<&Integer> for Integer {
    fn add_assign(&mut self, rhs: &Integer) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Integer {
    fn add_assign(&mut self, rhs: Integer) {
        *self += &rhs;
    }
}

impl Sub for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        self + &(-rhs)
    }
}

impl Sub for Integer {
    type Output = Integer;
    fn sub(self, rhs: Integer) -> Integer {
        &self - &rhs
    }
}

impl SubAssign<&Integer> for Integer {
    fn sub_assign(&mut self, rhs: &Integer) {
        *self = &*self - rhs;
    }
}

impl Mul for &Integer {
    type Output = Integer;
    fn mul(self, rhs: &Integer) -> Integer {
        Integer::from_sign_magnitude(self.sign * rhs.sign, &self.magnitude * &rhs.magnitude)
    }
}

impl Mul for Integer {
    type Output = Integer;
    fn mul(self, rhs: Integer) -> Integer {
        &self * &rhs
    }
}

impl MulAssign<&Integer> for Integer {
    fn mul_assign(&mut self, rhs: &Integer) {
        *self = &*self * rhs;
    }
}

impl Div for &Integer {
    type Output = Integer;
    fn div(self, rhs: &Integer) -> Integer {
        self.div_rem(rhs).0
    }
}

impl Rem for &Integer {
    type Output = Integer;
    fn rem(self, rhs: &Integer) -> Integer {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn sign_normalisation() {
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(int(5).sign(), Sign::Positive);
        assert_eq!(int(-5).sign(), Sign::Negative);
        assert_eq!(Integer::from(Natural::zero()).sign(), Sign::Zero);
    }

    #[test]
    fn addition_all_sign_combinations() {
        let cases = [
            (3, 4),
            (-3, -4),
            (3, -4),
            (-3, 4),
            (5, -5),
            (0, 7),
            (7, 0),
            (0, 0),
            (i64::MAX as i128, i64::MAX as i128),
        ];
        for (a, b) in cases {
            assert_eq!(&int(a) + &int(b), int(a + b), "{a} + {b}");
            assert_eq!(&int(a) - &int(b), int(a - b), "{a} - {b}");
        }
    }

    #[test]
    fn multiplication_sign_rules() {
        let cases = [(3, 4), (-3, 4), (3, -4), (-3, -4), (0, -9), (-9, 0)];
        for (a, b) in cases {
            assert_eq!(&int(a) * &int(b), int(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn truncated_division_matches_rust_semantics() {
        let cases = [(7, 2), (-7, 2), (7, -2), (-7, -2), (6, 3), (-6, 3), (0, 5)];
        for (a, b) in cases {
            let (q, r) = int(a).div_rem(&int(b));
            assert_eq!(q, int(a / b), "{a} / {b}");
            assert_eq!(r, int(a % b), "{a} % {b}");
        }
    }

    #[test]
    fn pow_and_parity() {
        assert_eq!(int(-2).pow(3), int(-8));
        assert_eq!(int(-2).pow(4), int(16));
        assert_eq!(int(0).pow(0), int(1));
        assert_eq!(int(0).pow(3), int(0));
        assert_eq!(int(5).pow(0), int(1));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-2));
        assert!(int(-2) < int(0));
        assert!(int(0) < int(3));
        assert!(int(3) < int(10));
        assert!(int(-1) < int(1));
    }

    #[test]
    fn parse_and_display() {
        for s in ["0", "-1", "12345678901234567890123456789", "-98765432109876543210"] {
            let v: Integer = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("+7".parse::<Integer>().unwrap(), int(7));
        assert_eq!("-0".parse::<Integer>().unwrap(), int(0));
        assert!("--3".parse::<Integer>().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(int(-42).to_i64(), Some(-42));
        assert_eq!(int(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(int(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(int(-5).to_natural(), None);
        assert_eq!(int(5).to_natural(), Some(Natural::from(5u64)));
        assert_eq!(int(-3).abs(), int(3));
        assert_eq!(int(7).gcd(&int(-21)), Natural::from(7u64));
    }
}
