//! Property tests: the parallel engine is observationally identical to the
//! sequential decider, for every workload family, algorithm and job count.
//!
//! This is the determinism contract of `dioph-engine` stated as a property:
//! fanning probe tuples (or whole pairs, in batch mode) across threads must
//! never change a verdict, a counterexample bag, or a JSON certificate.

use dioph_containment::{Algorithm, BagContainmentDecider};
use dioph_engine::{DecisionEngine, EngineConfig, JobReader, Verdict};
use dioph_workloads::suite::{generate_pairs, WorkloadKind};
use proptest::prelude::*;

const JOB_COUNTS: [usize; 3] = [1, 2, 4];

fn kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Specialization { atoms: 3 },
        WorkloadKind::Inflated { atoms: 3 },
        WorkloadKind::Contained { atoms: 3 },
        WorkloadKind::Path { length: 2 },
        WorkloadKind::ExponentialMapping { mappings_log2: 2 },
        WorkloadKind::ThreeColorability { vertices: 4 },
    ]
}

/// Workload kinds whose probe spaces stay small enough for the
/// probe-enumerating algorithm (AllProbes is exponential in the containee
/// arity, so the wide-headed path/3-col families are kept out).
fn all_probe_kinds() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::Specialization { atoms: 3 },
        WorkloadKind::Inflated { atoms: 3 },
        WorkloadKind::Contained { atoms: 3 },
        WorkloadKind::ExponentialMapping { mappings_log2: 2 },
    ]
}

fn assert_engine_matches_sequential(kind: WorkloadKind, seed: u64, algorithm: Algorithm) {
    let decider = BagContainmentDecider::new(algorithm);
    for pair in generate_pairs(kind, 2, seed) {
        let sequential = decider.decide(&pair.containee, &pair.containing);
        for jobs in JOB_COUNTS {
            let engine =
                DecisionEngine::new(EngineConfig { jobs, algorithm, engine: Default::default() });
            let parallel = engine.decide(&pair.containee, &pair.containing);
            match (&sequential, &parallel) {
                (Ok(seq), Ok(par)) => {
                    assert_eq!(par, seq, "{} jobs={jobs} {algorithm:?}", pair.label);
                    assert_eq!(
                        par.to_json(),
                        seq.to_json(),
                        "{} jobs={jobs}: JSON certificates must be byte-identical",
                        pair.label
                    );
                }
                (Err(se), Err(pe)) => {
                    assert_eq!(pe, se, "{} jobs={jobs}: errors must agree", pair.label);
                }
                other => panic!("{} jobs={jobs}: outcome mismatch {other:?}", pair.label),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Most-general-probe (the default algorithm) across every workload
    /// family: engine and sequential decider agree bit-for-bit.
    #[test]
    fn engine_matches_sequential_most_general(seed in 0u64..1_000_000, kind_index in 0usize..6) {
        let kind = kinds()[kind_index];
        assert_engine_matches_sequential(kind, seed, Algorithm::MostGeneralProbe);
    }

    /// The probe-parallel path proper: the all-probes algorithm fans real
    /// multi-probe work across the pool and must still match sequentially.
    #[test]
    fn engine_matches_sequential_all_probes(seed in 0u64..1_000_000, kind_index in 0usize..4) {
        let kind = all_probe_kinds()[kind_index];
        assert_engine_matches_sequential(kind, seed, Algorithm::AllProbes);
    }

    /// Batch mode: rendering a generated workload to datalog text and
    /// streaming it through `run_batch` yields the same ordered verdicts for
    /// every worker count.
    #[test]
    fn batch_verdicts_are_identical_across_worker_counts(seed in 0u64..1_000_000) {
        let mut text = String::new();
        for kind in [WorkloadKind::Specialization { atoms: 3 }, WorkloadKind::Inflated { atoms: 3 }] {
            for pair in generate_pairs(kind, 3, seed) {
                text.push_str(&format!("{}.\n{}.\n", pair.containee, pair.containing));
            }
        }
        let mut runs: Vec<Vec<Verdict>> = Vec::new();
        for jobs in JOB_COUNTS {
            let engine = DecisionEngine::new(EngineConfig { jobs, ..Default::default() });
            let mut verdicts = Vec::new();
            let stats = engine.run_batch(JobReader::new(text.as_bytes()), |v| {
                verdicts.push(v);
                true
            });
            prop_assert_eq!(stats.jobs_processed, 6);
            prop_assert_eq!(stats.failures, 0);
            runs.push(verdicts);
        }
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }

    /// Skewed batch streams: a giant multi-probe pair interleaved with tiny
    /// pairs at a random position. The unified scheduler lets every worker
    /// pull the giant's probe units while tiny pairs come and go, and the
    /// merged verdict stream must still be identical to the sequential run.
    #[test]
    fn interleaved_giant_and_tiny_pairs_merge_identically(
        seed in 0u64..1_000_000,
        giant_at in 0usize..5,
    ) {
        let giant = generate_pairs(WorkloadKind::Path { length: 2 }, 1, seed)
            .pop()
            .expect("the path family generates one pair");
        let mut text = String::new();
        for (i, pair) in
            generate_pairs(WorkloadKind::ExponentialMapping { mappings_log2: 2 }, 4, seed)
                .into_iter()
                .enumerate()
        {
            if i == giant_at {
                text.push_str(&format!("{}.\n{}.\n", giant.containee, giant.containing));
            }
            text.push_str(&format!("{}.\n{}.\n", pair.containee, pair.containing));
        }
        if giant_at >= 4 {
            text.push_str(&format!("{}.\n{}.\n", giant.containee, giant.containing));
        }
        let mut runs: Vec<Vec<Verdict>> = Vec::new();
        for jobs in JOB_COUNTS {
            let engine = DecisionEngine::new(EngineConfig {
                jobs,
                algorithm: Algorithm::AllProbes,
                engine: Default::default(),
            });
            let mut verdicts = Vec::new();
            let stats = engine.run_batch(JobReader::new(text.as_bytes()), |v| {
                verdicts.push(v);
                true
            });
            prop_assert_eq!(stats.jobs_processed, 5, "jobs={}", jobs);
            prop_assert_eq!(stats.failures, 0, "jobs={}", jobs);
            runs.push(verdicts);
        }
        prop_assert_eq!(&runs[0], &runs[1], "jobs=2 diverged from sequential");
        prop_assert_eq!(&runs[0], &runs[2], "jobs=4 diverged from sequential");
    }
}
