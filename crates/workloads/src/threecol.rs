//! The NP-hardness reduction of Theorem 5.4: graph 3-colorability as a
//! bag-containment question.
//!
//! Given a graph `G`, the paper considers the ground Boolean query `q_T`
//! describing a triangle and the Boolean query `q_G` describing `G`, and
//! shows that `G` is 3-colorable iff `q_T ⊑b q_T ∧ q_G`.
//!
//! One presentational detail: the paper writes the triangle as the *directed*
//! 3-cycle `R(a,b), R(b,c), R(c,a)`. Homomorphisms into the directed 3-cycle
//! characterise a circular orientation constraint rather than 3-colorability,
//! so — as is standard for the colorability-as-homomorphism encoding — we use
//! the *symmetric* triangle (both orientations of each edge, 6 atoms) and
//! encode each undirected edge of `G` with both orientations as well. With
//! this encoding, homomorphisms from `q_G` to `q_T` are exactly the proper
//! 3-colorings of `G`, which is what the theorem's argument uses.

use dioph_cq::{Atom, ConjunctiveQuery, Term};

use crate::graphs::Graph;

/// Relation name used for edges in the reduction.
pub const EDGE_RELATION: &str = "E";

fn color_constant(i: usize) -> Term {
    Term::constant(["col_a", "col_b", "col_c"][i])
}

fn vertex_variable(v: usize) -> Term {
    Term::var(format!("v{v}"))
}

/// The ground Boolean "triangle" query `q_T`: all six ordered pairs of
/// distinct colors.
pub fn triangle_query() -> ConjunctiveQuery {
    let mut atoms = Vec::new();
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                atoms.push(Atom::new(EDGE_RELATION, vec![color_constant(i), color_constant(j)]));
            }
        }
    }
    ConjunctiveQuery::from_atom_list("q_T", vec![], atoms)
}

/// The Boolean query `q_G` describing the graph: one existential variable per
/// vertex and both orientations of every edge.
pub fn graph_query(graph: &Graph) -> ConjunctiveQuery {
    let mut atoms = Vec::new();
    for (u, v) in graph.edges() {
        atoms.push(Atom::new(EDGE_RELATION, vec![vertex_variable(u), vertex_variable(v)]));
        atoms.push(Atom::new(EDGE_RELATION, vec![vertex_variable(v), vertex_variable(u)]));
    }
    ConjunctiveQuery::from_atom_list("q_G", vec![], atoms)
}

/// The conjunction `q_T ∧ q_G` (bodies joined; bag multiplicities add for
/// shared atoms, though the two bodies are disjoint here since one is ground
/// over color constants and the other uses vertex variables).
pub fn triangle_and_graph_query(graph: &Graph) -> ConjunctiveQuery {
    let triangle = triangle_query();
    let graph_q = graph_query(graph);
    let body = triangle
        .body()
        .map(|(a, m)| (a.clone(), m))
        .chain(graph_q.body().map(|(a, m)| (a.clone(), m)));
    ConjunctiveQuery::new("q_TG", vec![], body)
}

/// The full Theorem 5.4 instance for a graph: the pair `(q_T, q_T ∧ q_G)`
/// such that the graph is 3-colorable iff `q_T ⊑b q_T ∧ q_G`.
pub fn three_colorability_instance(graph: &Graph) -> (ConjunctiveQuery, ConjunctiveQuery) {
    (triangle_query(), triangle_and_graph_query(graph))
}

/// Decides 3-colorability of a graph *through* the bag-containment decider
/// (the reduction direction used in the hardness proof), so that it can be
/// cross-checked against [`Graph::is_three_colorable`].
pub fn three_colorable_via_containment(
    graph: &Graph,
    decider: &dioph_containment::BagContainmentDecider,
) -> bool {
    let (containee, containing) = three_colorability_instance(graph);
    decider
        .decide(&containee, &containing)
        .expect("the triangle query is ground, hence projection-free and safe")
        .holds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::{Algorithm, BagContainmentDecider};

    fn decider() -> BagContainmentDecider {
        BagContainmentDecider::new(Algorithm::MostGeneralProbe)
    }

    #[test]
    fn triangle_query_shape() {
        let t = triangle_query();
        assert!(t.is_boolean());
        assert!(t.is_projection_free());
        assert_eq!(t.total_atom_count(), 6);
        assert_eq!(t.distinct_atom_count(), 6);
    }

    #[test]
    fn graph_query_shape() {
        let g = Graph::cycle(4);
        let q = graph_query(&g);
        assert!(q.is_boolean());
        assert!(!q.is_projection_free());
        assert_eq!(q.total_atom_count(), 8);
        let qtg = triangle_and_graph_query(&g);
        assert_eq!(qtg.total_atom_count(), 14);
    }

    #[test]
    fn colorable_graphs_yield_containment() {
        for g in
            [Graph::complete(3), Graph::cycle(5), Graph::complete_bipartite(2, 3), Graph::new(3)]
        {
            assert!(g.is_three_colorable());
            assert!(
                three_colorable_via_containment(&g, &decider()),
                "reduction disagrees with the direct oracle on a colorable graph"
            );
        }
    }

    #[test]
    fn uncolorable_graphs_yield_non_containment() {
        let k4 = Graph::complete(4);
        assert!(!k4.is_three_colorable());
        assert!(!three_colorable_via_containment(&k4, &decider()));

        // K4 plus a pendant vertex is still uncolorable.
        let mut g = Graph::new(5);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(3, 4);
        assert!(!three_colorable_via_containment(&g, &decider()));
    }

    #[test]
    fn reduction_agrees_with_oracle_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2019);
        for n in 3..=6 {
            for _ in 0..3 {
                let g = Graph::random(n, 0.5, &mut rng);
                assert_eq!(
                    g.is_three_colorable(),
                    three_colorable_via_containment(&g, &decider()),
                    "disagreement on {g:?}"
                );
            }
        }
    }

    #[test]
    fn non_containment_certificates_verify() {
        let k4 = Graph::complete(4);
        let (containee, containing) = three_colorability_instance(&k4);
        let result = decider().decide(&containee, &containing).unwrap();
        let ce = result.counterexample().expect("K4 is not 3-colorable");
        assert!(ce.verify(&containee, &containing));
    }
}
