#!/usr/bin/env bash
# Greps first-party sources for constructs that must never reach main,
# independently of (and in addition to) the clippy lint gate:
#
#   * dbg!(...), todo!(...), unimplemented!(...) — debug leftovers;
#   * non-Relaxed atomic memory orderings outside #[cfg(test)] code — the
#     engine's atomics are flags and counters with no cross-thread data
#     dependencies (channels carry the data), so every ordering is Relaxed;
#     anything stronger is either a mistake or needs a design discussion.
#     This gate deliberately covers crates/obs too: metrics cells are the
#     canonical Relaxed-only use case;
#   * static atomics outside crates/obs — the metrics registry is the one
#     sanctioned home for process-global atomic state. Ad-hoc global
#     counters bypass its naming, stability classification and snapshot
#     semantics; route new ones through dioph-obs instead;
#   * Vec::new() / vec![ in the marked hot-loop modules — the probe loop
#     runs on recycled scratch memory (ARCHITECTURE.md, "The scratch-memory
#     discipline"), so an unannotated allocation in an LP kernel, the MPI
#     compiler or the decider is a per-probe allocation regression waiting
#     to happen. Deliberate allocations (returned witnesses, one-time
#     warm-up growth, densification) carry an `// alloc-ok: <reason>`
#     annotation on the same or the preceding line. The scratch layer
#     itself (*/scratch.rs) is where allocation is supposed to happen and
#     is exempt, as are #[cfg(test)] regions.
#
# Exits non-zero listing every offending line. Vendored crates under
# vendor/ keep their upstream style and are not scanned.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

scan() {
    local label="$1" pattern="$2"
    # First-party Rust sources only: the facade, the workspace crates and
    # the integration tests; vendor/ and target/ are excluded.
    local matches
    matches=$(grep -rnE "$pattern" src crates tests --include='*.rs' | grep -v '^\s*//' || true)
    if [ -n "$matches" ]; then
        echo "forbid.sh: $label:" >&2
        echo "$matches" >&2
        fail=1
    fi
}

scan "dbg! macro left in code" '\bdbg!\('
scan "todo! macro left in code" '\btodo!\('
scan "unimplemented! macro left in code" '\bunimplemented!\('

# Atomic orderings: match the std::sync::atomic::Ordering variants only —
# cmp::Ordering (Less/Equal/Greater) appears all over the codebase and is
# fine. Test modules are allowed to use stronger orderings for stress
# harnesses; first-party non-test code must stay Relaxed.
ordering_matches=$(grep -rnE 'Ordering::(SeqCst|Acquire|Release|AcqRel)' src crates --include='*.rs' \
    | grep -v '^\s*//' || true)
if [ -n "$ordering_matches" ]; then
    filtered=""
    while IFS= read -r line; do
        file="${line%%:*}"
        # Allow matches in files' #[cfg(test)] regions: approximate by
        # checking whether the match line comes after a `mod tests` marker.
        lineno=$(echo "$line" | cut -d: -f2)
        teststart=$(grep -n '#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
        if [ -n "$teststart" ] && [ "$lineno" -gt "$teststart" ]; then
            continue
        fi
        filtered="${filtered}${line}"$'\n'
    done <<< "$ordering_matches"
    if [ -n "${filtered%$'\n'}" ]; then
        echo "forbid.sh: non-Relaxed atomic ordering outside #[cfg(test)]:" >&2
        printf '%s' "$filtered" >&2
        fail=1
    fi
fi

# Static atomics: process-global mutable state belongs in the dioph-obs
# registry (stable names, stability classes, snapshot/delta semantics), so
# a `static NAME: Atomic*` anywhere else is forbidden. Local `let`-bound
# atomics (the engine's per-call scheduling counters) are fine and don't
# match the pattern. Test modules may declare scratch statics.
static_matches=$(grep -rnE 'static[[:space:]]+[A-Z0-9_]+:[[:space:]]*([a-z:]+::)?Atomic' \
    src crates tests --include='*.rs' | grep -v '^crates/obs/' | grep -v '^\s*//' || true)
if [ -n "$static_matches" ]; then
    filtered=""
    while IFS= read -r line; do
        file="${line%%:*}"
        lineno=$(echo "$line" | cut -d: -f2)
        teststart=$(grep -n '#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
        if [ -n "$teststart" ] && [ "$lineno" -gt "$teststart" ]; then
            continue
        fi
        filtered="${filtered}${line}"$'\n'
    done <<< "$static_matches"
    if [ -n "${filtered%$'\n'}" ]; then
        echo "forbid.sh: static atomic outside crates/obs (route it through the dioph-obs registry):" >&2
        printf '%s' "$filtered" >&2
        fail=1
    fi
fi

# Unannotated allocations in the hot-loop modules: the files the
# zero-allocation probe loop runs through. A Vec::new()/vec![ here must be
# annotated `// alloc-ok: <reason>` (same line or the line above) or live
# in the file's #[cfg(test)] region. The scratch layer (*/scratch.rs) is
# the sanctioned home for allocation and is deliberately not listed.
hot_loop_files="
crates/linalg/src/row.rs
crates/linalg/src/simplex.rs
crates/linalg/src/bareiss.rs
crates/linalg/src/feasibility.rs
crates/poly/src/mpi.rs
crates/containment/src/decider.rs
"
alloc_filtered=""
for file in $hot_loop_files; do
    matches=$(grep -nE 'Vec::new\(\)|vec!\[' "$file" | grep -v '^\s*//' | grep -v 'alloc-ok' || true)
    [ -n "$matches" ] || continue
    teststart=$(grep -n '#\[cfg(test)\]' "$file" | head -1 | cut -d: -f1)
    while IFS= read -r line; do
        lineno="${line%%:*}"
        if [ -n "$teststart" ] && [ "$lineno" -gt "$teststart" ]; then
            continue
        fi
        # Annotation on the preceding line also counts (long expressions).
        if [ "$lineno" -gt 1 ] && sed -n "$((lineno - 1))p" "$file" | grep -q 'alloc-ok'; then
            continue
        fi
        alloc_filtered="${alloc_filtered}${file}:${line}"$'\n'
    done <<< "$matches"
done
if [ -n "${alloc_filtered%$'\n'}" ]; then
    echo "forbid.sh: unannotated allocation in a hot-loop module (recycle via the scratch layer, or annotate '// alloc-ok: <reason>'):" >&2
    printf '%s' "$alloc_filtered" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "forbid.sh: clean"
fi
exit "$fail"
