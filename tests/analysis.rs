//! Pins the static analysis pass against the real engine: the cost
//! estimates of `dioph-analyze` are computed without compiling anything,
//! so these tests build the actual [`CompiledPair`] for every example and
//! generated workload pair and assert that
//!
//! * the static probe-space count equals `ProbeSpace::raw_len` of the
//!   compiled pair,
//! * the static LP unknown count equals the dimension of the compiled
//!   most-general probe's strict homogeneous system (Theorem 4.1), and
//! * the static row bound dominates both the polynomial's term count and
//!   the row count of the materialised system,
//!
//! and that the fragment classifier labels every committed example pair
//! and every `WorkloadKind` suite the way the engine's admission check
//! does.

use diophantus::containment::CompiledPair;
use diophantus::cq::{parse_program, ConjunctiveQuery};
use diophantus::workloads::{generate_pairs, WorkloadKind};
use diophantus::{classify_pair, estimate_cost, FragmentClass};

const ALL_KINDS: [WorkloadKind; 6] = [
    WorkloadKind::Specialization { atoms: 4 },
    WorkloadKind::Inflated { atoms: 4 },
    WorkloadKind::Contained { atoms: 4 },
    WorkloadKind::Path { length: 2 },
    WorkloadKind::ExponentialMapping { mappings_log2: 1 },
    WorkloadKind::ThreeColorability { vertices: 5 },
];

const EXAMPLES: [&str; 3] = [
    "examples/workloads/section2.dl",
    "examples/workloads/section3.dl",
    "examples/workloads/probe_example.dl",
];

fn example_pairs(path: &str) -> Vec<(ConjunctiveQuery, ConjunctiveQuery)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let queries = parse_program(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(queries.len().is_multiple_of(2), "{path}: odd query count");
    let mut queries = queries.into_iter();
    let mut pairs = Vec::new();
    while let (Some(a), Some(b)) = (queries.next(), queries.next()) {
        pairs.push((a, b));
    }
    pairs
}

/// Asserts the static estimate against the dimensions the engine actually
/// materialises for one paper-decidable pair.
fn assert_estimate_matches_engine(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    label: &str,
) {
    let estimate = estimate_cost(containee, containing);
    let compiled = CompiledPair::new(containee.clone(), containing.clone())
        .unwrap_or_else(|e| panic!("{label}: engine rejected a paper-decidable pair: {e}"));

    // Probe space: the static count is exact.
    assert_eq!(
        estimate.probe_space,
        Some(compiled.probe_space().raw_len() as u128),
        "{label}: probe space"
    );

    // LP unknowns: exactly the dimension of the strict homogeneous system
    // built from the most-general probe's MPI.
    let probe = compiled.most_general();
    let system = probe.mpi().to_strict_system();
    assert_eq!(probe.dimension(), system.dimension(), "{label}: MPI vs system dimension");
    assert_eq!(estimate.lp_unknowns, probe.dimension() as u64, "{label}: LP unknowns");

    // Row bound: one system row per polynomial term, at most one term per
    // containment mapping — the static bound must dominate all three.
    let terms = probe.mpi().polynomial().term_count() as u128;
    assert!(
        estimate.lp_rows_bound >= terms,
        "{label}: row bound {} < {terms} polynomial terms",
        estimate.lp_rows_bound
    );
    assert!(
        estimate.lp_rows_bound >= system.len() as u128,
        "{label}: row bound {} < {} system rows",
        estimate.lp_rows_bound,
        system.len()
    );
    assert!(
        estimate.lp_rows_bound >= probe.mapping_count() as u128,
        "{label}: row bound {} < {} containment mappings",
        estimate.lp_rows_bound,
        probe.mapping_count()
    );
}

#[test]
fn example_workloads_classify_as_documented() {
    // Every committed example pair has a projection-free containee, so the
    // whole directory sits in the paper fragment — including section2
    // pairs 3 and 4, whose *containing* query q3 carries projections.
    for path in EXAMPLES {
        let pairs = example_pairs(path);
        assert!(!pairs.is_empty(), "{path}: no pairs");
        for (i, (containee, containing)) in pairs.iter().enumerate() {
            assert_eq!(
                classify_pair(containee, containing),
                FragmentClass::PaperDecidable,
                "{path} pair {}",
                i + 1
            );
        }
    }
}

#[test]
fn example_estimates_match_the_compiled_pair() {
    for path in EXAMPLES {
        for (i, (containee, containing)) in example_pairs(path).iter().enumerate() {
            assert_estimate_matches_engine(
                containee,
                containing,
                &format!("{path} pair {}", i + 1),
            );
        }
    }
}

#[test]
fn section3_estimates_are_exact() {
    // The paper's running example: the grounded containee has 3 distinct
    // atoms (unknowns u1, u2, u3) and the containing query's 2 existential
    // variables range over a 4-element active domain, bounding the mapping
    // count by 16. The engine's actual polynomial stays within the bound.
    let (containee, containing) =
        example_pairs("examples/workloads/section3.dl").into_iter().next().unwrap();
    let estimate = estimate_cost(&containee, &containing);
    assert_eq!(estimate.lp_unknowns, 3);
    assert_eq!(estimate.lp_rows_bound, 16);
    assert_eq!(estimate.probe_space, Some(16), "4-element domain, arity 2");

    let compiled = CompiledPair::new(containee, containing).unwrap();
    let probe = compiled.most_general();
    assert_eq!(probe.dimension(), 3);
    assert!(probe.mapping_count() <= 16);
    assert_eq!(compiled.probe_space().raw_len(), 16);
}

#[test]
fn generated_suites_classify_paper_decidable_with_matching_estimates() {
    // Every generator family emits projection-free containees by
    // construction; the classifier and the engine must agree on all of
    // them, and the static cost pass must match what the engine builds.
    for kind in ALL_KINDS {
        for pair in generate_pairs(kind, 3, 2019) {
            assert_eq!(
                classify_pair(&pair.containee, &pair.containing),
                FragmentClass::PaperDecidable,
                "{}",
                pair.label
            );
            assert_estimate_matches_engine(&pair.containee, &pair.containing, &pair.label);
        }
    }
}
