//! The `diophantus` workload CLI: parse datalog query pairs, decide set/bag
//! containment and equivalence, generate random workloads and time the
//! decision procedure. All the logic lives in [`diophantus::cli`]; run
//! `diophantus help` for usage.
//!
//! The binary installs a counting global allocator: every heap allocation
//! (alloc and the growth half of realloc; frees are not counted) bumps the
//! `alloc.heap.allocs` registry cell, which is how `bench --json` reports
//! *measured* heap allocations per probe next to the scratch-reuse
//! counters. One relaxed `fetch_add` per allocation is noise against the
//! allocator call itself; library consumers of `diophantus` are unaffected
//! (the allocator is installed here, in the binary crate, only).

use std::alloc::{GlobalAlloc, Layout, System};

/// Delegates to the system allocator, counting allocations into the
/// `dioph-obs` registry (the workspace's one sanctioned home for global
/// atomic state — `Counter::add` is a single relaxed `fetch_add`).
struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the registry bump neither allocates nor panics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        diophantus::obs::registry::ALLOC_HEAP_ALLOCS.incr();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        diophantus::obs::registry::ALLOC_HEAP_ALLOCS.incr();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        diophantus::obs::registry::ALLOC_HEAP_ALLOCS.incr();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(diophantus::cli::run(&args));
}
