//! Unions of conjunctive queries (UCQs).
//!
//! UCQs matter to the bag-containment story because Ioannidis & Ramakrishnan
//! proved that bag containment of UCQs is *undecidable* (by reduction from
//! the Diophantine inequality problem), in contrast to the positive result
//! for projection-free CQs that this workspace reproduces. The type is used
//! by the workload generators to build the polynomial-encoding query families
//! discussed in the paper's related-work section, and by the bag engine to
//! evaluate unions (the bag answer of a union is the *sum* of the disjuncts'
//! bag answers).

use core::fmt;

use crate::query::ConjunctiveQuery;

/// A union `q₁ ∪ … ∪ qₖ` of conjunctive queries of the same arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionOfConjunctiveQueries {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Builds a UCQ from its disjuncts.
    ///
    /// # Panics
    /// Panics if the list is empty or the disjuncts disagree on arity.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        assert!(!disjuncts.is_empty(), "a UCQ needs at least one disjunct");
        let arity = disjuncts[0].arity();
        assert!(
            disjuncts.iter().all(|d| d.arity() == arity),
            "all UCQ disjuncts must share the same arity"
        );
        UnionOfConjunctiveQueries { disjuncts }
    }

    /// Wraps a single CQ as a one-disjunct union.
    pub fn singleton(query: ConjunctiveQuery) -> Self {
        UnionOfConjunctiveQueries { disjuncts: vec![query] }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// The common arity of all disjuncts.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].arity()
    }

    /// `true` iff every disjunct is projection-free.
    pub fn is_projection_free(&self) -> bool {
        self.disjuncts.iter().all(ConjunctiveQuery::is_projection_free)
    }
}

impl fmt::Display for UnionOfConjunctiveQueries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f, " ;")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn cq(name: &str, arity: usize) -> ConjunctiveQuery {
        let head: Vec<Term> = (0..arity).map(|i| Term::var(format!("x{i}"))).collect();
        ConjunctiveQuery::from_atom_list(name, head.clone(), vec![Atom::new("R", head)])
    }

    #[test]
    fn construction_and_accessors() {
        let ucq = UnionOfConjunctiveQueries::new(vec![cq("a", 2), cq("b", 2)]);
        assert_eq!(ucq.disjuncts().len(), 2);
        assert_eq!(ucq.arity(), 2);
        assert!(ucq.is_projection_free());
        let single = UnionOfConjunctiveQueries::singleton(cq("a", 1));
        assert_eq!(single.arity(), 1);
    }

    #[test]
    #[should_panic(expected = "same arity")]
    fn arity_mismatch_is_rejected() {
        let _ = UnionOfConjunctiveQueries::new(vec![cq("a", 1), cq("b", 2)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_union_is_rejected() {
        let _ = UnionOfConjunctiveQueries::new(vec![]);
    }

    #[test]
    fn display_joins_disjuncts() {
        let ucq = UnionOfConjunctiveQueries::new(vec![cq("a", 1), cq("b", 1)]);
        let s = ucq.to_string();
        assert!(s.contains("a(x0)"));
        assert!(s.contains(";"));
        assert!(s.contains("b(x0)"));
    }
}
