//! Allocation-regression gate for the zero-allocation probe loop.
//!
//! This test binary installs the same kind of counting global allocator as
//! the `diophantus` binary (every alloc/realloc bumps the
//! `alloc.heap.allocs` registry cell) and replays the E4 path workload —
//! the sweep the allocation-discipline work was measured on. With the
//! compilation cache warm, deciding thousands of probes through the
//! scratch-memory discipline must stay under a pinned per-probe allocation
//! bound; a regression that reintroduces per-probe heap traffic fails here
//! long before it shows up in bench numbers.

use std::alloc::{GlobalAlloc, Layout, System};

use diophantus::containment::{Algorithm, BagContainmentDecider, CompiledPair};
use diophantus::workloads::suite::path_self_containment;

/// Delegates to the system allocator, counting allocations into the
/// `dioph-obs` registry (mirrors the allocator installed by the
/// `diophantus` binary).
struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the registry bump neither allocates nor panics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        diophantus::obs::registry::ALLOC_HEAP_ALLOCS.incr();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        diophantus::obs::registry::ALLOC_HEAP_ALLOCS.incr();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        diophantus::obs::registry::ALLOC_HEAP_ALLOCS.incr();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warm_probe_loop_stays_under_the_allocation_bound() {
    // The E4 containee-scaling instance benchmarked in ROADMAP.md: the
    // length-4 path query against itself, whose probe space has 5^5 = 3125
    // probe tuples, decided with the all-probes algorithm.
    let (containee, containing) = path_self_containment(4);
    let pair = CompiledPair::new(containee, containing).expect("the path pair is decidable");
    let decider = BagContainmentDecider::new(Algorithm::AllProbes);

    // First decision warms the lazy probe-compilation cache (bench repeat
    // loops amortise this the same way); the measured run then covers the
    // decision procedure itself.
    let verdict = decider.decide_pair(&pair).expect("decidable");
    assert!(verdict.holds(), "the path pair is contained by construction");

    let before = diophantus::obs::snapshot();
    decider.decide_pair(&pair).expect("decidable");
    let delta = diophantus::obs::snapshot().since(&before);

    let probes = delta.get("containment.probes.decided").unwrap_or(0);
    let allocs = delta.get("alloc.heap.allocs").unwrap_or(0);
    assert_eq!(probes, 3125, "the warm run must decide the full probe space");
    let per_probe = allocs as f64 / probes as f64;
    // The pre-discipline baseline measured ~76 heap allocations per probe on
    // this workload; the scratch-threaded loop runs well under 8. The bound
    // leaves headroom for allocator-pattern jitter while still catching any
    // reintroduced per-probe allocation (each costs +1.0 here).
    assert!(
        per_probe < 8.0,
        "allocation regression: {allocs} heap allocs over {probes} probes ({per_probe:.1}/probe)"
    );
    // The scratch actually served the loop: all but the first probe of the
    // pair reused warmed buffers.
    assert_eq!(delta.get("alloc.scratch.reuses"), Some(3124));
}
