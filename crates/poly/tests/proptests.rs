//! Property-based tests for monomials, polynomials and MPIs.

use dioph_arith::Natural;
use dioph_linalg::FeasibilityEngine;
use dioph_poly::{Monomial, Mpi, OneDimMpi, Polynomial};
use proptest::prelude::*;

fn nat(v: u64) -> Natural {
    Natural::from(v)
}

fn monomial_strategy(dim: usize) -> impl Strategy<Value = Monomial> {
    proptest::collection::vec(0u64..5, dim).prop_map(Monomial::new)
}

fn polynomial_strategy(dim: usize) -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec((1u64..4, monomial_strategy(dim)), 0..6).prop_map(move |terms| {
        Polynomial::from_terms(dim, terms.into_iter().map(|(c, m)| (nat(c), m)))
    })
}

fn point_strategy(dim: usize) -> impl Strategy<Value = Vec<Natural>> {
    proptest::collection::vec(0u64..6, dim).prop_map(|v| v.into_iter().map(nat).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Monomial multiplication is evaluation-homomorphic: (m1·m2)(ξ) = m1(ξ)·m2(ξ).
    #[test]
    fn monomial_mul_is_pointwise_product(
        m1 in monomial_strategy(4),
        m2 in monomial_strategy(4),
        point in point_strategy(4),
    ) {
        let lhs = m1.mul(&m2).evaluate(&point);
        let rhs = &m1.evaluate(&point) * &m2.evaluate(&point);
        prop_assert_eq!(lhs, rhs);
    }

    /// Monomial degree is additive under multiplication and weighted degree
    /// is linear in the weights.
    #[test]
    fn monomial_degree_laws(m1 in monomial_strategy(4), m2 in monomial_strategy(4)) {
        prop_assert_eq!(m1.mul(&m2).degree(), m1.degree() + m2.degree());
        let ones = vec![Natural::one(); 4];
        prop_assert_eq!(m1.weighted_degree(&ones), nat(m1.degree()));
    }

    /// Polynomial evaluation is a ring homomorphism at every point:
    /// (P+Q)(ξ) = P(ξ)+Q(ξ) and (P·Q)(ξ) = P(ξ)·Q(ξ).
    #[test]
    fn polynomial_evaluation_is_a_homomorphism(
        p in polynomial_strategy(3),
        q in polynomial_strategy(3),
        point in point_strategy(3),
    ) {
        let mut sum = p.clone();
        sum.add_assign(&q);
        prop_assert_eq!(sum.evaluate(&point), &p.evaluate(&point) + &q.evaluate(&point));
        let prod = p.mul(&q);
        prop_assert_eq!(prod.evaluate(&point), &p.evaluate(&point) * &q.evaluate(&point));
    }

    /// The coefficient sum equals the value at the all-ones point.
    #[test]
    fn coefficient_sum_is_value_at_ones(p in polynomial_strategy(3)) {
        let ones = vec![Natural::one(); 3];
        prop_assert_eq!(p.coefficient_sum(), p.evaluate(&ones));
    }

    /// MPI decision soundness: whatever witness the solver returns solves the
    /// MPI, and both feasibility engines agree on solvability.
    #[test]
    fn mpi_witnesses_are_sound_and_engines_agree(
        poly in polynomial_strategy(3),
        mono_exp in proptest::collection::vec(1u64..5, 3),
    ) {
        let mpi = Mpi::new(poly, Monomial::new(mono_exp));
        let simplex = mpi.has_diophantine_solution(FeasibilityEngine::Simplex).unwrap();
        let fm = mpi.has_diophantine_solution(FeasibilityEngine::FourierMotzkin).unwrap();
        prop_assert_eq!(simplex, fm, "engines disagree on {}", mpi);
        match mpi.diophantine_solution(FeasibilityEngine::Simplex).unwrap() {
            Some(witness) => {
                prop_assert!(simplex);
                prop_assert!(mpi.is_solution(&witness), "witness {:?} does not solve {}", witness, mpi);
            }
            None => prop_assert!(!simplex),
        }
    }

    /// MPI decision completeness (bounded): if exhaustive search over a small
    /// grid finds a solution, the decision procedure must also report one.
    #[test]
    fn mpi_decision_agrees_with_bounded_search(
        poly in polynomial_strategy(2),
        mono_exp in proptest::collection::vec(1u64..4, 2),
    ) {
        let mpi = Mpi::new(poly, Monomial::new(mono_exp));
        let mut brute_force = false;
        'outer: for a in 0u64..8 {
            for b in 0u64..8 {
                if mpi.is_solution(&[nat(a), nat(b)]) {
                    brute_force = true;
                    break 'outer;
                }
            }
        }
        let decided = mpi.has_diophantine_solution(FeasibilityEngine::Simplex).unwrap();
        if brute_force {
            prop_assert!(decided, "grid found a solution but the decision procedure says unsolvable: {}", mpi);
        }
        // (The converse need not be checked: a solution may lie outside the grid.)
    }

    /// Proposition 4.1 on arbitrary MPIs with a non-zero polynomial side:
    /// neither the all-zeros nor the all-ones vector is ever a solution.
    #[test]
    fn proposition_4_1_holds(
        poly in polynomial_strategy(3).prop_filter("non-zero", |p| !p.is_zero()),
        mono_exp in proptest::collection::vec(1u64..5, 3),
    ) {
        let mpi = Mpi::new(poly, Monomial::new(mono_exp));
        prop_assert!(!mpi.is_solution(&vec![Natural::zero(); 3]));
        prop_assert!(!mpi.is_solution(&vec![Natural::one(); 3]));
    }

    /// Lemma 4.1 for one-dimensional MPIs: solvability coincides with the
    /// degree criterion, and the smallest solution (when it exists) solves it.
    #[test]
    fn lemma_4_1_one_dimensional(
        terms in proptest::collection::vec((1u64..4, 0u64..6), 1..5),
        mono_exp in 1u64..7,
    ) {
        let one_dim = OneDimMpi::new(
            terms.into_iter().map(|(c, e)| (nat(c), nat(e))).collect(),
            nat(mono_exp),
        );
        let solvable_by_degree = one_dim.polynomial_degree() < nat(mono_exp);
        prop_assert_eq!(one_dim.is_solvable(), solvable_by_degree);
        match one_dim.smallest_solution() {
            Some(u) => {
                prop_assert!(one_dim.is_solvable());
                prop_assert!(one_dim.is_solution(&u));
                // Minimality: no smaller positive value solves it.
                let mut smaller = Natural::one();
                while smaller < u {
                    prop_assert!(!one_dim.is_solution(&smaller));
                    smaller = &smaller + &Natural::one();
                }
            }
            None => prop_assert!(!one_dim.is_solvable()),
        }
    }
}
