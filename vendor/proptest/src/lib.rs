//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of proptest the workspace's five property suites
//! use: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, `Just`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, [`collection::vec`], weighted [`prop_oneof!`], and the
//! [`proptest!`] test macro with `ProptestConfig::with_cases` and
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with the generated values in the
//!   assertion message;
//! * generation is deterministic: the RNG is seeded from the test's module
//!   path and name, so failures reproduce exactly on re-run;
//! * `prop_filter` / `prop_assume!` rejections are retried with a global cap
//!   rather than tracked per-strategy.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The test driver: RNG, configuration and case-level control flow.

    /// A deterministic SplitMix64 generator driving all value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test's name).
        pub fn from_seed_str(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns the next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// A uniform draw from `[0, bound)` (`bound` = 0 means the full
        /// 128-bit domain).
        pub fn below(&mut self, bound: u128) -> u128 {
            let raw = self.next_u128();
            if bound == 0 {
                raw
            } else {
                raw % bound
            }
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a single test case did not produce a verdict.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be re-drawn.
        Reject,
    }

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// The number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing function.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects (and re-draws) values for which `f` returns false.
        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.into(), f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: String,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive candidates", self.reason)
        }
    }

    /// A weighted union of same-valued strategies (the engine of
    /// `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight as u128) as u64;
            for (weight, strategy) in &self.arms {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weight bookkeeping is exhaustive")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size band for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max: range.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange { min: *range.start(), max: *range.end() }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Builds a weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case (it is re-drawn, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` accepted random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config = $config;
            let strategies = ($($strategy,)+);
            let mut rng = $crate::test_runner::TestRng::from_seed_str(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(_) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(256).max(65_536),
                            "too many prop_assume!/filter rejections in {}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 3u64..10, w in -5i64..=5) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-5..=5).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_size(xs in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_and_assume(v in prop_oneof![
            2 => (0u32..10).prop_map(|x| x * 2),
            1 => Just(101u32),
        ]) {
            prop_assume!(v != 101);
            prop_assert!(v % 2 == 0 && v < 20);
        }

        #[test]
        fn flat_map_and_filter(
            xs in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..5, n)),
            odd in (0u32..100).prop_filter("odd", |x| x % 2 == 1),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(odd % 2 == 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_seed_str("x");
        let mut b = crate::test_runner::TestRng::from_seed_str("x");
        assert_eq!(a.next_u128(), b.next_u128());
    }
}
