//! Direct use of the Diophantine layer: Monomial–Polynomial Inequalities,
//! the Theorem 4.1 reduction, both feasibility engines, and the encoding of
//! polynomials as unions of conjunctive queries.
//!
//! Run with `cargo run --example diophantine_lab`.

use diophantus::linalg::{FeasibilityEngine, StrictHomogeneousSystem};
use diophantus::poly::{Monomial, Mpi, OneDimGmpi, OneDimMpi, Polynomial};
use diophantus::workloads::polynomials::{
    assignment_to_star_bag, evaluate_ucq_on_star_bag, polynomial_to_ucq,
};
use diophantus::{Natural, Rational};

fn nat(v: u64) -> Natural {
    Natural::from(v)
}

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's running 3-MPI:  u1^7 + u1^5 u2^2 + u1^3 u3^4 < u1^2 u2 u3^3
    // ------------------------------------------------------------------
    let polynomial = Polynomial::from_terms(
        3,
        [
            (nat(1), Monomial::new(vec![7, 0, 0])),
            (nat(1), Monomial::new(vec![5, 2, 0])),
            (nat(1), Monomial::new(vec![3, 0, 4])),
        ],
    );
    let mpi = Mpi::new(polynomial.clone(), Monomial::new(vec![2, 1, 3]));
    println!("MPI: {mpi}");

    let system = mpi.to_strict_system();
    println!("\nTheorem 4.1 system (one row per polynomial monomial):");
    for row in system.rows() {
        let rendered: Vec<String> =
            row.to_dense_vec().iter().map(std::string::ToString::to_string).collect();
        println!("  ({}) · ε > 0", rendered.join(", "));
    }

    for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
        let direction = system.natural_solution(engine).expect("within budget");
        println!("\n{engine:?} direction ε: {direction:?}");
    }

    let witness = mpi
        .diophantine_solution(FeasibilityEngine::Simplex)
        .expect("within budget")
        .expect("solvable");
    println!("\nextracted Diophantine solution ξ: {witness:?}");
    println!("  P(ξ) = {}", mpi.polynomial().evaluate(&witness));
    println!("  M(ξ) = {}", mpi.monomial().evaluate(&witness));
    assert!(mpi.is_solution(&witness));

    // The paper's own solutions.
    for point in [[nat(1), nat(4), nat(3)], [nat(1), nat(9), nat(3)]] {
        println!(
            "  paper solution {:?}: P = {}, M = {}",
            point.iter().map(Natural::to_decimal_string).collect::<Vec<_>>(),
            mpi.polynomial().evaluate(&point),
            mpi.monomial().evaluate(&point),
        );
        assert!(mpi.is_solution(&point));
    }

    // ------------------------------------------------------------------
    // 2. An unsolvable MPI and Lemma 4.1 in one dimension.
    // ------------------------------------------------------------------
    let unsolvable = Mpi::new(
        Polynomial::from_terms(
            1,
            [(nat(1), Monomial::new(vec![4])), (nat(1), Monomial::new(vec![2]))],
        ),
        Monomial::new(vec![4]),
    );
    println!("\nunsolvable MPI: {unsolvable}");
    println!(
        "  has Diophantine solution? {}",
        unsolvable.has_diophantine_solution(FeasibilityEngine::Simplex).expect("within budget")
    );

    let one_dim = OneDimMpi::new(vec![(nat(2), nat(4)), (nat(1), nat(0))], nat(5));
    println!("\nLemma 4.1 on {one_dim}:");
    println!("  deg(P) = {}, deg(M) = {}", one_dim.polynomial_degree(), one_dim.monomial_degree());
    println!("  smallest solution: {:?}", one_dim.smallest_solution());

    let gmpi = OneDimGmpi::new(
        vec![(Rational::from(1), Rational::from_i64s(7, 2))],
        Rational::from_i64s(15, 4),
    );
    println!("\ngeneralized (rational-exponent) 1-GMPI {gmpi}:");
    println!("  solvable per the degree criterion? {}", gmpi.is_solvable());

    // ------------------------------------------------------------------
    // 3. Polynomials as unions of conjunctive queries (the bridge to the
    //    Ioannidis–Ramakrishnan undecidability construction for UCQs).
    // ------------------------------------------------------------------
    let ucq = polynomial_to_ucq(&polynomial, "U");
    println!(
        "\nthe polynomial side encoded as a Boolean UCQ ({} disjuncts):",
        ucq.disjuncts().len()
    );
    println!("{ucq}");
    for assignment in [vec![nat(1), nat(4), nat(3)], vec![nat(2), nat(3), nat(5)]] {
        let bag = assignment_to_star_bag(&assignment, "U");
        let via_queries = evaluate_ucq_on_star_bag(&ucq, &bag);
        let direct = polynomial.evaluate(&assignment);
        println!(
            "  P({}) = {} (direct) = {} (as a UCQ bag answer)",
            assignment.iter().map(Natural::to_decimal_string).collect::<Vec<_>>().join(", "),
            direct,
            via_queries
        );
        assert_eq!(via_queries, direct);
    }

    // ------------------------------------------------------------------
    // 4. A tiny ad-hoc system solved with both engines, as a sanity check
    //    that they agree.
    // ------------------------------------------------------------------
    let mut system = StrictHomogeneousSystem::new(2);
    system.push_row_i64(&[2, -1]);
    system.push_row_i64(&[-1, 2]);
    let a = system.is_feasible(FeasibilityEngine::Simplex).expect("within budget");
    let b = system.is_feasible(FeasibilityEngine::FourierMotzkin).expect("within budget");
    println!("\nengines agree on a 2-unknown system: {a} == {b}");
    assert_eq!(a, b);
}
