//! Pipeline phase spans.
//!
//! The decide pipeline has six real phases — parse → check → compile →
//! probe loop → LP → merge — and each instrumented region opens a
//! [`span`] over its [`Phase`]. Spans aggregate into per-phase wall-clock
//! and invocation counts (read with [`snapshot`]), and, when tracing is
//! enabled, also become per-thread Chrome trace events.
//!
//! Timing is **off by default**: a span on a disabled recorder takes one
//! relaxed load and no clock read, so instrumented hot paths (the LP, the
//! per-probe loop) cost nothing unless the user asked for `--metrics` or
//! `--trace-out`. Phases nest (an `lp` span runs inside a `probe` span), so
//! per-phase wall-clocks overlap and do not sum to the run's wall-clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::trace;

/// One pipeline phase. The numeric order is the pipeline order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Datalog parsing of input sources.
    Parse,
    /// Pre-compilation lint/fragment analysis.
    Check,
    /// MPI compilation (containment-mapping enumeration and assembly).
    Compile,
    /// The per-pair probe loop (sequential or pooled).
    Probe,
    /// LP feasibility of the strict homogeneous systems.
    Lp,
    /// Result merging and in-order emission.
    Merge,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] =
        [Phase::Parse, Phase::Check, Phase::Compile, Phase::Probe, Phase::Lp, Phase::Merge];

    /// The stable phase name used in metrics output and trace events.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Compile => "compile",
            Phase::Probe => "probe",
            Phase::Lp => "lp",
            Phase::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

static TIMING: AtomicBool = AtomicBool::new(false);
static WALL_NS: [AtomicU64; 6] = [const { AtomicU64::new(0) }; 6];
static CALLS: [AtomicU64; 6] = [const { AtomicU64::new(0) }; 6];

/// Turns span recording on or off (the CLI enables it for `--metrics` and
/// `--trace-out` runs).
pub fn set_timing(enabled: bool) {
    TIMING.store(enabled, Ordering::Relaxed);
}

/// `true` while spans are being recorded.
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// An open span over one phase; records on drop. Obtain with [`span`].
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let i = self.phase.index();
        let elapsed = u64::try_from(end.duration_since(start).as_nanos()).unwrap_or(u64::MAX);
        WALL_NS[i].fetch_add(elapsed, Ordering::Relaxed);
        CALLS[i].fetch_add(1, Ordering::Relaxed);
        trace::record(self.phase.name(), start, end);
    }
}

/// Opens a span over `phase`; hold the guard for the duration of the work.
/// Inert (no clock read) while timing is disabled.
#[must_use = "a span records the region between its creation and its drop"]
pub fn span(phase: Phase) -> Span {
    let start = timing_enabled().then(Instant::now);
    Span { phase, start }
}

/// Aggregated numbers for one phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Completed spans.
    pub calls: u64,
    /// Total wall-clock across those spans, in nanoseconds (overlapping:
    /// nested phases both count the shared time).
    pub wall_ns: u64,
}

/// A point-in-time reading of every phase, in pipeline order.
pub fn snapshot() -> [PhaseStat; 6] {
    Phase::ALL.map(|phase| PhaseStat {
        phase,
        calls: CALLS[phase.index()].load(Ordering::Relaxed),
        wall_ns: WALL_NS[phase.index()].load(Ordering::Relaxed),
    })
}

/// Per-phase deltas between two [`snapshot`]s (saturating).
pub fn since(later: &[PhaseStat; 6], earlier: &[PhaseStat; 6]) -> [PhaseStat; 6] {
    let mut out = *later;
    for (slot, before) in out.iter_mut().zip(earlier) {
        debug_assert_eq!(slot.phase, before.phase);
        slot.calls = slot.calls.saturating_sub(before.calls);
        slot.wall_ns = slot.wall_ns.saturating_sub(before.wall_ns);
    }
    out
}

/// Resets every phase aggregate to zero (benches and tests).
pub fn reset() {
    for i in 0..Phase::ALL.len() {
        WALL_NS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable_and_in_pipeline_order() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["parse", "check", "compile", "probe", "lp", "merge"]);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        // The suite shares process-global state: assert on deltas, and only
        // while timing stays off (other tests may enable it briefly).
        let before = snapshot();
        if timing_enabled() {
            return;
        }
        drop(span(Phase::Merge));
        let delta = since(&snapshot(), &before);
        assert_eq!(delta[5].calls, 0, "a disabled span must not count");
    }

    #[test]
    fn enabled_spans_aggregate_calls_and_wall_clock() {
        let before = snapshot();
        set_timing(true);
        {
            let _outer = span(Phase::Probe);
            let _inner = span(Phase::Lp);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_timing(false);
        let delta = since(&snapshot(), &before);
        let probe = delta.iter().find(|s| s.phase == Phase::Probe).unwrap();
        let lp = delta.iter().find(|s| s.phase == Phase::Lp).unwrap();
        assert!(probe.calls >= 1);
        assert!(lp.calls >= 1);
        assert!(probe.wall_ns > 0, "the span slept, so wall-clock must move");
    }
}
