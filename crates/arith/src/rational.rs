//! Exact rational numbers with arbitrary-precision numerator and denominator.
//!
//! [`Rational`] keeps its big-integer shape (`Integer` numerator, `Natural`
//! denominator, always in lowest terms), but every field operation first
//! tries a **machine-word fast path**: when both operands have an `i64`
//! numerator and a `u64` denominator, the cross-multiplication is done in
//! checked `i128`/`u128` arithmetic and the result reduced with a binary GCD
//! on machine words — no heap allocation anywhere. Only when an intermediate
//! product or sum cannot be represented does the operation fall back to the
//! exact big path. The fallback frequency is observable through
//! [`crate::stats`].

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

use crate::integer::{Integer, ParseIntegerError, Sign};
use crate::natural::Natural;
use crate::stats;

/// An exact rational number, kept in lowest terms with a strictly positive
/// denominator.
///
/// # Examples
///
/// ```
/// use dioph_arith::Rational;
///
/// let a = Rational::new(1.into(), 3u64.into());
/// let b = Rational::new(1.into(), 6u64.into());
/// assert_eq!(&a + &b, Rational::new(1.into(), 2u64.into()));
/// assert!(a > b);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    /// Numerator; carries the sign of the whole value.
    numer: Integer,
    /// Denominator; always strictly positive and coprime with the numerator.
    denom: Natural,
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

/// Binary GCD on `u128` (`gcd(0, x) = x`).
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

impl Rational {
    /// The rational zero.
    pub const fn zero() -> Self {
        Rational { numer: Integer::zero(), denom: Natural::one() }
    }

    /// The rational one.
    pub const fn one() -> Self {
        Rational { numer: Integer::one(), denom: Natural::one() }
    }

    /// Constructs `numer / denom` in lowest terms.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    pub fn new(numer: Integer, denom: Natural) -> Self {
        assert!(!denom.is_zero(), "rational with zero denominator");
        let mut r = Rational { numer, denom };
        r.reduce();
        r
    }

    /// Constructs the rational `n / d` from machine integers.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    pub fn from_i64s(n: i64, d: i64) -> Self {
        assert!(d != 0, "rational with zero denominator");
        let n = if d < 0 { -(n as i128) } else { n as i128 };
        Rational::from_machine(n, d.unsigned_abs() as u128)
    }

    /// Constructs an integer-valued rational.
    pub fn from_integer(n: Integer) -> Self {
        Rational { numer: n, denom: Natural::one() }
    }

    /// Builds the reduced rational `n / d` from wide machine words
    /// (`d` must be non-zero). This is the landing pad of every fast path:
    /// one binary GCD on machine words, no heap allocation unless the
    /// reduced parts themselves exceed a word.
    fn from_machine(n: i128, d: u128) -> Self {
        debug_assert!(d != 0);
        let na = n.unsigned_abs();
        let g = gcd_u128(na, d);
        let (na, d) = (na / g, d / g);
        let magnitude = Integer::from(na);
        let numer = if n < 0 { -magnitude } else { magnitude };
        Rational { numer, denom: Natural::from(d) }
    }

    /// Machine-word view: `Some((numerator, denominator))` when both parts
    /// fit, i.e. when the value is on the small path.
    fn small_parts(&self) -> Option<(i64, u64)> {
        Some((self.numer.to_i64()?, self.denom.to_u64()?))
    }

    /// Numerator (sign-carrying, in lowest terms).
    pub fn numer(&self) -> &Integer {
        &self.numer
    }

    /// Denominator (strictly positive, in lowest terms).
    pub fn denom(&self) -> &Natural {
        &self.denom
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    /// `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.numer.is_one() && self.denom.is_one()
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer.is_positive()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }

    /// `true` iff the value is a (possibly negative) integer.
    pub fn is_integer(&self) -> bool {
        self.denom.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.numer.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { numer: self.numer.abs(), denom: self.denom.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        let numer = Integer::from_sign_magnitude(self.numer.sign(), self.denom.clone());
        Rational { numer, denom: self.numer.magnitude() }
    }

    /// Floor: greatest integer not larger than the value.
    pub fn floor(&self) -> Integer {
        let (q, r) = self.numer.div_rem(&Integer::from(self.denom.clone()));
        if r.is_zero() || !self.numer.is_negative() {
            q
        } else {
            q - Integer::one()
        }
    }

    /// Ceiling: least integer not smaller than the value.
    pub fn ceil(&self) -> Integer {
        -((-self).floor())
    }

    /// Lossy conversion to `f64` for reporting purposes only.
    pub fn to_f64_lossy(&self) -> f64 {
        self.numer.to_f64_lossy() / self.denom.to_f64_lossy()
    }

    /// Raises the value to a non-negative integer power.
    pub fn pow(&self, exp: u64) -> Rational {
        Rational { numer: self.numer.pow(exp), denom: self.denom.pow(exp) }
    }

    fn reduce(&mut self) {
        if self.numer.is_zero() {
            self.denom = Natural::one();
            return;
        }
        if let Some((n, d)) = self.small_parts() {
            *self = Rational::from_machine(n as i128, d as u128);
            return;
        }
        let mag = self.numer.magnitude();
        let g = mag.gcd(&self.denom);
        if !g.is_one() {
            self.numer = Integer::from_sign_magnitude(self.numer.sign(), &mag / &g);
            self.denom = &self.denom / &g;
        }
    }
}

impl From<Integer> for Rational {
    fn from(n: Integer) -> Self {
        Rational::from_integer(n)
    }
}

impl From<Natural> for Rational {
    fn from(n: Natural) -> Self {
        Rational::from_integer(Integer::from(n))
    }
}

impl From<&Integer> for Rational {
    fn from(n: &Integer) -> Self {
        Rational::from_integer(n.clone())
    }
}

impl From<&Natural> for Rational {
    fn from(n: &Natural) -> Self {
        Rational::from_integer(Integer::from(n))
    }
}

macro_rules! impl_from_prim {
    ($($t:ty),*) => {
        $(impl From<$t> for Rational {
            fn from(v: $t) -> Self {
                Rational::from_integer(Integer::from(v))
            }
        })*
    };
}

impl_from_prim!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize);

/// Error produced when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRationalError {
    /// The numerator or denominator failed to parse as an integer.
    Component(ParseIntegerError),
    /// The denominator was zero.
    ZeroDenominator,
    /// The denominator was negative (use a signed numerator instead).
    NegativeDenominator,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRationalError::Component(e) => write!(f, "invalid rational literal: {e}"),
            ParseRationalError::ZeroDenominator => {
                write!(f, "rational literal with zero denominator")
            }
            ParseRationalError::NegativeDenominator => {
                write!(f, "rational literal with negative denominator")
            }
        }
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"a"` or `"a/b"` where `a` is a signed and `b` an unsigned
    /// decimal literal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: Integer = s.parse().map_err(ParseRationalError::Component)?;
                Ok(Rational::from_integer(n))
            }
            Some((n, d)) => {
                let n: Integer = n.parse().map_err(ParseRationalError::Component)?;
                let d: Integer = d.parse().map_err(ParseRationalError::Component)?;
                if d.is_zero() {
                    return Err(ParseRationalError::ZeroDenominator);
                }
                if d.is_negative() {
                    return Err(ParseRationalError::NegativeDenominator);
                }
                Ok(Rational::new(n, d.into_magnitude()))
            }
        }
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            // |i64 × u64| < 2^127: the cross products always fit i128.
            return ((an as i128) * (bd as i128)).cmp(&((bn as i128) * (ad as i128)));
        }
        let lhs = &self.numer * &Integer::from(other.denom.clone());
        let rhs = &other.numer * &Integer::from(self.denom.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom.is_one() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { numer: -&self.numer, denom: self.denom.clone() }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { numer: -self.numer, denom: self.denom }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            // Each cross product fits i128; only the final sum can overflow,
            // in which case we fall through to the big path.
            let n1 = (an as i128) * (bd as i128);
            let n2 = (bn as i128) * (ad as i128);
            if let Some(n) = n1.checked_add(n2) {
                stats::record_small_hit();
                return Rational::from_machine(n, (ad as u128) * (bd as u128));
            }
        }
        stats::record_big_fallback();
        let numer = &(&self.numer * &Integer::from(rhs.denom.clone()))
            + &(&rhs.numer * &Integer::from(self.denom.clone()));
        let denom = &self.denom * &rhs.denom;
        Rational::new(numer, denom)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self += &rhs;
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            let n1 = (an as i128) * (bd as i128);
            let n2 = (bn as i128) * (ad as i128);
            if let Some(n) = n1.checked_sub(n2) {
                stats::record_small_hit();
                return Rational::from_machine(n, (ad as u128) * (bd as u128));
            }
        }
        stats::record_big_fallback();
        let numer = &(&self.numer * &Integer::from(rhs.denom.clone()))
            - &(&rhs.numer * &Integer::from(self.denom.clone()));
        let denom = &self.denom * &rhs.denom;
        Rational::new(numer, denom)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            // i64 × i64 and u64 × u64 always fit the wide words: the fast
            // path cannot overflow here.
            stats::record_small_hit();
            return Rational::from_machine(
                (an as i128) * (bn as i128),
                (ad as u128) * (bd as u128),
            );
        }
        stats::record_big_fallback();
        Rational::new(&self.numer * &rhs.numer, &self.denom * &rhs.denom)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            stats::record_small_hit();
            let n = (an as i128) * (bd as i128);
            let n = if bn < 0 { -n } else { n };
            return Rational::from_machine(n, (ad as u128) * (bn.unsigned_abs() as u128));
        }
        stats::record_big_fallback();
        self * &rhs.recip()
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_i64s(n, d)
    }

    /// A rational whose parts are forced beyond the machine-word range but
    /// whose value equals `n / d`: both components are scaled by the same
    /// huge factor and must cancel during reduction.
    fn big_route(n: i64, d: i64) -> Rational {
        let scale = Natural::from(2u64).pow(80);
        let sign_flip = d < 0;
        let numer = &Integer::from(n) * &Integer::from(scale.clone());
        let numer = if sign_flip { -numer } else { numer };
        Rational::new(numer, &Natural::from(d.unsigned_abs()) * &scale)
    }

    #[test]
    fn construction_reduces_to_lowest_terms() {
        let r = rat(6, 8);
        assert_eq!(r.numer(), &Integer::from(3));
        assert_eq!(r.denom(), &Natural::from(4u64));
        assert_eq!(rat(-6, 8), rat(-3, 4));
        assert_eq!(rat(6, -8), rat(-3, 4));
        assert_eq!(rat(0, 17), Rational::zero());
        assert_eq!(rat(0, 17).denom(), &Natural::one());
    }

    #[test]
    fn big_construction_reduces_to_the_same_canonical_form() {
        // Scaled construction must land on the identical (bit-identical,
        // since Eq is value equality on canonical forms) rational.
        for (n, d) in [(6, 8), (-6, 8), (0, 17), (1, 1), (i64::MAX, 2), (i64::MIN, 3)] {
            assert_eq!(big_route(n, d), rat(n, d), "{n}/{d}");
        }
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn field_operations() {
        assert_eq!(&rat(1, 2) + &rat(1, 3), rat(5, 6));
        assert_eq!(&rat(1, 2) - &rat(1, 3), rat(1, 6));
        assert_eq!(&rat(2, 3) * &rat(3, 4), rat(1, 2));
        assert_eq!(&rat(2, 3) / &rat(4, 9), rat(3, 2));
        assert_eq!(-&rat(2, 3), rat(-2, 3));
        assert_eq!(rat(-2, 3).recip(), rat(-3, 2));
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(-1, 2).pow(2), rat(1, 4));
    }

    #[test]
    fn fast_and_big_paths_agree() {
        // The same operations routed through the big path (operands with
        // huge unreduced components cancel to the same values) must yield
        // identical results.
        let cases = [(1i64, 2i64, 1i64, 3i64), (-7, 3, 5, 11), (6, 8, -6, 8), (0, 5, 3, 7)];
        for (an, ad, bn, bd) in cases {
            let (fa, fb) = (rat(an, ad), rat(bn, bd));
            let (ba, bb) = (big_route(an, ad), big_route(bn, bd));
            assert_eq!(&fa + &fb, &ba + &bb, "{an}/{ad} + {bn}/{bd}");
            assert_eq!(&fa - &fb, &ba - &bb, "{an}/{ad} - {bn}/{bd}");
            assert_eq!(&fa * &fb, &ba * &bb, "{an}/{ad} * {bn}/{bd}");
            if bn != 0 {
                assert_eq!(&fa / &fb, &ba / &bb, "{an}/{ad} / {bn}/{bd}");
            }
            assert_eq!(fa.cmp(&fb), ba.cmp(&bb), "{an}/{ad} <=> {bn}/{bd}");
        }
    }

    #[test]
    fn fast_path_overflow_falls_back_exactly() {
        let a = Rational::from(i64::MAX);
        let sum = &a + &a;
        assert_eq!(sum, Rational::from(2i128 * i64::MAX as i128));
        // A genuinely overflowing cross sum: both operands are
        // (2^63−1)/(2^64−1) (coprime, so machine-word eligible); each cross
        // product is (2^63−1)(2^64−1) ≈ 2^127 and their sum exceeds
        // i128::MAX, forcing the checked_add fallback to the big path.
        let b = Rational::new(Integer::from(i64::MAX), Natural::from(u64::MAX));
        assert_eq!(b.numer(), &Integer::from(i64::MAX), "operand must be machine-word");
        let sum = &b + &b;
        let expect =
            Rational::new(&Integer::from(2) * &Integer::from(i64::MAX), Natural::from(u64::MAX));
        assert_eq!(sum, expect);
        // And the mixed-denominator shape from before, for good measure.
        let sum = &a + &b;
        let expect = Rational::new(
            &(&Integer::from(i64::MAX) * &Integer::from(u64::MAX)) + &Integer::from(i64::MAX),
            Natural::from(u64::MAX),
        );
        assert_eq!(sum, expect);
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(-1, 2) < rat(1, 100));
        assert_eq!(rat(2, 4), rat(1, 2));
        assert!(rat(7, 1) > rat(20, 3));
        // Mixed representation comparison.
        assert!(big_route(1, 3) < rat(1, 2));
        assert!(Rational::from(u128::MAX) > rat(i64::MAX, 1));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(rat(7, 2).floor(), Integer::from(3));
        assert_eq!(rat(7, 2).ceil(), Integer::from(4));
        assert_eq!(rat(-7, 2).floor(), Integer::from(-4));
        assert_eq!(rat(-7, 2).ceil(), Integer::from(-3));
        assert_eq!(rat(6, 2).floor(), Integer::from(3));
        assert_eq!(rat(6, 2).ceil(), Integer::from(3));
        assert_eq!(Rational::zero().floor(), Integer::zero());
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), rat(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), rat(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), rat(5, 1));
        assert_eq!(rat(6, 8).to_string(), "3/4");
        assert_eq!(rat(5, 1).to_string(), "5");
        assert!("1/0".parse::<Rational>().is_err());
        assert!("1/-2".parse::<Rational>().is_err());
    }

    #[test]
    fn predicates() {
        assert!(rat(0, 5).is_zero());
        assert!(rat(3, 3).is_one());
        assert!(rat(1, 2).is_positive());
        assert!(rat(-1, 2).is_negative());
        assert!(rat(4, 2).is_integer());
        assert!(!rat(1, 2).is_integer());
        assert_eq!(rat(-3, 4).abs(), rat(3, 4));
    }

    #[test]
    fn lossy_f64() {
        assert!((rat(1, 3).to_f64_lossy() - 1.0 / 3.0).abs() < 1e-12);
        assert!((rat(-7, 2).to_f64_lossy() + 3.5).abs() < 1e-12);
    }
}
