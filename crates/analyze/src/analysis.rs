//! The analysis passes: per-query lints, per-pair fragment checks, and the
//! program-level driver behind `diophantus check`.

use std::collections::BTreeMap;

use dioph_cq::{line_column, parse_program_spanned, Span, SpannedQuery, Term};

use crate::classify::{classify_pair, FragmentClass};
use crate::cost::{estimate_cost, CostEstimate};
use crate::registry::{registered, LintConfig, Severity};

/// Advisory threshold for `D030 probe-space-blowup`: candidate-tuple counts
/// beyond this make `--algorithm all-probes` enumeration-bound (the default
/// most-general algorithm is unaffected).
pub const PROBE_SPACE_NOTE_THRESHOLD: u128 = 10_000;

/// Advisory threshold for `D031 lp-dimension-warning`, in bounded tableau
/// cells (`unknowns × rows`). Calibrated on the `lp_ablation` measurements
/// in the ROADMAP: systems around 20×60 cells took ≈1 s with rational
/// pivoting and 24×72 took seconds, so anything bounded past 1200 cells may
/// be a seconds-scale solve.
pub const LP_DIMENSION_NOTE_THRESHOLD: u128 = 1_200;

/// One emitted diagnostic: a stable code, the effective severity after
/// configuration, a message, and a source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable lint code (`D001`, …).
    pub code: &'static str,
    /// The lint's kebab-case name (`unsafe-query`, …).
    pub name: &'static str,
    /// Effective severity after `--deny/--allow/-W` configuration.
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// Name of the query the diagnostic concerns (empty for file-level
    /// diagnostics like `D000 syntax-error`).
    pub query: String,
    /// 1-based line of the primary span in the analyzed source.
    pub line: usize,
    /// 1-based column (in characters) of the primary span.
    pub column: usize,
    /// The primary byte span, when one exists (`D000` has only a point
    /// position reported by the parser).
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Renders the diagnostic in the CLI's one-line human format:
    /// `file:line:column: severity[code] name: message`.
    pub fn render(&self, file: &str) -> String {
        format!(
            "{file}:{}:{}: {}[{}] {}: {}",
            self.line, self.column, self.severity, self.code, self.name, self.message
        )
    }
}

/// The analysis of one `(containee, containing)` pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PairAnalysis {
    /// 1-based pair index in the program.
    pub index: usize,
    /// Name of the containee (left side of `⊑b`).
    pub containee: String,
    /// Name of the containing query (right side of `⊑b`).
    pub containing: String,
    /// The decidability-matrix cell the pair falls in.
    pub fragment: FragmentClass,
    /// Static cost bounds — present exactly for paper-decidable pairs.
    pub cost: Option<CostEstimate>,
    /// Diagnostics scoped to this pair, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

/// The analysis of a whole program (one source file or stdin stream).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProgramAnalysis {
    /// Program-level diagnostics (syntax errors, arity mismatches across
    /// queries, an unpaired trailing query).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pair analyses, in input order.
    pub pairs: Vec<PairAnalysis>,
}

impl ProgramAnalysis {
    /// All diagnostics — program-level first, then per pair in order.
    pub fn all_diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().chain(self.pairs.iter().flat_map(|p| p.diagnostics.iter()))
    }

    /// The worst emitted severity, if anything was emitted.
    pub fn max_severity(&self) -> Option<Severity> {
        self.all_diagnostics().map(|d| d.severity).max()
    }

    /// `(errors, warnings, notes)` counts over all diagnostics.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for d in self.all_diagnostics() {
            match d.severity {
                Severity::Error => counts.0 += 1,
                Severity::Warning => counts.1 += 1,
                Severity::Note | Severity::Allow => counts.2 += 1,
            }
        }
        counts
    }
}

/// Which side of `⊑b` a query sits on; several lints weaken (or only
/// apply) on one side.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    Containee,
    Containing,
}

struct Emitter<'a> {
    source: &'a str,
    config: &'a LintConfig,
    out: Vec<Diagnostic>,
}

impl<'a> Emitter<'a> {
    fn new(source: &'a str, config: &'a LintConfig) -> Self {
        Emitter { source, config, out: Vec::new() }
    }

    /// Emits `code` at its registered default severity.
    fn emit(&mut self, code: &'static str, query: &str, span: Span, message: String) {
        let lint = registered(code);
        self.emit_at(code, lint.default_severity, query, span, message);
    }

    /// Emits `code` at a situational severity (still subject to explicit
    /// `--deny/--allow/-W` overrides and `--deny warnings`).
    fn emit_at(
        &mut self,
        code: &'static str,
        situational: Severity,
        query: &str,
        span: Span,
        message: String,
    ) {
        let lint = registered(code);
        let severity = self.config.effective(lint, situational);
        if severity == Severity::Allow {
            return;
        }
        let (line, column) = line_column(self.source, span.start);
        self.out.push(Diagnostic {
            code,
            name: lint.name,
            severity,
            message,
            query: query.to_string(),
            line,
            column,
            span: Some(span),
        });
    }
}

fn sorted_join(names: &[String]) -> String {
    names.join(", ")
}

/// The engine-admission (fragment) lints for a query in `role` position,
/// in the exact order `validate_containee` checks them — empty body, then
/// projections, then safety — so the first emitted diagnostic always
/// matches the `ContainmentError` the engine would raise.
fn fragment_lints(emitter: &mut Emitter<'_>, sq: &SpannedQuery, role: Role) {
    let query = &sq.query;
    let name = query.name();
    if query.distinct_atom_count() == 0 {
        let severity = if role == Role::Containee { Severity::Error } else { Severity::Warning };
        emitter.emit_at(
            "D003",
            severity,
            name,
            sq.spans.span,
            format!("query {name} has an empty body"),
        );
        // An empty body has no variables: neither remaining check can fire.
        return;
    }
    if role == Role::Containee {
        let existential: Vec<String> = query.existential_variables().into_iter().collect();
        if !existential.is_empty() {
            let span =
                existential.first().and_then(|v| sq.variable_span(v)).unwrap_or(sq.spans.span);
            emitter.emit(
                "D002",
                name,
                span,
                format!(
                    "the containee must be projection-free; existential variables: {}",
                    sorted_join(&existential)
                ),
            );
        }
    }
    if !query.is_safe() {
        let body = query.body_variables();
        let missing: Vec<String> =
            query.head_variables().into_iter().filter(|v| !body.contains(v)).collect();
        let span =
            missing.first().and_then(|v| sq.head_variable_span(v)).unwrap_or(sq.spans.name_span);
        let severity = if role == Role::Containee { Severity::Error } else { Severity::Warning };
        emitter.emit_at(
            "D001",
            severity,
            name,
            span,
            format!(
                "query {name} is unsafe: head variables {} do not occur in the body",
                sorted_join(&missing)
            ),
        );
    }
}

/// Style lints that apply to any query regardless of position: `D010`
/// unused-variable, `D011` cartesian-product-body, `D013` duplicate-atom.
fn style_lints(emitter: &mut Emitter<'_>, sq: &SpannedQuery) {
    let name = sq.query.name().to_string();

    // D010: a body variable written exactly once in the whole query. (A
    // head variable missing from the body is D001, not D010.)
    let mut occurrences: BTreeMap<&str, (usize, Span)> = BTreeMap::new();
    let head_terms = sq.query.head().iter().zip(&sq.spans.head_term_spans);
    let body_terms =
        sq.spans.atoms.iter().flat_map(|occ| occ.atom.terms().iter().zip(&occ.term_spans));
    for (term, span) in head_terms.chain(body_terms) {
        if let Term::Var(v) = term {
            let entry = occurrences.entry(v.as_str()).or_insert((0, *span));
            entry.0 += 1;
        }
    }
    let head_vars = sq.query.head_variables();
    for (var, (count, span)) in &occurrences {
        if *count == 1 && !head_vars.contains(*var) {
            emitter.emit(
                "D010",
                &name,
                *span,
                format!("variable {var} occurs only once; it joins nothing"),
            );
        }
    }

    // D011: the body's variable-bearing atoms split into ≥ 2 groups that
    // share no variables (ground atoms join nothing and are ignored — the
    // three-colorability reduction legitimately conjoins a ground triangle
    // with a variable-bearing graph component).
    let with_vars: Vec<(usize, Vec<String>)> = sq
        .spans
        .atoms
        .iter()
        .enumerate()
        .filter_map(|(i, occ)| {
            let vars: Vec<String> = occ.atom.variables().into_iter().collect();
            if vars.is_empty() {
                None
            } else {
                Some((i, vars))
            }
        })
        .collect();
    if let Some((first, rest)) = with_vars.split_first() {
        // Grow the connected component of the first variable-bearing atom.
        let mut component_vars: std::collections::BTreeSet<String> =
            first.1.iter().cloned().collect();
        let mut pending: Vec<&(usize, Vec<String>)> = rest.iter().collect();
        loop {
            let (connected, disconnected): (Vec<_>, Vec<_>) = pending
                .into_iter()
                .partition(|(_, vars)| vars.iter().any(|v| component_vars.contains(v)));
            if connected.is_empty() {
                pending = disconnected;
                break;
            }
            for (_, vars) in &connected {
                component_vars.extend(vars.iter().cloned());
            }
            pending = disconnected;
        }
        if let Some((index, _)) = pending.first() {
            let occ = &sq.spans.atoms[*index];
            emitter.emit(
                "D011",
                &name,
                occ.span,
                format!(
                    "the body of {name} is a cartesian product: atom {} shares no variables \
                     with the atoms before it",
                    occ.atom
                ),
            );
        }
    }

    // D013: the same atom written several times; the parser accumulates
    // multiplicities silently, which is rarely what the author meant.
    let mut seen: BTreeMap<&dioph_cq::Atom, usize> = BTreeMap::new();
    for occ in &sq.spans.atoms {
        *seen.entry(&occ.atom).or_insert(0) += 1;
    }
    for occ in &sq.spans.atoms {
        // Report at the *second* occurrence of each duplicated atom.
        if seen.get(&occ.atom) == Some(&0) {
            continue;
        }
        let count = seen[&occ.atom];
        if count > 1 {
            let second = sq
                .spans
                .atoms
                .iter()
                .filter(|o| o.atom == occ.atom)
                .nth(1)
                .expect("count > 1 implies a second occurrence");
            let total: u64 =
                sq.spans.atoms.iter().filter(|o| o.atom == occ.atom).map(|o| o.multiplicity).sum();
            emitter.emit(
                "D013",
                &name,
                second.span,
                format!(
                    "atom {} is written {count} times; the multiplicities accumulate to {} \
                     (write {}^{total}(…) to make the bag explicit)",
                    occ.atom,
                    total,
                    occ.atom.relation()
                ),
            );
        }
        seen.insert(&occ.atom, 0);
    }
}

/// Program-level lint: `D012` predicate-arity-mismatch across all queries
/// of the program (heads included — a head predicate is not a body
/// relation, so only body atoms are compared).
fn arity_lints(emitter: &mut Emitter<'_>, queries: &[SpannedQuery]) {
    let mut first_use: BTreeMap<String, (usize, String, usize, usize)> = BTreeMap::new();
    for sq in queries {
        for occ in &sq.spans.atoms {
            let arity = occ.atom.terms().len();
            let (line, column) = line_column(emitter.source, occ.relation_span.start);
            match first_use.get(occ.atom.relation()) {
                None => {
                    first_use.insert(
                        occ.atom.relation().to_string(),
                        (arity, sq.query.name().to_string(), line, column),
                    );
                }
                Some((expected, query0, line0, column0)) => {
                    if arity != *expected {
                        let message = format!(
                            "relation {} is used with arity {arity}, but query {query0} uses \
                             it with arity {expected} (line {line0}, column {column0})",
                            occ.atom.relation()
                        );
                        emitter.emit("D012", sq.query.name(), occ.relation_span, message);
                    }
                }
            }
        }
    }
}

/// The engine-admission diagnostics for a query about to be used as a
/// **containee** — the static mirror of `validate_containee` in
/// `dioph-containment`, used by `decide`/`equiv`/`batch` to attach file,
/// line and column to what would otherwise be a span-less
/// `ContainmentError`. Returns only error-level diagnostics (the ones the
/// engine would reject), in the engine's check order.
pub fn containee_fragment_diagnostics(
    sq: &SpannedQuery,
    source: &str,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut emitter = Emitter::new(source, config);
    fragment_lints(&mut emitter, sq, Role::Containee);
    emitter.out.retain(|d| d.severity == Severity::Error);
    emitter.out
}

/// Analyzes already-parsed queries (with spans) against their `source`
/// text. Queries are paired consecutively, as everywhere in the CLI.
pub fn analyze_pairs(
    queries: &[SpannedQuery],
    source: &str,
    config: &LintConfig,
) -> ProgramAnalysis {
    let mut program = Emitter::new(source, config);
    arity_lints(&mut program, queries);
    if !queries.len().is_multiple_of(2) {
        let last = queries.last().expect("odd length is at least one");
        let message = format!(
            "the program holds {} queries, but they are decided in consecutive \
             (containee, containing) pairs; query {} is unpaired",
            queries.len(),
            last.query.name()
        );
        program.emit("D004", last.query.name(), last.spans.name_span, message);
    }

    let mut pairs = Vec::new();
    for (i, chunk) in queries.chunks_exact(2).enumerate() {
        let (containee, containing) = (&chunk[0], &chunk[1]);
        let mut emitter = Emitter::new(source, config);
        fragment_lints(&mut emitter, containee, Role::Containee);
        fragment_lints(&mut emitter, containing, Role::Containing);
        style_lints(&mut emitter, containee);
        style_lints(&mut emitter, containing);

        let fragment = classify_pair(&containee.query, &containing.query);
        let cost = fragment.engine_decidable().then(|| {
            let estimate = estimate_cost(&containee.query, &containing.query);
            if estimate.probe_space.is_some_and(|n| n > PROBE_SPACE_NOTE_THRESHOLD) {
                emitter.emit(
                    "D030",
                    containee.query.name(),
                    containee.spans.name_span,
                    format!(
                        "the probe space of {} has {} candidate tuples (> {}); \
                         --algorithm all-probes would enumerate them all, the default \
                         most-general algorithm does not",
                        containee.query.name(),
                        estimate.probe_space.expect("checked above"),
                        PROBE_SPACE_NOTE_THRESHOLD
                    ),
                );
            }
            if estimate.lp_cells_bound() > LP_DIMENSION_NOTE_THRESHOLD {
                emitter.emit(
                    "D031",
                    containee.query.name(),
                    containee.spans.name_span,
                    format!(
                        "the strict homogeneous system may reach {} unknowns × {} rows \
                         (> {} tableau cells); expect a seconds-scale LP solve",
                        estimate.lp_unknowns, estimate.lp_rows_bound, LP_DIMENSION_NOTE_THRESHOLD
                    ),
                );
            }
            estimate
        });

        pairs.push(PairAnalysis {
            index: i + 1,
            containee: containee.query.name().to_string(),
            containing: containing.query.name().to_string(),
            fragment,
            cost,
            diagnostics: emitter.out,
        });
    }

    ProgramAnalysis { diagnostics: program.out, pairs }
}

/// Parses and analyzes a source text in one step — the entry point behind
/// `diophantus check`. A parse failure is itself a diagnostic (`D000
/// syntax-error`) rather than an error return, so a linter driver can
/// treat every outcome uniformly.
pub fn analyze_source(source: &str, config: &LintConfig) -> ProgramAnalysis {
    match parse_program_spanned(source) {
        Ok(queries) => analyze_pairs(&queries, source, config),
        Err(e) => {
            let lint = registered("D000");
            ProgramAnalysis {
                diagnostics: vec![Diagnostic {
                    code: lint.code,
                    name: lint.name,
                    severity: config.effective(lint, lint.default_severity),
                    message: e.message().to_string(),
                    query: String::new(),
                    line: e.line(),
                    column: e.column(),
                    span: None,
                }],
                pairs: Vec::new(),
            }
        }
    }
}

/// Convenience for engine front-ends: the first engine-blocking diagnostic
/// of a containee, rendered as `line:column: error[code] name: message`
/// (relative positions — the caller prefixes the file name or job id).
pub fn first_fragment_error(containee: &SpannedQuery, source: &str) -> Option<String> {
    let config = LintConfig::new();
    containee_fragment_diagnostics(containee, source, &config).into_iter().next().map(|d| {
        format!("{}:{}: {}[{}] {}: {}", d.line, d.column, d.severity, d.code, d.name, d.message)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(source: &str) -> ProgramAnalysis {
        analyze_source(source, &LintConfig::new())
    }

    fn analyze_with(source: &str, f: impl FnOnce(&mut LintConfig)) -> ProgramAnalysis {
        let mut config = LintConfig::new();
        f(&mut config);
        analyze_source(source, &config)
    }

    #[test]
    fn clean_pair_has_no_diagnostics_and_a_cost_estimate() {
        let analysis = analyze(
            "q1(x1, x2) <- P^3(x2, x2), R^2(x1, x2).\n\
             q2(x1, x2) <- P^3(x2, x2), R^3(x1, x2).",
        );
        assert_eq!(analysis.max_severity(), None);
        assert_eq!(analysis.pairs.len(), 1);
        let pair = &analysis.pairs[0];
        assert_eq!(pair.fragment, FragmentClass::PaperDecidable);
        let cost = pair.cost.expect("paper-decidable pairs carry a cost estimate");
        assert_eq!(cost.probe_space, Some(4)); // |{x̂1, x̂2}|²
        assert_eq!(cost.lp_unknowns, 2);
    }

    #[test]
    fn d000_syntax_error_carries_the_parser_position() {
        let analysis = analyze("q(x <- R(x, x).");
        assert_eq!(analysis.pairs.len(), 0);
        let d = &analysis.diagnostics[0];
        assert_eq!(d.code, "D000");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!((d.line, d.column), (1, 5));
        assert_eq!(analysis.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn d001_unsafe_containee_points_at_the_head_variable() {
        let source = "q(x, z) <- R(x, x).\np(x, z) <- R(x, z).";
        let analysis = analyze(source);
        let d = analysis.pairs[0]
            .diagnostics
            .iter()
            .find(|d| d.code == "D001")
            .expect("unsafe containee fires D001");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("head variables z do not occur"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(source), "z");
        assert_eq!((d.line, d.column), (1, 6));
    }

    #[test]
    fn d001_is_a_warning_on_the_containing_side() {
        let source = "q(x) <- R(x, x).\np(x, z) <- R(x, x).";
        let analysis = analyze(source);
        let d = analysis.pairs[0]
            .diagnostics
            .iter()
            .find(|d| d.code == "D001")
            .expect("unsafe containing query still fires D001");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!((d.line, d.column), (2, 6));
        // --deny warnings promotes it.
        let analysis = analyze_with(source, super::super::registry::LintConfig::deny_warnings);
        assert_eq!(analysis.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn d002_points_at_the_first_existential_variable() {
        let source = "q(x) <- R(x, y1), S(y1, y0).\np(x) <- R(x, x).";
        let analysis = analyze(source);
        let d = analysis.pairs[0].diagnostics.first().expect("D002 fires");
        assert_eq!(d.code, "D002");
        // Existential variables are listed sorted (y0, y1); the span points
        // at the first listed one's first occurrence.
        assert!(d.message.contains("y0, y1"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(source), "y0");
        assert_eq!((d.line, d.column), (1, 25));
    }

    #[test]
    fn d003_empty_body_is_positional() {
        let analysis = analyze("q() <- true.\np() <- R('a', 'a').");
        let d = &analysis.pairs[0].diagnostics[0];
        assert_eq!((d.code, d.severity), ("D003", Severity::Error));
        assert!(d.message.contains("empty body"));
        // Containing side: a warning only.
        let analysis = analyze("q() <- R('a', 'a').\np() <- true.");
        let d = &analysis.pairs[0].diagnostics[0];
        assert_eq!((d.code, d.severity), ("D003", Severity::Warning));
    }

    #[test]
    fn d004_fires_on_unpaired_queries() {
        let analysis = analyze("q(x) <- R(x, x).\np(x) <- R(x, x).\nr(x) <- R(x, x).");
        let d = analysis.diagnostics.iter().find(|d| d.code == "D004").expect("odd count");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("query r is unpaired"), "{}", d.message);
        assert_eq!((d.line, d.column), (3, 1));
        // The complete pair is still analyzed.
        assert_eq!(analysis.pairs.len(), 1);
    }

    #[test]
    fn d010_is_allow_by_default_and_points_at_the_singleton() {
        let source = "q(x) <- R(x, y1), P(x, x).\np(x) <- R(x, x).";
        // Default: D002 fires (y1 existential), D010 stays silent.
        let analysis = analyze(source);
        assert!(analysis.pairs[0].diagnostics.iter().all(|d| d.code != "D010"));
        // Opted in with -W unused-variable.
        let analysis =
            analyze_with(source, |c| c.set("unused-variable", Severity::Warning).unwrap());
        let d = analysis.pairs[0]
            .diagnostics
            .iter()
            .find(|d| d.code == "D010")
            .expect("opted-in D010 fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("y1"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(source), "y1");
        assert_eq!((d.line, d.column), (1, 14));
    }

    #[test]
    fn d010_ignores_head_variables_and_repeated_variables() {
        // x occurs once in the body but is a head variable (that is D001
        // territory when missing, nothing when present once).
        let source = "q(x) <- R(x, y1), S(y1, y1).\np(x) <- R(x, x).";
        let analysis = analyze_with(source, |c| c.set("D010", Severity::Warning).unwrap());
        assert!(
            analysis.pairs[0].diagnostics.iter().all(|d| d.code != "D010"),
            "x is a head variable and y1 repeats: no D010"
        );
    }

    #[test]
    fn d011_fires_on_variable_disjoint_groups_and_skips_ground_atoms() {
        let source = "q(x, y) <- R(x, x), S(y, y).\np(x, y) <- R(x, y), S(y, x).";
        let analysis = analyze_with(source, |c| c.set("D011", Severity::Warning).unwrap());
        let d = analysis.pairs[0]
            .diagnostics
            .iter()
            .find(|d| d.code == "D011")
            .expect("disjoint body groups fire D011");
        assert_eq!(d.query, "q");
        assert_eq!(d.span.unwrap().slice(source), "S(y, y)");
        // A ground component does not count as a group: the 3-colorability
        // shape (ground triangle ∧ variable graph) stays clean.
        let threecol = "qt() <- E('a', 'b'), E('b', 'a').\n\
                        qtg() <- E('a', 'b'), E('b', 'a'), E(v0, v1), E(v1, v0).";
        let analysis = analyze_with(threecol, |c| c.set("D011", Severity::Warning).unwrap());
        assert!(
            analysis.pairs[0].diagnostics.iter().all(|d| d.code != "D011"),
            "ground atoms join nothing and must not split the body"
        );
    }

    #[test]
    fn d012_reports_the_conflicting_arity_and_the_first_use() {
        let source = "q(x) <- R(x, x).\np(x) <- R(x, x, x).";
        let analysis = analyze(source);
        let d = analysis.diagnostics.iter().find(|d| d.code == "D012").expect("arity clash");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.query, "p");
        assert!(d.message.contains("arity 3") && d.message.contains("arity 2"), "{}", d.message);
        assert!(d.message.contains("line 1, column 9"), "{}", d.message);
        assert_eq!((d.line, d.column), (2, 9));
    }

    #[test]
    fn d013_points_at_the_second_occurrence_and_sums_multiplicities() {
        let source = "q(x) <- R^2(x, x), S(x, x), R(x, x).\np(x) <- R(x, x).";
        let analysis = analyze(source);
        let d = analysis.pairs[0].diagnostics.iter().find(|d| d.code == "D013").expect("dup");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("written 2 times"), "{}", d.message);
        assert!(d.message.contains("accumulate to 3"), "{}", d.message);
        assert!(d.message.contains("R^3"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(source), "R(x, x)");
        assert_eq!((d.line, d.column), (1, 29));
        // Fires once per duplicated atom, not once per occurrence.
        assert_eq!(analysis.pairs[0].diagnostics.iter().filter(|d| d.code == "D013").count(), 1);
    }

    #[test]
    fn d030_notes_large_probe_spaces() {
        // 7 head variables over a 7-element domain: 7^7 = 823543 > 10000.
        let head = "x0, x1, x2, x3, x4, x5, x6";
        let body = "R(x0, x1), R(x1, x2), R(x2, x3), R(x3, x4), R(x4, x5), R(x5, x6)";
        let source = format!("q({head}) <- {body}.\np({head}) <- {body}.");
        let analysis = analyze(&source);
        let d = analysis.pairs[0].diagnostics.iter().find(|d| d.code == "D030").expect("note");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("823543"), "{}", d.message);
        // Notes do not fail the run: exit code stays 0.
        assert_eq!(analysis.max_severity().map(Severity::exit_code), Some(0));
    }

    #[test]
    fn d031_notes_large_lp_bounds() {
        // A path of length 6: 6 unknowns, existential-free containing side
        // bounds rows by atom images 6^6 = 46656; 6 × min(7^0 …) — use the
        // self-pair, whose bound is min(|adom|^0, 6^6) = 1? No: the path
        // self-pair has no existential variables, so bound_vars = 1. Use a
        // containing query with existentials instead.
        let source = "q(x0) <- R(x0, x0).\np(x0) <- R(x0, z0).";
        let analysis = analyze(source);
        assert!(analysis.pairs[0].diagnostics.iter().all(|d| d.code != "D031"));
        // Force the threshold with a wide containee and existential vars.
        let head: Vec<String> = (0..8).map(|i| format!("x{i}")).collect();
        let containee_body: Vec<String> = (0..7).map(|i| format!("R(x{i}, x{})", i + 1)).collect();
        let containing_body: Vec<String> = (0..7).map(|i| format!("R(z{i}, z{})", i + 1)).collect();
        let source = format!(
            "q({}) <- {}.\np({}) <- {}, {}.",
            head.join(", "),
            containee_body.join(", "),
            head.join(", "),
            containee_body.join(", "),
            containing_body.join(", ")
        );
        let analysis = analyze(&source);
        let d = analysis.pairs[0].diagnostics.iter().find(|d| d.code == "D031").expect("note");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("7 unknowns"), "{}", d.message);
    }

    #[test]
    fn containee_fragment_diagnostics_mirror_validate_containee_order() {
        use dioph_cq::parse_program_spanned;
        let config = LintConfig::new();
        // Empty body wins over everything (the body has no variables).
        let source = "e(x) <- true.";
        let queries = parse_program_spanned(source).unwrap();
        let ds = containee_fragment_diagnostics(&queries[0], source, &config);
        // An empty body with a head variable is *both* empty and unsafe;
        // the first diagnostic matches the engine's first error (D003).
        assert_eq!(ds[0].code, "D003");
        // Projections before safety.
        let source = "q(x, z) <- R(x, y).";
        let queries = parse_program_spanned(source).unwrap();
        let ds = containee_fragment_diagnostics(&queries[0], source, &config);
        assert_eq!(ds[0].code, "D002");
        assert_eq!(ds[1].code, "D001");
        // A clean containee yields nothing.
        let source = "q(x) <- R(x, x).";
        let queries = parse_program_spanned(source).unwrap();
        assert!(containee_fragment_diagnostics(&queries[0], source, &config).is_empty());
    }

    #[test]
    fn first_fragment_error_renders_relative_positions() {
        use dioph_cq::parse_program_spanned;
        let source = "q(x) <- R(x, y).\np(x) <- R(x, x).";
        let queries = parse_program_spanned(source).unwrap();
        let rendered = first_fragment_error(&queries[0], source).expect("D002 fires");
        assert_eq!(
            rendered,
            "1:14: error[D002] containee-not-projection-free: the containee must be \
             projection-free; existential variables: y"
        );
        assert!(first_fragment_error(&queries[1], source).is_none());
    }

    #[test]
    fn render_formats_file_line_column() {
        let analysis = analyze("q(x, z) <- R(x, x).\np(x) <- R(x, x).");
        let d = analysis.pairs[0].diagnostics.first().unwrap();
        let line = d.render("examples/test.dl");
        assert!(line.starts_with("examples/test.dl:1:6: error[D001] unsafe-query: "), "{line}");
    }

    #[test]
    fn counts_tally_by_severity() {
        let source = "q(x) <- R(x, x), R(x, x).\np(x, z) <- R(x, x).";
        let analysis = analyze(source);
        let (errors, warnings, notes) = analysis.counts();
        assert_eq!((errors, warnings, notes), (0, 2, 0), "D013 + containing-side D001");
        let analysis = analyze_with(source, super::super::registry::LintConfig::deny_warnings);
        assert_eq!(analysis.counts().0, 2);
    }
}
