//! Smoke test: every fixture of `dioph_cq::paper_examples` through the full
//! parse → compile → decide pipeline.
//!
//! Each fixture query is round-tripped through the datalog parser (so the
//! textual pipeline is exercised, not just the programmatic constructors),
//! then every admissible ordered pair is decided. Pairs whose verdict the
//! paper states are asserted exactly; all other pairs are checked for
//! unanimity across algorithms and engines, with every non-containment
//! verdict backed by a counterexample bag that the independent Equation-2
//! evaluator verifies.

use diophantus::cq::paper_examples;
use diophantus::{
    parse_query, set_containment, Algorithm, BagContainmentDecider, ConjunctiveQuery,
    ContainmentError, FeasibilityEngine,
};

/// All fixture queries exported by `paper_examples`, by name.
fn fixtures() -> Vec<ConjunctiveQuery> {
    vec![
        paper_examples::section2_query_q1(),
        paper_examples::section2_query_q2(),
        paper_examples::section2_query_q3(),
        paper_examples::section3_probe_example(),
        paper_examples::section3_query_q1(),
        paper_examples::section3_query_q2(),
    ]
}

fn deciders() -> Vec<BagContainmentDecider> {
    vec![
        BagContainmentDecider::new(Algorithm::MostGeneralProbe),
        BagContainmentDecider::new(Algorithm::MostGeneralProbe)
            .with_engine(FeasibilityEngine::FourierMotzkin),
        BagContainmentDecider::new(Algorithm::AllProbes),
        BagContainmentDecider::new(Algorithm::AllProbes)
            .with_engine(FeasibilityEngine::FourierMotzkin),
    ]
}

/// Decides `containee ⊑b containing` with every decider, asserting unanimity
/// and verifying any counterexample; returns the common verdict.
fn unanimous_verdict(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> bool {
    let mut verdict = None;
    for decider in deciders() {
        let result = decider
            .decide(containee, containing)
            .unwrap_or_else(|e| panic!("{containee} vs {containing} must be decidable: {e:?}"));
        if let Some(ce) = result.counterexample() {
            assert!(
                ce.verify(containee, containing),
                "unverifiable counterexample for {containee} vs {containing}"
            );
        }
        match verdict {
            None => verdict = Some(result.holds()),
            Some(v) => assert_eq!(
                v,
                result.holds(),
                "{decider:?} disagrees on {containee} vs {containing}"
            ),
        }
    }
    verdict.expect("at least one decider ran")
}

/// Every fixture prints to datalog text that re-parses to the same query.
#[test]
fn fixtures_roundtrip_through_the_parser() {
    for query in fixtures() {
        let reparsed = parse_query(&query.to_string())
            .unwrap_or_else(|e| panic!("fixture {query} must re-parse: {e:?}"));
        assert_eq!(reparsed, query, "parser round-trip must be the identity");
    }
}

/// The verdicts the paper states, asserted through the full pipeline on the
/// re-parsed fixtures.
#[test]
fn paper_stated_verdicts_hold() {
    let reparse = |q: ConjunctiveQuery| parse_query(&q.to_string()).unwrap();
    let s2q1 = reparse(paper_examples::section2_query_q1());
    let s2q2 = reparse(paper_examples::section2_query_q2());
    let s2q3 = reparse(paper_examples::section2_query_q3());
    let s3q1 = reparse(paper_examples::section3_query_q1());
    let s3q2 = reparse(paper_examples::section3_query_q2());

    // Section 2: q1 ⊑b q2 but q2 ⋢b q1, despite mutual set containment.
    assert!(unanimous_verdict(&s2q1, &s2q2));
    assert!(!unanimous_verdict(&s2q2, &s2q1));
    assert!(set_containment(&s2q1, &s2q2).holds());
    assert!(set_containment(&s2q2, &s2q1).holds());

    // Section 2: both projection-free queries are bag-contained in q3.
    assert!(unanimous_verdict(&s2q1, &s2q3));
    assert!(unanimous_verdict(&s2q2, &s2q3));

    // Sections 3–4: the running example is a non-containment with an
    // explicit Diophantine witness.
    assert!(!unanimous_verdict(&s3q1, &s3q2));
}

/// Every admissible ordered fixture pair decides unanimously; bag containment
/// always implies set containment; reflexivity holds for every
/// projection-free fixture.
#[test]
fn all_fixture_pairs_decide_unanimously() {
    let queries = fixtures();
    for containee in &queries {
        if !containee.is_projection_free() {
            continue;
        }
        assert!(unanimous_verdict(containee, containee), "⊑b must be reflexive for {containee}");
        for containing in &queries {
            let bag = unanimous_verdict(containee, containing);
            if bag {
                assert!(
                    set_containment(containee, containing).holds(),
                    "bag containment must imply set containment for {containee} vs {containing}"
                );
            }
        }
    }
}

/// Containees with projections are rejected up front, as the paper's
/// procedure requires.
#[test]
fn projectionful_containees_are_rejected() {
    let target = paper_examples::section2_query_q1();
    for query in fixtures() {
        if query.is_projection_free() {
            continue;
        }
        let err = BagContainmentDecider::new(Algorithm::MostGeneralProbe)
            .decide(&query, &target)
            .expect_err("projection-ful containees must be rejected");
        assert!(matches!(err, ContainmentError::ContaineeNotProjectionFree { .. }));
    }
}
