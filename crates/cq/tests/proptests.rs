//! Property-based tests for the conjunctive-query model.

use std::collections::BTreeSet;

use dioph_cq::{
    containment_mappings, is_set_contained, parse_query, probe_tuples, query_homomorphisms, Atom,
    ConjunctiveQuery, Substitution, Term,
};
use proptest::prelude::*;

/// A strategy for random terms over a small universe of variables/constants.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0usize..4).prop_map(|i| Term::var(format!("x{i}"))),
        (0usize..2).prop_map(|i| Term::var(format!("y{i}"))),
        (0usize..2).prop_map(|i| Term::constant(format!("c{i}"))),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (prop_oneof![Just("R"), Just("S"), Just("P")], proptest::collection::vec(term_strategy(), 1..3))
        .prop_map(|(rel, terms)| Atom::new(rel, terms))
}

/// Random CQs with a head drawn from the variables that occur in the body
/// (so the query is always safe).
fn query_strategy() -> impl Strategy<Value = ConjunctiveQuery> {
    (proptest::collection::vec((atom_strategy(), 1u64..3), 1..5), any::<u64>()).prop_map(
        |(body, pick)| {
            let vars: Vec<String> = {
                let mut set = BTreeSet::new();
                for (a, _) in &body {
                    set.extend(a.variables());
                }
                set.into_iter().collect()
            };
            let head: Vec<Term> = if vars.is_empty() {
                Vec::new()
            } else {
                let arity = (pick as usize % vars.len().min(3)) + 1;
                (0..arity)
                    .map(|i| Term::var(vars[(pick as usize + i) % vars.len()].clone()))
                    .collect()
            };
            ConjunctiveQuery::new("q", head, body)
        },
    )
}

/// A substitution mapping each existential variable of the query to one of
/// its head variables or constants (a "specialisation").
fn specializing_substitution(query: &ConjunctiveQuery, salt: u64) -> Substitution {
    let mut targets: Vec<Term> = query.head().to_vec();
    targets.extend(query.constants());
    if targets.is_empty() {
        targets.push(Term::constant("c0"));
    }
    Substitution::from_pairs(
        query
            .existential_variables()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, targets[(i + salt as usize) % targets.len()].clone())),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Display → parse is the identity on random queries.
    #[test]
    fn display_parse_roundtrip(q in query_strategy()) {
        let reparsed = parse_query(&q.to_string()).expect("display output must parse");
        prop_assert_eq!(reparsed, q);
    }

    /// Applying a substitution preserves the total atom count (Equation 1
    /// only merges atoms, it never loses occurrences).
    #[test]
    fn substitution_preserves_total_atom_count(q in query_strategy(), salt in any::<u64>()) {
        let sigma = specializing_substitution(&q, salt);
        let image = q.apply_substitution(&sigma);
        prop_assert_eq!(image.total_atom_count(), q.total_atom_count());
        prop_assert!(image.distinct_atom_count() <= q.distinct_atom_count());
        // The image of a specialisation is projection-free.
        prop_assert!(image.is_projection_free());
    }

    /// The canonical instance has exactly one fact per distinct body atom and
    /// is entirely ground.
    #[test]
    fn canonical_instance_shape(q in query_strategy()) {
        let inst = q.canonical_instance();
        prop_assert_eq!(inst.len(), q.distinct_atom_count());
        prop_assert!(inst.iter().all(Atom::is_ground));
    }

    /// Every query maps homomorphically onto its own canonical instance, and
    /// set containment is reflexive.
    #[test]
    fn canonical_homomorphism_exists(q in query_strategy()) {
        let homs = query_homomorphisms(&q, &q.canonical_instance());
        prop_assert!(!homs.is_empty());
        prop_assert!(is_set_contained(&q, &q));
    }

    /// Homomorphisms returned by the search are genuine: applying them maps
    /// every body atom into the instance.
    #[test]
    fn homomorphisms_are_valid(q in query_strategy(), target in query_strategy()) {
        let instance = target.canonical_instance();
        for h in query_homomorphisms(&q, &instance) {
            for atom in q.body_atoms() {
                let image = h.apply_atom(atom);
                prop_assert!(image.is_ground());
                prop_assert!(instance.contains(&image), "{} not in instance", image);
            }
        }
    }

    /// Chandra–Merlin soundness on specialisations: σ(q) is always
    /// set-contained in q (the containment mapping is σ itself).
    #[test]
    fn specialisations_are_set_contained(q in query_strategy(), salt in any::<u64>()) {
        let sigma = specializing_substitution(&q, salt);
        let image = q.apply_substitution(&sigma);
        prop_assert!(is_set_contained(&image, &q), "σ(q) must be set-contained in q for {q}");
        // And the witnessing containment-mapping set is non-empty.
        prop_assert!(!containment_mappings(&q, &image).is_empty());
    }

    /// Probe tuples: the most-general probe tuple is always present, every
    /// probe tuple is unifiable with the head, and the count is bounded by
    /// |domain|^arity.
    #[test]
    fn probe_tuple_properties(q in query_strategy()) {
        prop_assume!(q.head().iter().all(Term::is_var));
        let tuples = probe_tuples(&q);
        let domain = dioph_cq::canonical_active_domain(&q);
        prop_assert!(tuples.len() <= domain.len().pow(q.arity() as u32).max(1));
        let most_general = dioph_cq::most_general_probe_tuple(&q);
        prop_assert!(tuples.contains(&most_general));
        for t in &tuples {
            prop_assert!(q.ground_with(t).is_some(), "probe tuple {:?} must unify with the head", t);
        }
    }

    /// Grounding with the most-general probe tuple never merges distinct
    /// head variables' atoms beyond what canonicalisation does.
    #[test]
    fn most_general_grounding_is_canonical(q in query_strategy()) {
        prop_assume!(q.head().iter().all(Term::is_var));
        let grounded = q.most_general_grounding();
        prop_assert_eq!(grounded.total_atom_count(), q.total_atom_count());
        prop_assert!(grounded.head().iter().all(Term::is_constant));
    }
}
