//! Fourier–Motzkin elimination over the rationals.
//!
//! This is the "obviously correct" feasibility engine: it decides whether a
//! [`LinearSystem`] (mixing strict and non-strict inequalities and equalities)
//! has a rational solution, and if so produces a witness point by
//! back-substitution. Its worst case is doubly exponential in the number of
//! variables, which is acceptable for the moderate dimensions arising from
//! bag-containment instances and invaluable as a cross-check for the exact
//! simplex engine (see `simplex.rs` and experiment E7).
//!
//! Constraint rows are held behind the shared [`Row`] abstraction: the
//! normalised upper forms of a strict homogeneous system are sparse (one
//! entry per unknown mentioned), the pair-combination step is
//! [`Row::linear_combination`] — the same merge kernel the simplex pivot
//! uses — and rows only densify when elimination genuinely fills them in.

use dioph_arith::Rational;

use crate::row::Row;
use crate::system::{Constraint, LinearSystem, Relation};

/// A constraint normalised to `row · x  ≤/<  constant`.
#[derive(Clone, Debug)]
pub(crate) struct UpperForm {
    pub(crate) row: Row,
    pub(crate) strict: bool,
    pub(crate) constant: Rational,
}

impl UpperForm {
    /// The normalised negation `-row · x ≤/< -constant` of this form's
    /// underlying `≥/>` reading (helper for building inputs).
    fn negated(row: &Row, strict: bool, constant: &Rational) -> UpperForm {
        let mut negated = row.clone();
        negated.negate();
        UpperForm { row: negated, strict, constant: -constant }
    }
}

/// Normalises an arbitrary constraint into one or two `≤ / <` forms.
fn normalise(c: &Constraint) -> Vec<UpperForm> {
    let row = c.to_row();
    match c.relation {
        Relation::Le => {
            vec![UpperForm { row, strict: false, constant: c.constant.clone() }]
        }
        Relation::Lt => vec![UpperForm { row, strict: true, constant: c.constant.clone() }],
        Relation::Ge => vec![UpperForm::negated(&row, false, &c.constant)],
        Relation::Gt => vec![UpperForm::negated(&row, true, &c.constant)],
        Relation::Eq => {
            let flipped = UpperForm::negated(&row, false, &c.constant);
            vec![UpperForm { row, strict: false, constant: c.constant.clone() }, flipped]
        }
    }
}

/// Bounds recorded when a variable is eliminated, used for back-substitution.
struct EliminationStep {
    /// Index of the eliminated variable.
    var: usize,
    /// Lower bounds: `x_var >/≥ (constant - row·x_rest) / neg_coeff` stored
    /// in raw upper form (`row` still includes the eliminated column).
    lowers: Vec<UpperForm>,
    /// Upper bounds in raw upper form.
    uppers: Vec<UpperForm>,
}

/// Outcome of running Fourier–Motzkin elimination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FmOutcome {
    /// The system is feasible; a rational witness point is attached.
    Feasible(Vec<Rational>),
    /// The system has no rational solution.
    Infeasible,
}

impl FmOutcome {
    /// Returns the witness if feasible.
    pub fn witness(&self) -> Option<&[Rational]> {
        match self {
            FmOutcome::Feasible(w) => Some(w),
            FmOutcome::Infeasible => None,
        }
    }

    /// `true` iff the system was found feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, FmOutcome::Feasible(_))
    }
}

/// Decides rational feasibility of `system` by Fourier–Motzkin elimination.
///
/// Returns a witness point when feasible. The witness is guaranteed to
/// satisfy every constraint of the input system (this is also asserted in
/// debug builds).
pub fn solve(system: &LinearSystem) -> FmOutcome {
    let dim = system.dimension();
    let forms: Vec<UpperForm> = system.constraints().iter().flat_map(normalise).collect();
    let outcome = solve_forms(dim, forms);
    if let FmOutcome::Feasible(point) = &outcome {
        debug_assert!(system.is_satisfied_by(point), "FM witness must satisfy the input system");
    }
    outcome
}

/// The elimination engine over pre-normalised upper forms (the feasibility
/// front-end builds these directly as sparse rows, bypassing the dense
/// [`LinearSystem`] detour).
pub(crate) fn solve_forms(dim: usize, mut current: Vec<UpperForm>) -> FmOutcome {
    let mut steps: Vec<EliminationStep> = Vec::with_capacity(dim);

    // Eliminate variables from the highest index down to 0.
    for var in (0..dim).rev() {
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for c in current {
            match c.row.get(var) {
                None => rest.push(c),
                Some(coeff) if coeff.is_positive() => uppers.push(c),
                Some(_) => lowers.push(c),
            }
        }
        // Combine every (lower, upper) pair.
        for lo in &lowers {
            for up in &uppers {
                // lo: a·x + l*x_var ≤ cl with l < 0   =>   x_var ≥ (cl - a·x)/l ... careful with signs;
                // standard combination: multiply `up` by |l| and `lo` by u and add so x_var cancels.
                let l = lo.row.get(var).expect("lower bound has the variable"); // negative
                let u = up.row.get(var).expect("upper bound has the variable"); // positive
                                                                                // combined = u * lo + (-l) * up   (both multipliers positive)
                let minus_l = -l;
                let row = Row::linear_combination(u, &lo.row, &minus_l, &up.row);
                debug_assert!(row.get(var).is_none(), "eliminated column must cancel exactly");
                let constant = &(&lo.constant * u) + &(&up.constant * &minus_l);
                rest.push(UpperForm { row, strict: lo.strict || up.strict, constant });
            }
        }
        dioph_obs::registry::LP_FM_ELIMINATIONS.incr();
        steps.push(EliminationStep { var, lowers, uppers });
        current = rest;
    }

    // All variables eliminated: the remaining constraints are ground.
    for c in &current {
        debug_assert!(c.row.is_zero_row());
        let zero = Rational::zero();
        let ok = if c.strict { zero < c.constant } else { zero <= c.constant };
        if !ok {
            return FmOutcome::Infeasible;
        }
    }

    // Back-substitution: steps were pushed from the highest variable down, so
    // processing them in reverse order assigns x_0 first.
    let mut point = vec![Rational::zero(); dim];
    for step in steps.iter().rev() {
        let var = step.var;
        // Compute the numeric lower/upper bounds implied by the recorded
        // constraints given the already chosen values of lower-indexed vars.
        let mut best_lower: Option<(Rational, bool)> = None; // (bound, strict)
        for lo in &step.lowers {
            let coeff = lo.row.get(var).expect("lower bound has the variable"); // negative
            let rest_val = lo.row.dot_skip(&point, var);
            // coeff * x_var ≤ constant - rest  with coeff < 0
            //   =>  x_var ≥ (constant - rest) / coeff
            let bound = &(&lo.constant - &rest_val) / coeff;
            let candidate = (bound, lo.strict);
            best_lower = Some(match best_lower {
                None => candidate,
                Some(prev) => tighter_lower(prev, candidate),
            });
        }
        let mut best_upper: Option<(Rational, bool)> = None;
        for up in &step.uppers {
            let coeff = up.row.get(var).expect("upper bound has the variable"); // positive
            let rest_val = up.row.dot_skip(&point, var);
            let bound = &(&up.constant - &rest_val) / coeff;
            let candidate = (bound, up.strict);
            best_upper = Some(match best_upper {
                None => candidate,
                Some(prev) => tighter_upper(prev, candidate),
            });
        }
        point[var] = pick_value(best_lower, best_upper);
    }

    FmOutcome::Feasible(point)
}

fn tighter_lower(a: (Rational, bool), b: (Rational, bool)) -> (Rational, bool) {
    match a.0.cmp(&b.0) {
        core::cmp::Ordering::Greater => a,
        core::cmp::Ordering::Less => b,
        core::cmp::Ordering::Equal => (a.0, a.1 || b.1),
    }
}

fn tighter_upper(a: (Rational, bool), b: (Rational, bool)) -> (Rational, bool) {
    match a.0.cmp(&b.0) {
        core::cmp::Ordering::Less => a,
        core::cmp::Ordering::Greater => b,
        core::cmp::Ordering::Equal => (a.0, a.1 || b.1),
    }
}

/// Picks a value inside the (guaranteed non-empty) interval described by the
/// optional lower and upper bounds.
fn pick_value(lower: Option<(Rational, bool)>, upper: Option<(Rational, bool)>) -> Rational {
    match (lower, upper) {
        (None, None) => Rational::zero(),
        (Some((l, strict)), None) => {
            if strict {
                &l + &Rational::one()
            } else {
                l
            }
        }
        (None, Some((u, strict))) => {
            if strict {
                &u - &Rational::one()
            } else {
                u
            }
        }
        (Some((l, ls)), Some((u, us))) => {
            debug_assert!(l <= u, "empty interval during back-substitution");
            if l == u {
                debug_assert!(!ls && !us, "point interval with a strict bound");
                l
            } else if !ls {
                // Prefer the lower endpoint when it is achievable: this keeps
                // witnesses small and integral more often.
                l
            } else if !us {
                u
            } else {
                &(&l + &u) / &Rational::from(2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Constraint, LinearSystem, Relation};

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_i64s(n, d)
    }

    fn check_feasible(sys: &LinearSystem) -> Vec<Rational> {
        match solve(sys) {
            FmOutcome::Feasible(w) => {
                assert!(sys.is_satisfied_by(&w), "witness {w:?} must satisfy system");
                w
            }
            FmOutcome::Infeasible => panic!("expected feasible system"),
        }
    }

    #[test]
    fn empty_system_is_feasible() {
        let sys = LinearSystem::new(3);
        let w = check_feasible(&sys);
        assert_eq!(w, vec![r(0, 1), r(0, 1), r(0, 1)]);
    }

    #[test]
    fn simple_bounded_region() {
        // 1 <= x <= 3, 2 <= y <= 5, x + y <= 6
        let mut sys = LinearSystem::new(2);
        sys.push(Constraint::from_i64s(&[1, 0], Relation::Ge, 1));
        sys.push(Constraint::from_i64s(&[1, 0], Relation::Le, 3));
        sys.push(Constraint::from_i64s(&[0, 1], Relation::Ge, 2));
        sys.push(Constraint::from_i64s(&[0, 1], Relation::Le, 5));
        sys.push(Constraint::from_i64s(&[1, 1], Relation::Le, 6));
        check_feasible(&sys);
    }

    #[test]
    fn infeasible_contradiction() {
        // x >= 2 and x <= 1
        let mut sys = LinearSystem::new(1);
        sys.push(Constraint::from_i64s(&[1], Relation::Ge, 2));
        sys.push(Constraint::from_i64s(&[1], Relation::Le, 1));
        assert_eq!(solve(&sys), FmOutcome::Infeasible);
    }

    #[test]
    fn strictness_matters() {
        // x >= 1 and x <= 1 is feasible; x > 1 and x <= 1 is not.
        let mut feasible = LinearSystem::new(1);
        feasible.push(Constraint::from_i64s(&[1], Relation::Ge, 1));
        feasible.push(Constraint::from_i64s(&[1], Relation::Le, 1));
        let w = check_feasible(&feasible);
        assert_eq!(w[0], r(1, 1));

        let mut infeasible = LinearSystem::new(1);
        infeasible.push(Constraint::from_i64s(&[1], Relation::Gt, 1));
        infeasible.push(Constraint::from_i64s(&[1], Relation::Le, 1));
        assert_eq!(solve(&infeasible), FmOutcome::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        // x + y = 4, x - y = 2  =>  x = 3, y = 1
        let mut sys = LinearSystem::new(2);
        sys.push(Constraint::from_i64s(&[1, 1], Relation::Eq, 4));
        sys.push(Constraint::from_i64s(&[1, -1], Relation::Eq, 2));
        let w = check_feasible(&sys);
        assert_eq!(w, vec![r(3, 1), r(1, 1)]);
    }

    #[test]
    fn strict_open_interval_needs_midpoint() {
        // 0 < x < 1
        let mut sys = LinearSystem::new(1);
        sys.push(Constraint::from_i64s(&[1], Relation::Gt, 0));
        sys.push(Constraint::from_i64s(&[1], Relation::Lt, 1));
        let w = check_feasible(&sys);
        assert!(w[0] > r(0, 1) && w[0] < r(1, 1));
    }

    #[test]
    fn paper_running_example_system() {
        // The homogeneous system derived from the paper's 3-MPI (Section 4):
        //   -5e1 +  e2 + 3e3 > 0
        //   -3e1 -  e2 + 3e3 > 0
        //   - e1 +  e2 -  e3 > 0   (corrected from the paper's typo; see dioph-poly::mpi tests)
        // together with e_i >= 0. The paper exhibits the solution (0, 2, 1).
        let mut sys = LinearSystem::new(3);
        sys.push(Constraint::from_i64s(&[-5, 1, 3], Relation::Gt, 0));
        sys.push(Constraint::from_i64s(&[-3, -1, 3], Relation::Gt, 0));
        sys.push(Constraint::from_i64s(&[-1, 1, -1], Relation::Gt, 0));
        sys.push_nonnegativity();
        let w = check_feasible(&sys);
        // The witness must satisfy the paper's inequalities (checked by
        // check_feasible); also verify the paper's own solution satisfies it.
        assert!(sys.is_satisfied_by(&[r(0, 1), r(2, 1), r(1, 1)]));
        assert!(sys.is_satisfied_by(&w));
    }

    #[test]
    fn unsolvable_homogeneous_system() {
        // From the unsolvable 1-MPI u^4 + u^2 < u^4: exponents give
        // (4-4)ε > 0 and (4-2)ε > 0 with ε >= 0 — the first is impossible.
        let mut sys = LinearSystem::new(1);
        sys.push(Constraint::from_i64s(&[0], Relation::Gt, 0));
        sys.push(Constraint::from_i64s(&[2], Relation::Gt, 0));
        sys.push_nonnegativity();
        assert_eq!(solve(&sys), FmOutcome::Infeasible);
    }

    #[test]
    fn unbounded_direction_found() {
        // x - y > 3 with both nonnegative: feasible, e.g. (5, 0).
        let mut sys = LinearSystem::new(2);
        sys.push(Constraint::from_i64s(&[1, -1], Relation::Gt, 3));
        sys.push_nonnegativity();
        check_feasible(&sys);
    }

    #[test]
    fn higher_dimensional_equalities_and_inequalities() {
        // x0 + x1 + x2 + x3 = 10, x0 = x1, x2 >= 4, x3 > 1, all >= 0.
        let mut sys = LinearSystem::new(4);
        sys.push(Constraint::from_i64s(&[1, 1, 1, 1], Relation::Eq, 10));
        sys.push(Constraint::from_i64s(&[1, -1, 0, 0], Relation::Eq, 0));
        sys.push(Constraint::from_i64s(&[0, 0, 1, 0], Relation::Ge, 4));
        sys.push(Constraint::from_i64s(&[0, 0, 0, 1], Relation::Gt, 1));
        sys.push_nonnegativity();
        check_feasible(&sys);
    }
}
