//! Generalized Monomial–Polynomial Inequalities (GMPIs).
//!
//! Definition 4.1 of the paper also introduces *generalized* MPIs, in which
//! exponents may be non-negative reals. They are only used in the proofs
//! (the collapsed parametric 1-GMPI of Theorem 4.1's "only if" direction uses
//! exponents `logζ*(ξ_j)` which are genuinely real), but Lemma 4.1 — the
//! degree criterion for one-dimensional GMPIs — is an executable statement
//! and is reproduced here over **rational** exponents and coefficients, the
//! exactly-representable subset of the reals.

use core::fmt;

use dioph_arith::{Natural, Rational};

/// A one-dimensional GMPI `Σ aᵢ·u^{eᵢ} < u^{e}` with rational coefficients
/// `aᵢ ≥ 1` and non-negative rational exponents.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OneDimGmpi {
    terms: Vec<(Rational, Rational)>,
    monomial_exponent: Rational,
}

impl OneDimGmpi {
    /// Builds a 1-GMPI from `(coefficient, exponent)` terms and the monomial
    /// exponent.
    ///
    /// # Panics
    /// Panics if any coefficient is smaller than 1, or any exponent (on
    /// either side) is negative — the shapes excluded by Definition 4.1 and
    /// Lemma 4.1.
    pub fn new(terms: Vec<(Rational, Rational)>, monomial_exponent: Rational) -> Self {
        for (c, e) in &terms {
            assert!(*c >= Rational::one(), "GMPI coefficients must be >= 1 (Lemma 4.1 hypothesis)");
            assert!(!e.is_negative(), "GMPI exponents must be non-negative");
        }
        assert!(!monomial_exponent.is_negative(), "GMPI exponents must be non-negative");
        OneDimGmpi { terms, monomial_exponent }
    }

    /// The polynomial terms `(coefficient, exponent)`.
    pub fn terms(&self) -> &[(Rational, Rational)] {
        &self.terms
    }

    /// Degree of the polynomial side (0 for the empty polynomial).
    pub fn polynomial_degree(&self) -> Rational {
        self.terms.iter().map(|(_, e)| e.clone()).max().unwrap_or_else(Rational::zero)
    }

    /// Degree (exponent) of the monomial side.
    pub fn monomial_degree(&self) -> &Rational {
        &self.monomial_exponent
    }

    /// Lemma 4.1: the 1-GMPI admits a positive Diophantine solution iff the
    /// degree of the polynomial side is strictly smaller than the degree of
    /// the monomial side.
    pub fn is_solvable(&self) -> bool {
        if self.terms.is_empty() {
            return true;
        }
        self.polynomial_degree() < self.monomial_exponent
    }

    /// A solution bound in the spirit of the constructive half of Lemma 4.1:
    /// when solvable, every natural `u` with
    /// `u^(gap) > Σ aᵢ` (where `gap = deg(M) − deg(P) > 0`) is a solution.
    /// This returns one such `u` (not necessarily the smallest), or `None`
    /// when the GMPI is unsolvable.
    ///
    /// Correctness: for `u ≥ 1`, each term satisfies
    /// `aᵢ·u^{eᵢ} ≤ aᵢ·u^{deg(P)}`, so
    /// `P(u) ≤ (Σ aᵢ)·u^{deg(P)} < u^{gap}·u^{deg(P)} ≤ u^{deg(M)} = M(u)`.
    pub fn witness_bound(&self) -> Option<Natural> {
        if !self.is_solvable() {
            return None;
        }
        if self.terms.is_empty() {
            return Some(Natural::one());
        }
        let gap = &self.monomial_exponent - &self.polynomial_degree();
        debug_assert!(gap.is_positive());
        // Choose u = ceil((Σ aᵢ + 1)^{1/gap}); since computing rational roots
        // exactly is unnecessary, we simply search for the least natural u
        // with u^ceil? — instead use the conservative bound
        // u = ceil(Σ aᵢ / gap) + 2, and then verify by the degree argument:
        // we need u^gap > Σ aᵢ, i.e. gap·log(u) > log(Σ aᵢ); the search below
        // finds the least u with u^⌈1/gap⌉-free check via exact rationals.
        let coeff_sum: Rational = self.terms.iter().fold(Rational::zero(), |acc, (c, _)| &acc + c);
        // Find the least natural u ≥ 2 with u^gap > coeff_sum, checked exactly
        // by comparing u^{gap.numer} > coeff_sum^{gap.denom} (both natural powers).
        let gap_num = gap
            .numer()
            .to_natural()
            .expect("gap is positive")
            .to_u64()
            .expect("exponent numerator fits u64");
        let gap_den = gap.denom().to_u64().expect("exponent denominator fits u64");
        let mut u = Natural::from(2u64);
        loop {
            let lhs = u.pow(gap_num);
            // coeff_sum^gap_den as an exact rational power.
            let rhs = coeff_sum.pow(gap_den);
            if Rational::from(lhs) > rhs {
                return Some(u);
            }
            u = &u + &Natural::one();
        }
    }
}

impl fmt::Display for OneDimGmpi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            write!(f, "0")?;
        } else {
            for (i, (c, e)) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                write!(f, "{c}*u^({e})")?;
            }
        }
        write!(f, " < u^({})", self.monomial_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_i64s(n, d)
    }

    #[test]
    fn integer_exponent_cases_match_lemma() {
        // u^4 + u^2 < u^4: unsolvable.
        let bad = OneDimGmpi::new(vec![(r(1, 1), r(4, 1)), (r(1, 1), r(2, 1))], r(4, 1));
        assert!(!bad.is_solvable());
        assert_eq!(bad.witness_bound(), None);

        // 2u^4 + 1 < u^5: solvable.
        let good = OneDimGmpi::new(vec![(r(2, 1), r(4, 1)), (r(1, 1), r(0, 1))], r(5, 1));
        assert!(good.is_solvable());
        let w = good.witness_bound().unwrap();
        // The bound is valid: w^1 > 3.
        assert!(w > Natural::from(3u64));
    }

    #[test]
    fn fractional_exponents() {
        // u^(7/2) < u^(15/4): solvable (degree 7/2 < 15/4).
        let g = OneDimGmpi::new(vec![(r(1, 1), r(7, 2))], r(15, 4));
        assert!(g.is_solvable());
        assert!(g.witness_bound().is_some());

        // u^(15/4) < u^(7/2): unsolvable.
        let g2 = OneDimGmpi::new(vec![(r(1, 1), r(15, 4))], r(7, 2));
        assert!(!g2.is_solvable());
    }

    #[test]
    fn empty_polynomial_is_solvable() {
        let g = OneDimGmpi::new(vec![], r(3, 2));
        assert!(g.is_solvable());
        assert_eq!(g.witness_bound(), Some(Natural::one()));
    }

    #[test]
    #[should_panic(expected = "coefficients must be >= 1")]
    fn small_coefficients_are_rejected() {
        let _ = OneDimGmpi::new(vec![(r(1, 2), r(1, 1))], r(2, 1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exponents_are_rejected() {
        let _ = OneDimGmpi::new(vec![(r(1, 1), r(-1, 1))], r(2, 1));
    }

    #[test]
    fn display() {
        let g = OneDimGmpi::new(vec![(r(2, 1), r(4, 1))], r(9, 2));
        assert_eq!(g.to_string(), "2*u^(4) < u^(9/2)");
    }
}
