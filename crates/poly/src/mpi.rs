//! Monomial–Polynomial Inequalities (MPIs) and their Diophantine-solution
//! problem (Section 4 of the paper).
//!
//! An n-MPI is the syntactic expression `P(u) < M(u)` where `P` is a
//! polynomial with positive coefficients and natural exponents and `M` is a
//! coefficient-one monomial over the same `n` unknowns (Definition 4.1). A
//! *Diophantine solution* is a natural vector `ξ` with `P(ξ) < M(ξ)`.
//!
//! Theorem 4.1 shows the n-MPI has a Diophantine solution iff the strict
//! homogeneous linear system `{(e − e_i)ᵀ·ε > 0}` does; Theorem 4.2 then
//! concludes PTime decidability via linear-programming feasibility. This
//! module implements both directions, including the *constructive* half:
//! from a natural solution `d` of the linear system we build the collapsed
//! 1-MPI, find a base `ζ*`, and return the explicit witness `ξ_j = ζ*^{d_j}`.

use core::fmt;

use dioph_arith::{Integer, Natural};
use dioph_linalg::{FeasibilityEngine, LinalgError, StrictHomogeneousSystem};

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::scratch::MpiScratch;

/// An n-dimensional Monomial–Polynomial Inequality `P(u) < M(u)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mpi {
    polynomial: Polynomial,
    monomial: Monomial,
}

impl Mpi {
    /// Builds the MPI `polynomial < monomial`.
    ///
    /// # Panics
    /// Panics if the two sides have different dimensions.
    pub fn new(polynomial: Polynomial, monomial: Monomial) -> Self {
        assert_eq!(
            polynomial.dimension(),
            monomial.dimension(),
            "MPI sides must range over the same unknowns"
        );
        Mpi { polynomial, monomial }
    }

    /// The polynomial (left, smaller) side `P(u)`.
    pub fn polynomial(&self) -> &Polynomial {
        &self.polynomial
    }

    /// The monomial (right, larger) side `M(u)`.
    pub fn monomial(&self) -> &Monomial {
        &self.monomial
    }

    /// Number of unknowns `n`.
    pub fn dimension(&self) -> usize {
        self.monomial.dimension()
    }

    /// `true` iff `ξ` satisfies `P(ξ) < M(ξ)`.
    pub fn is_solution(&self, point: &[Natural]) -> bool {
        self.polynomial.evaluate(point) < self.monomial.evaluate(point)
    }

    /// Builds the strict homogeneous linear system `{(e − e_i)ᵀ·ε > 0}` of
    /// Theorem 4.1, one row per polynomial term.
    pub fn to_strict_system(&self) -> StrictHomogeneousSystem {
        let n = self.dimension();
        let e = self.monomial.exponents();
        let mut sys = StrictHomogeneousSystem::new(n);
        for (_, mono) in self.polynomial.terms() {
            // Exponent differences computed directly on the machine words
            // (widened so u64::MAX − 0 stays exact); the hybrid Integer
            // stores each of them inline, and only the non-zero differences
            // are handed over — real MPI rows touch the unknowns of two
            // monomials, so the system stores them sparsely end to end.
            let entries: Vec<(usize, Integer)> = e
                .iter()
                .zip(mono.exponents())
                .enumerate()
                .filter(|(_, (&a, &b))| a != b)
                .map(|(j, (&a, &b))| (j, Integer::from(a as i128 - b as i128)))
                .collect();
            sys.push_sparse_row(entries);
        }
        sys
    }

    /// [`Self::to_strict_system`] into a caller-provided scratch: the system
    /// lives in `scratch` (readable afterwards via [`MpiScratch::system`]),
    /// its rows built from — and, at the next call, torn back down into —
    /// the scratch's recycled entry pool. The produced system is equal to
    /// the one [`Self::to_strict_system`] returns; reuse is capacity-only.
    pub fn to_strict_system_in<'s>(
        &self,
        scratch: &'s mut MpiScratch,
    ) -> &'s StrictHomogeneousSystem {
        let n = self.dimension();
        let e = self.monomial.exponents();
        let MpiScratch { sys, lp } = scratch;
        let pool = lp.int_pool();
        sys.reset_with_pool(n, pool);
        for (_, mono) in self.polynomial.terms() {
            // Same entry values and order as `to_strict_system`, written into
            // a pooled vector instead of a fresh one.
            let mut entries = pool.take();
            entries.extend(
                e.iter()
                    .zip(mono.exponents())
                    .enumerate()
                    .filter(|(_, (&a, &b))| a != b)
                    .map(|(j, (&a, &b))| (j, Integer::from(a as i128 - b as i128))),
            );
            sys.push_sparse_row(entries);
        }
        sys
    }

    /// Decides whether the MPI admits a Diophantine solution (Theorem 4.1 +
    /// Theorem 4.2), without constructing one.
    ///
    /// # Errors
    /// [`LinalgError::IterationBudget`] if the LP engine exhausts its
    /// defensive iteration budget.
    pub fn has_diophantine_solution(&self, engine: FeasibilityEngine) -> Result<bool, LinalgError> {
        if self.polynomial.is_zero() {
            // 0 < M(ξ) holds at the all-ones point.
            return Ok(true);
        }
        self.to_strict_system().is_feasible(engine)
    }

    /// [`Self::has_diophantine_solution`] through a caller-provided scratch:
    /// both the Theorem 4.1 system and the LP kernel's working set draw on
    /// `scratch`, so a warmed scratch decides an MPI with no fresh heap
    /// allocation. Verdicts are bit-identical to the scratch-free route.
    ///
    /// # Errors
    /// As [`Self::has_diophantine_solution`].
    pub fn has_diophantine_solution_in(
        &self,
        engine: FeasibilityEngine,
        scratch: &mut MpiScratch,
    ) -> Result<bool, LinalgError> {
        if self.polynomial.is_zero() {
            return Ok(true);
        }
        self.to_strict_system_in(scratch);
        let MpiScratch { sys, lp } = scratch;
        sys.is_feasible_in(engine, lp)
    }

    /// Finds an explicit Diophantine solution, if one exists.
    ///
    /// Following the constructive direction of Theorem 4.1:
    /// 1. solve the associated linear system for a natural vector `d`;
    /// 2. collapse the n-MPI to the 1-MPI
    ///    `Σ aᵢ ζ^{eᵢ·d} < ζ^{e·d}` (whose degrees now satisfy Lemma 4.1);
    /// 3. find the smallest base `ζ* ≥ 2` satisfying it (such a base exists
    ///    and is at most `Σ aᵢ + 1`);
    /// 4. return `ξ_j = ζ*^{d_j}`.
    ///
    /// The returned vector is verified against the MPI before being returned
    /// (a defensive check that the whole pipeline is consistent).
    ///
    /// # Errors
    /// [`LinalgError::IterationBudget`] if the LP engine exhausts its
    /// defensive iteration budget.
    pub fn diophantine_solution(
        &self,
        engine: FeasibilityEngine,
    ) -> Result<Option<Vec<Natural>>, LinalgError> {
        let n = self.dimension();
        if self.polynomial.is_zero() {
            return Ok(Some(vec![Natural::one(); n])); // alloc-ok: returned witness
        }
        let Some(d) = self.to_strict_system().natural_solution(engine)? else {
            return Ok(None);
        };
        let zeta = self.smallest_base_for(&d).expect("a base must exist for a valid direction d");
        let point: Vec<Natural> = d
            .iter()
            .map(|dj| {
                let exp = dj.to_u64().expect("LP-derived exponent should fit in u64");
                zeta.pow(exp)
            })
            .collect();
        debug_assert!(self.is_solution(&point), "constructed witness must satisfy the MPI");
        Ok(Some(point))
    }

    /// [`Self::diophantine_solution`] through a caller-provided scratch (see
    /// [`Self::has_diophantine_solution_in`]); the returned witness is the
    /// only allocation a warmed scratch leaves behind, and it is
    /// bit-identical to the scratch-free route's.
    ///
    /// # Errors
    /// As [`Self::diophantine_solution`].
    pub fn diophantine_solution_in(
        &self,
        engine: FeasibilityEngine,
        scratch: &mut MpiScratch,
    ) -> Result<Option<Vec<Natural>>, LinalgError> {
        let n = self.dimension();
        if self.polynomial.is_zero() {
            return Ok(Some(vec![Natural::one(); n])); // alloc-ok: returned witness
        }
        self.to_strict_system_in(scratch);
        let MpiScratch { sys, lp } = scratch;
        let Some(d) = sys.natural_solution_in(engine, lp)? else {
            return Ok(None);
        };
        let zeta = self.smallest_base_for(&d).expect("a base must exist for a valid direction d");
        let point: Vec<Natural> = d
            .iter()
            .map(|dj| {
                let exp = dj.to_u64().expect("LP-derived exponent should fit in u64");
                zeta.pow(exp)
            })
            .collect(); // alloc-ok: returned witness
        debug_assert!(self.is_solution(&point), "constructed witness must satisfy the MPI");
        Ok(Some(point))
    }

    /// Given a direction `d` (a natural solution of the strict system), finds
    /// the smallest `ζ ≥ 2` such that `ξ_j = ζ^{d_j}` solves the MPI.
    ///
    /// Returns `None` only if `d` is not actually a solution of the system
    /// (in which case no base can work).
    pub fn smallest_base_for(&self, d: &[Natural]) -> Option<Natural> {
        assert_eq!(d.len(), self.dimension(), "direction dimension mismatch");
        // Hoist the exponent conversions out of the search loop: every ζ
        // candidate reuses the same machine-word exponents.
        let exponents: Vec<u64> =
            d.iter().map(|dj| dj.to_u64().expect("direction exponent should fit in u64")).collect();
        // Upper bound: ζ = Σ aᵢ + 1 always works when the degree gap is ≥ 1
        // (see module docs); searching from 2 gives the smallest witness.
        let bound = &self.polynomial.coefficient_sum() + &Natural::from(2u64);
        let mut zeta = Natural::from(2u64);
        while zeta <= bound {
            let point: Vec<Natural> = exponents.iter().map(|&exp| zeta.pow(exp)).collect();
            if self.is_solution(&point) {
                return Some(zeta);
            }
            zeta.add_assign_u64(1);
        }
        None
    }

    /// Renders the MPI with custom unknown names.
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> MpiDisplay<'a> {
        MpiDisplay { mpi: self, names: Some(names) }
    }
}

/// Helper for displaying an MPI with custom unknown names.
pub struct MpiDisplay<'a> {
    mpi: &'a Mpi,
    names: Option<&'a [String]>,
}

impl fmt::Display for MpiDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.names {
            Some(names) => write!(
                f,
                "{} < {}",
                self.mpi.polynomial.display_with(names),
                self.mpi.monomial.display_with(names)
            ),
            None => write!(f, "{} < {}", self.mpi.polynomial, self.mpi.monomial),
        }
    }
}

impl fmt::Display for Mpi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} < {}", self.polynomial, self.monomial)
    }
}

/// A one-dimensional MPI `Σ aᵢ u^{eᵢ} < u^{e}` with natural data, used as the
/// collapsed form in the constructive direction of Theorem 4.1 and directly
/// testable against Lemma 4.1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OneDimMpi {
    /// Terms `(coefficient, exponent)` of the polynomial side.
    terms: Vec<(Natural, Natural)>,
    /// Exponent of the monomial side.
    monomial_exponent: Natural,
}

impl OneDimMpi {
    /// Builds a 1-MPI from polynomial terms and the monomial exponent.
    pub fn new(terms: Vec<(Natural, Natural)>, monomial_exponent: Natural) -> Self {
        OneDimMpi { terms, monomial_exponent }
    }

    /// Degree of the polynomial side (0 for the zero polynomial).
    pub fn polynomial_degree(&self) -> Natural {
        self.terms
            .iter()
            .filter(|(c, _)| !c.is_zero())
            .map(|(_, e)| e.clone())
            .max()
            .unwrap_or_else(Natural::zero)
    }

    /// Degree of the monomial side.
    pub fn monomial_degree(&self) -> &Natural {
        &self.monomial_exponent
    }

    /// Lemma 4.1: the 1-MPI has a positive Diophantine solution iff
    /// `deg(P) < deg(M)` (given all coefficients are ≥ 1).
    pub fn is_solvable(&self) -> bool {
        if self.terms.iter().all(|(c, _)| c.is_zero()) {
            return true;
        }
        self.polynomial_degree() < self.monomial_exponent
    }

    /// Evaluates the polynomial side at `u`.
    pub fn evaluate_polynomial(&self, u: &Natural) -> Natural {
        let mut acc = Natural::zero();
        for (c, e) in &self.terms {
            if c.is_zero() {
                continue;
            }
            let exp = e.to_u64().expect("1-MPI exponent should fit in u64");
            acc += &(c * &u.pow(exp));
        }
        acc
    }

    /// Evaluates the monomial side at `u`.
    pub fn evaluate_monomial(&self, u: &Natural) -> Natural {
        u.pow(self.monomial_exponent.to_u64().expect("1-MPI exponent should fit in u64"))
    }

    /// `true` iff `u` satisfies the inequality.
    pub fn is_solution(&self, u: &Natural) -> bool {
        self.evaluate_polynomial(u) < self.evaluate_monomial(u)
    }

    /// Finds the smallest positive solution, if one exists (Lemma 4.1 makes
    /// the search finite: when solvable, `Σ aᵢ + 1` is always a solution).
    pub fn smallest_solution(&self) -> Option<Natural> {
        if !self.is_solvable() {
            return None;
        }
        let bound = {
            let mut acc = Natural::one();
            for (c, _) in &self.terms {
                acc += c;
            }
            acc
        };
        let mut u = Natural::one();
        while u <= bound {
            if self.is_solution(&u) {
                return Some(u);
            }
            u = &u + &Natural::one();
        }
        unreachable!("Lemma 4.1 guarantees a solution no larger than the coefficient sum + 1")
    }
}

impl fmt::Display for OneDimMpi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            write!(f, "0")?;
        } else {
            for (i, (c, e)) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, " + ")?;
                }
                if c.is_one() {
                    write!(f, "u^{e}")?;
                } else {
                    write!(f, "{c}*u^{e}")?;
                }
            }
        }
        write!(f, " < u^{}", self.monomial_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    /// The paper's running 3-MPI: u1^7 + u1^5*u2^2 + u1^3*u3^4 < u1^2*u2*u3^3.
    fn paper_mpi() -> Mpi {
        let p = Polynomial::from_terms(
            3,
            [
                (nat(1), Monomial::new(vec![7, 0, 0])),
                (nat(1), Monomial::new(vec![5, 2, 0])),
                (nat(1), Monomial::new(vec![3, 0, 4])),
            ],
        );
        let m = Monomial::new(vec![2, 1, 3]);
        Mpi::new(p, m)
    }

    const ENGINES: [FeasibilityEngine; 2] =
        [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin];

    #[test]
    fn paper_mpi_solutions_from_the_text() {
        let mpi = paper_mpi();
        // (1, 4, 3): 98 < 108 — a solution (paper, Section 4).
        assert!(mpi.is_solution(&[nat(1), nat(4), nat(3)]));
        // (1, 9, 3): 163 < 243 — also a solution.
        assert!(mpi.is_solution(&[nat(1), nat(9), nat(3)]));
        // All ones: 3 < 1 fails (Proposition 4.1).
        assert!(!mpi.is_solution(&[nat(1), nat(1), nat(1)]));
        // Any zero: both sides zero on the left? P=0 only if u1=0; M=0 too, so fails.
        assert!(!mpi.is_solution(&[nat(0), nat(4), nat(3)]));
        assert!(!mpi.is_solution(&[nat(1), nat(0), nat(3)]));
    }

    #[test]
    fn paper_mpi_strict_system_matches_text() {
        // The paper's unsimplified system is
        //   7ε1 < 2ε1 + ε2 + 3ε3,  5ε1 + 2ε2 < 2ε1 + ε2 + 3ε3,  3ε1 + 4ε3 < 2ε1 + ε2 + 3ε3,
        // i.e. -5ε1 + ε2 + 3ε3 > 0, -3ε1 - ε2 + 3ε3 > 0, -ε1 + ε2 - ε3 > 0.
        // (The third simplified inequality printed in the paper, "-ε1 - ε2 + 3ε3 > 0",
        // is a typo: it does not follow from the third original constraint, while the
        // paper's own solution ε = (0, 2, 1) and derived 1-MPI 2u^4 + 1 < u^5 are
        // consistent with the corrected row (-1, 1, -1) used here.)
        let sys = paper_mpi().to_strict_system();
        assert_eq!(sys.dimension(), 3);
        assert_eq!(sys.len(), 3);
        let rows: Vec<Vec<i64>> = sys
            .rows()
            .iter()
            .map(|r| r.to_dense_vec().iter().map(|c| c.to_i64().unwrap()).collect())
            .collect();
        assert!(rows.contains(&vec![-5, 1, 3]));
        assert!(rows.contains(&vec![-3, -1, 3]));
        assert!(rows.contains(&vec![-1, 1, -1]));
        // The paper's solution ε = (0, 2, 1) satisfies the derived system.
        let paper_solution = [Natural::zero(), nat(2), nat(1)];
        assert!(sys.is_satisfied_by_naturals(&paper_solution));
    }

    #[test]
    fn paper_mpi_is_decided_solvable_and_witnessed() {
        let mpi = paper_mpi();
        for engine in ENGINES {
            assert!(mpi.has_diophantine_solution(engine).unwrap());
            let w = mpi.diophantine_solution(engine).unwrap().unwrap();
            assert!(mpi.is_solution(&w), "witness {w:?} must solve the MPI");
        }
    }

    #[test]
    fn unsolvable_mpi_u4_plus_u2() {
        // u^4 + u^2 < u^4 is unsolvable (paper, Section 4).
        let p = Polynomial::from_terms(
            1,
            [(nat(1), Monomial::new(vec![4])), (nat(1), Monomial::new(vec![2]))],
        );
        let mpi = Mpi::new(p, Monomial::new(vec![4]));
        for engine in ENGINES {
            assert!(!mpi.has_diophantine_solution(engine).unwrap());
            assert!(mpi.diophantine_solution(engine).unwrap().is_none());
        }
    }

    #[test]
    fn solvable_1mpi_from_paper() {
        // 2u^4 + 1 < u^5 has 3 as a solution (paper, Section 4).
        let p = Polynomial::from_terms(
            1,
            [(nat(2), Monomial::new(vec![4])), (nat(1), Monomial::new(vec![0]))],
        );
        let mpi = Mpi::new(p, Monomial::new(vec![5]));
        assert!(mpi.is_solution(&[nat(3)]));
        assert!(!mpi.is_solution(&[nat(2)]));
        for engine in ENGINES {
            let w = mpi.diophantine_solution(engine).unwrap().unwrap();
            assert!(mpi.is_solution(&w));
            // The smallest base the search can find is exactly 3.
            assert_eq!(w, vec![nat(3)]);
        }
    }

    #[test]
    fn zero_polynomial_mpi_is_trivially_solvable() {
        let mpi = Mpi::new(Polynomial::zero(2), Monomial::new(vec![1, 2]));
        for engine in ENGINES {
            assert!(mpi.has_diophantine_solution(engine).unwrap());
            let w = mpi.diophantine_solution(engine).unwrap().unwrap();
            assert!(mpi.is_solution(&w));
            assert_eq!(w, vec![nat(1), nat(1)]);
        }
    }

    #[test]
    fn lower_degree_polynomial_is_always_solvable() {
        // u1*u2 < u1^2*u2^2 is solvable (e.g. at (2,2): 4 < 16).
        let p = Polynomial::from_terms(2, [(nat(1), Monomial::new(vec![1, 1]))]);
        let mpi = Mpi::new(p, Monomial::new(vec![2, 2]));
        for engine in ENGINES {
            assert!(mpi.has_diophantine_solution(engine).unwrap());
            assert!(mpi.is_solution(&mpi.diophantine_solution(engine).unwrap().unwrap()));
        }
    }

    #[test]
    fn proposition_4_1_zero_and_all_ones_never_solve() {
        let mpi = paper_mpi();
        let n = mpi.dimension();
        assert!(!mpi.is_solution(&vec![Natural::zero(); n]));
        assert!(!mpi.is_solution(&vec![Natural::one(); n]));
    }

    #[test]
    fn scratch_route_matches_fresh_route() {
        // The `_in` entry points must produce the identical system, verdict
        // and witness as their scratch-free twins — warmed or cold.
        let mut scratch = MpiScratch::new();
        let cases = [
            paper_mpi(),
            Mpi::new(
                Polynomial::from_terms(
                    1,
                    [(nat(1), Monomial::new(vec![4])), (nat(1), Monomial::new(vec![2]))],
                ),
                Monomial::new(vec![4]),
            ),
            Mpi::new(Polynomial::zero(2), Monomial::new(vec![1, 2])),
        ];
        for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::Bareiss] {
            // Reuse one scratch across all cases: later cases run warmed.
            for mpi in &cases {
                assert_eq!(&mpi.to_strict_system(), mpi.to_strict_system_in(&mut scratch));
                assert_eq!(
                    mpi.has_diophantine_solution(engine).unwrap(),
                    mpi.has_diophantine_solution_in(engine, &mut scratch).unwrap(),
                );
                assert_eq!(
                    mpi.diophantine_solution(engine).unwrap(),
                    mpi.diophantine_solution_in(engine, &mut scratch).unwrap(),
                );
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let mpi = paper_mpi();
        let s = mpi.to_string();
        assert!(s.contains('<'));
        assert!(s.contains("u0^2*u1*u2^3"));
    }

    // ------------------------- OneDimMpi -------------------------

    #[test]
    fn one_dim_lemma_4_1() {
        // u^4 + u^2 < u^4: deg 4 !< 4, unsolvable.
        let bad = OneDimMpi::new(vec![(nat(1), nat(4)), (nat(1), nat(2))], nat(4));
        assert!(!bad.is_solvable());
        assert_eq!(bad.smallest_solution(), None);

        // 2u^4 + 1 < u^5: solvable, smallest solution 3.
        let good = OneDimMpi::new(vec![(nat(2), nat(4)), (nat(1), nat(0))], nat(5));
        assert!(good.is_solvable());
        assert_eq!(good.smallest_solution(), Some(nat(3)));
        assert!(good.is_solution(&nat(3)));
        assert!(!good.is_solution(&nat(2)));
    }

    #[test]
    fn one_dim_degenerate_cases() {
        // Zero polynomial: always solvable, smallest solution is 1... but the
        // monomial must evaluate > 0, so u = 1 works when the exponent is anything.
        let zero_poly = OneDimMpi::new(vec![], nat(3));
        assert!(zero_poly.is_solvable());
        assert_eq!(zero_poly.smallest_solution(), Some(nat(1)));

        // Coefficient-zero terms are ignored for the degree.
        let ghost = OneDimMpi::new(vec![(nat(0), nat(9)), (nat(1), nat(1))], nat(2));
        assert_eq!(ghost.polynomial_degree(), nat(1));
        assert!(ghost.is_solvable());
    }

    #[test]
    fn one_dim_display() {
        let m = OneDimMpi::new(vec![(nat(2), nat(4)), (nat(1), nat(0))], nat(5));
        assert_eq!(m.to_string(), "2*u^4 + u^0 < u^5");
    }
}
