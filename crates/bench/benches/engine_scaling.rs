//! engine_scaling — thread-count sweeps of the `dioph-engine` worker pool.
//!
//! Three sweeps, all over workloads the existing experiments already use:
//!
//! * **E4 probe-parallel sweep** — the path self-containment family under
//!   `Algorithm::AllProbes` has `(L+1)^(L+1)` probe tuples per pair (length
//!   3 ⇒ 256 probes), the embarrassingly parallel loop the engine fans out.
//!   Before timing, the harness asserts that every job count produces a
//!   **bit-identical** verdict (including JSON certificates) and prints the
//!   measured 1-thread vs 4-thread wall-clock so the scaling claim is
//!   checkable from the bench output alone.
//! * **E7 tie-in** — the same probe sweep under both LP feasibility engines
//!   (exact simplex vs Fourier–Motzkin), showing how the per-probe constant
//!   of the ablation interacts with thread count.
//! * **Batch stream sweep** — a stream of E4 exponential-mapping pairs
//!   through `run_batch`, measuring pair-level parallelism end to end
//!   (parse → compile → decide → in-order emission).
//! * **Skew sweep** — one giant all-probes pair buried in a crowd of small
//!   pairs, the worst case for pair-level parallelism. The harness reads
//!   the `dioph-obs` worker-pool metrics and prints per-worker claim/busy
//!   figures plus a starvation ratio before timing.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::{exponential_mapping_instance, path_self_containment};
use dioph_containment::Algorithm;
use dioph_engine::{DecisionEngine, EngineConfig, JobReader};
use dioph_linalg::FeasibilityEngine;

const JOB_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// The E4 multi-probe instance the probe sweeps run on: 4^4 = 256 probes.
const PATH_LENGTH: usize = 3;

/// The grown probe sweep: path length 4 ⇒ 5^5 = 3125 probes per pair, the
/// scale the unified scheduler's chunked claiming is sized for.
const PATH_LENGTH_LARGE: usize = 4;

fn engine_with(jobs: usize, engine: FeasibilityEngine) -> DecisionEngine {
    DecisionEngine::new(EngineConfig { jobs, algorithm: Algorithm::AllProbes, engine })
}

fn bench_probe_parallel_e4(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "engine_scaling: {cores} hardware thread(s) available \
         (speedups over jobs=1 need cores > 1; verdict identity holds regardless)"
    );

    let mut group = c.benchmark_group("engine/E4_probe_parallel");
    for length in [PATH_LENGTH, PATH_LENGTH_LARGE] {
        let (containee, containing) = path_self_containment(length);
        let probes = (length + 1).pow(length as u32 + 1);

        // Determinism gate + headline numbers: every job count must produce
        // the same verdict bytes, and the sweep prints its own wall clocks.
        let reference = engine_with(1, FeasibilityEngine::Simplex)
            .decide(&containee, &containing)
            .expect("the E4 pair decides");
        for jobs in JOB_SWEEP {
            let engine = engine_with(jobs, FeasibilityEngine::Simplex);
            let start = Instant::now();
            let verdict = engine.decide(&containee, &containing).expect("the E4 pair decides");
            let elapsed = start.elapsed();
            assert_eq!(verdict, reference, "jobs={jobs} must match the sequential verdict");
            assert_eq!(
                verdict.to_json(),
                reference.to_json(),
                "JSON certificates must be identical"
            );
            println!(
                "engine_scaling: E4 path({length}) all-probes ({probes} probes), jobs={jobs}: \
                 {:.1}ms (one run)",
                elapsed.as_secs_f64() * 1e3
            );
        }

        for jobs in JOB_SWEEP {
            let engine = engine_with(jobs, FeasibilityEngine::Simplex);
            group.bench_with_input(
                BenchmarkId::new(format!("path{length}"), jobs),
                &(containee.clone(), containing.clone()),
                |b, (containee, containing)| {
                    b.iter(|| engine.decide(black_box(containee), black_box(containing)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_probe_parallel_lp_ablation(c: &mut Criterion) {
    let (containee, containing) = path_self_containment(PATH_LENGTH);
    let mut group = c.benchmark_group("engine/E7_lp_ablation");
    for (label, lp) in
        [("simplex", FeasibilityEngine::Simplex), ("fm", FeasibilityEngine::FourierMotzkin)]
    {
        for jobs in [1usize, 4] {
            let engine = engine_with(jobs, lp);
            group.bench_with_input(
                BenchmarkId::new(label, jobs),
                &(containee.clone(), containing.clone()),
                |b, (containee, containing)| {
                    b.iter(|| engine.decide(black_box(containee), black_box(containing)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_batch_stream(c: &mut Criterion) {
    // A stream of E4 exponential-mapping pairs (growing containing queries,
    // 2^k containment mappings each) — the batch front-end's workload.
    let mut text = String::new();
    for k in 4..10 {
        let (containee, containing) = exponential_mapping_instance(k);
        text.push_str(&format!("{containee}.\n{containing}.\n"));
    }
    let mut group = c.benchmark_group("engine/batch_stream");
    for jobs in JOB_SWEEP {
        let engine = DecisionEngine::new(EngineConfig {
            jobs,
            algorithm: Algorithm::MostGeneralProbe,
            engine: FeasibilityEngine::Simplex,
        });
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &text, |b, text| {
            b.iter(|| {
                let mut verdicts = 0usize;
                let stats = engine.run_batch(JobReader::new(text.as_bytes()), |v| {
                    black_box(&v);
                    verdicts += 1;
                    true
                });
                assert_eq!(stats.failures, 0);
                verdicts
            });
        });
    }
    group.finish();
}

fn bench_batch_skew(c: &mut Criterion) {
    // A deliberately skewed stream: one giant all-probes pair (3125 probe
    // tuples) buried in a crowd of small exponential-mapping pairs. This
    // was the worst case for pair-level parallelism — whichever worker
    // claimed the giant serialised the tail, a measured ~130× busy ratio —
    // and the unified (pair × probe) scheduler is the fix: the whole pool
    // drains the giant's probe space in chunks. The per-worker pool metrics
    // make the balance visible: the run prints each worker's claim count
    // and busy time, the steal/claim-spread counters, and a starvation
    // ratio (most/least busy worker).
    let mut text = String::new();
    let (giant_containee, giant_containing) = path_self_containment(PATH_LENGTH_LARGE);
    text.push_str(&format!("{giant_containee}.\n{giant_containing}.\n"));
    for _ in 0..12 {
        let (containee, containing) = exponential_mapping_instance(4);
        text.push_str(&format!("{containee}.\n{containing}.\n"));
    }

    dioph_obs::phase::set_timing(true);
    dioph_obs::pool::reset();
    let before = dioph_obs::registry::snapshot();
    let engine = DecisionEngine::new(EngineConfig {
        jobs: 4,
        algorithm: Algorithm::AllProbes,
        engine: FeasibilityEngine::Simplex,
    });
    let stats = engine.run_batch(JobReader::new(text.as_bytes()), |v| {
        black_box(&v);
        true
    });
    assert_eq!(stats.failures, 0);
    let delta = dioph_obs::registry::snapshot().since(&before);
    let workers: Vec<_> =
        dioph_obs::pool::snapshot().into_iter().filter(|w| w.pool == "batch").collect();
    for w in &workers {
        println!(
            "engine_scaling: skew batch worker {}: {} claim(s), busy {:.1}ms, max unit {:.1}ms",
            w.worker,
            w.claims,
            w.busy_ns as f64 / 1e6,
            w.max_unit_ns as f64 / 1e6
        );
    }
    println!(
        "engine_scaling: skew units claimed: {}, steals: {}, claim spread (max-min): {}",
        delta.get("engine.units_claimed").unwrap_or(0),
        delta.get("engine.steals").unwrap_or(0),
        delta.get("engine.claim_spread.max").unwrap_or(0)
    );
    let busiest = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
    let idlest = workers.iter().map(|w| w.busy_ns).min().unwrap_or(0);
    if idlest > 0 {
        println!(
            "engine_scaling: skew starvation ratio (busiest/idlest worker): {:.2}x",
            busiest as f64 / idlest as f64
        );
    } else {
        println!("engine_scaling: skew starvation ratio: unbounded (a worker never ran a unit)");
    }

    let mut group = c.benchmark_group("engine/batch_skew");
    for jobs in [1usize, 4] {
        let engine = DecisionEngine::new(EngineConfig {
            jobs,
            algorithm: Algorithm::AllProbes,
            engine: FeasibilityEngine::Simplex,
        });
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &text, |b, text| {
            b.iter(|| {
                let mut verdicts = 0usize;
                let stats = engine.run_batch(JobReader::new(text.as_bytes()), |v| {
                    black_box(&v);
                    verdicts += 1;
                    true
                });
                assert_eq!(stats.failures, 0);
                verdicts
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_probe_parallel_e4, bench_probe_parallel_lp_ablation, bench_batch_stream,
        bench_batch_skew
}
criterion_main!(benches);
