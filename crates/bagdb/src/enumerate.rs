//! Bounded enumeration of ground atoms and bag instances.
//!
//! The Ioannidis–Ramakrishnan polynomial-encoding viewpoint turns bag
//! containment over a *fixed* fact set into a statement about polynomials in
//! the facts' multiplicities, so exhaustively sweeping every multiplicity
//! vector below a bound is a complete ground truth **for that fact set and
//! bound**. These helpers are the substrate of that sweep: [`ground_atoms`]
//! spans the fact space of a schema over a bounded active domain, and
//! [`enumerate_bounded_bags`] walks every bag over a fact list with
//! multiplicities `0..=max` in a fixed odometer order, which is what the
//! differential fuzzing oracle uses as its brute-force side.

use dioph_arith::Natural;
use dioph_cq::{Atom, Term};

use crate::instance::BagInstance;

/// All ground atoms over the given relation schema and active domain, in a
/// deterministic order (relations in input order, argument tuples in
/// odometer order over the domain).
///
/// # Panics
/// Panics if any domain term is not a constant.
pub fn ground_atoms(relations: &[(String, usize)], domain: &[Term]) -> Vec<Atom> {
    for term in domain {
        assert!(term.as_var().is_none(), "the active domain holds constants, got variable {term}");
    }
    let mut out = Vec::new();
    for (name, arity) in relations {
        if domain.is_empty() && *arity > 0 {
            continue;
        }
        // Odometer over `arity` digits in base `domain.len()`; a full wrap
        // (including the zero-digit wrap of a nullary relation) ends the
        // walk for this relation.
        let mut digits = vec![0usize; *arity];
        loop {
            out.push(Atom::new(name.clone(), digits.iter().map(|&d| domain[d].clone()).collect()));
            let mut wrapped = true;
            for pos in (0..*arity).rev() {
                digits[pos] += 1;
                if digits[pos] < domain.len() {
                    wrapped = false;
                    break;
                }
                digits[pos] = 0;
            }
            if wrapped {
                break;
            }
        }
    }
    out
}

/// Number of bags [`enumerate_bounded_bags`] will yield for `fact_count`
/// facts and multiplicities `0..=max_multiplicity`: `(max+1)^facts`.
/// `None` when the count overflows `u128` — a sweep that large should be
/// sampled, not enumerated.
pub fn bounded_bag_count(fact_count: usize, max_multiplicity: u64) -> Option<u128> {
    let base = u128::from(max_multiplicity) + 1;
    let mut total: u128 = 1;
    for _ in 0..fact_count {
        total = total.checked_mul(base)?;
    }
    Some(total)
}

/// Iterator over **every** bag instance on a fixed fact list with each
/// multiplicity drawn from `0..=max_multiplicity`, in odometer order
/// (the all-zero, i.e. empty, bag first; the last fact's multiplicity varies
/// fastest). See [`enumerate_bounded_bags`].
#[derive(Clone, Debug)]
pub struct BoundedBags {
    facts: Vec<Atom>,
    multiplicities: Vec<u64>,
    max: u64,
    done: bool,
}

impl Iterator for BoundedBags {
    type Item = BagInstance;

    fn next(&mut self) -> Option<BagInstance> {
        if self.done {
            return None;
        }
        let bag = BagInstance::from_multiplicities(
            self.facts
                .iter()
                .zip(&self.multiplicities)
                .filter(|(_, &m)| m > 0)
                .map(|(fact, &m)| (fact.clone(), Natural::from(m))),
        );
        // Advance the odometer; wrapping back to all zeros ends the walk.
        let mut pos = self.multiplicities.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.multiplicities[pos] += 1;
            if self.multiplicities[pos] <= self.max {
                break;
            }
            self.multiplicities[pos] = 0;
        }
        Some(bag)
    }
}

/// Enumerates every bag over `facts` with multiplicities in
/// `0..=max_multiplicity` — `(max+1)^facts.len()` bags in total (check the
/// size with [`bounded_bag_count`] before walking a large fact list).
///
/// # Panics
/// Panics if any fact is not ground.
pub fn enumerate_bounded_bags(facts: &[Atom], max_multiplicity: u64) -> BoundedBags {
    for fact in facts {
        assert!(fact.is_ground(), "bag instances contain only ground atoms, got {fact}");
    }
    BoundedBags {
        facts: facts.to_vec(),
        multiplicities: vec![0; facts.len()],
        max: max_multiplicity,
        done: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn ground_atoms_span_the_fact_space() {
        let relations = vec![("R".to_string(), 2), ("S".to_string(), 1)];
        let domain = vec![c("a"), c("b")];
        let atoms = ground_atoms(&relations, &domain);
        // 2^2 binary facts + 2 unary facts.
        assert_eq!(atoms.len(), 6);
        assert_eq!(atoms[0], Atom::new("R", vec![c("a"), c("a")]));
        assert_eq!(atoms[1], Atom::new("R", vec![c("a"), c("b")]));
        assert_eq!(atoms[4], Atom::new("S", vec![c("a")]));
        // Deterministic: a second call yields the identical list.
        assert_eq!(atoms, ground_atoms(&relations, &domain));
    }

    #[test]
    fn nullary_relations_yield_one_fact_even_on_an_empty_domain() {
        let relations = vec![("B".to_string(), 0), ("R".to_string(), 1)];
        let atoms = ground_atoms(&relations, &[]);
        assert_eq!(atoms, vec![Atom::new("B", Vec::new())]);
    }

    #[test]
    #[should_panic(expected = "constants")]
    fn variables_are_rejected_from_the_domain() {
        let _ = ground_atoms(&[("R".to_string(), 1)], &[Term::var("x")]);
    }

    #[test]
    fn bag_enumeration_is_exhaustive_and_ordered() {
        let facts = vec![Atom::new("R", vec![c("a")]), Atom::new("S", vec![c("b")])];
        let bags: Vec<BagInstance> = enumerate_bounded_bags(&facts, 2).collect();
        assert_eq!(bags.len(), 9);
        assert_eq!(bounded_bag_count(facts.len(), 2), Some(9));
        // First bag is empty, last has every multiplicity at the bound.
        assert!(bags[0].is_empty());
        assert_eq!(bags[8].multiplicity(&facts[0]), Natural::from(2u64));
        assert_eq!(bags[8].multiplicity(&facts[1]), Natural::from(2u64));
        // All distinct.
        for (i, a) in bags.iter().enumerate() {
            for b in &bags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn zero_facts_enumerate_exactly_the_empty_bag() {
        let bags: Vec<BagInstance> = enumerate_bounded_bags(&[], 5).collect();
        assert_eq!(bags.len(), 1);
        assert!(bags[0].is_empty());
        assert_eq!(bounded_bag_count(0, 5), Some(1));
    }

    #[test]
    fn bag_count_overflow_is_reported() {
        assert_eq!(bounded_bag_count(200, u64::MAX), None);
        assert_eq!(bounded_bag_count(3, 3), Some(64));
    }
}
