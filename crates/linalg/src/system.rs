//! Representation of systems of linear constraints over the rationals.

use core::fmt;

use dioph_arith::{Integer, Natural, Rational};

/// Comparison operator of a single linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Relation {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs < rhs`
    Lt,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs > rhs`
    Gt,
    /// `lhs = rhs`
    Eq,
}

impl Relation {
    /// Evaluates the relation on two rationals.
    pub fn holds(self, lhs: &Rational, rhs: &Rational) -> bool {
        match self {
            Relation::Le => lhs <= rhs,
            Relation::Lt => lhs < rhs,
            Relation::Ge => lhs >= rhs,
            Relation::Gt => lhs > rhs,
            Relation::Eq => lhs == rhs,
        }
    }

    /// `true` for the strict relations `<` and `>`.
    pub fn is_strict(self) -> bool {
        matches!(self, Relation::Lt | Relation::Gt)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Relation::Le => "<=",
            Relation::Lt => "<",
            Relation::Ge => ">=",
            Relation::Gt => ">",
            Relation::Eq => "=",
        };
        f.write_str(s)
    }
}

/// A single linear constraint `coeffs · x  REL  constant`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Coefficient of each variable (dense, length = system dimension).
    pub coeffs: Vec<Rational>,
    /// The comparison operator.
    pub relation: Relation,
    /// Right-hand-side constant.
    pub constant: Rational,
}

impl Constraint {
    /// Builds a constraint from rational coefficients.
    pub fn new(coeffs: Vec<Rational>, relation: Relation, constant: Rational) -> Self {
        Constraint { coeffs, relation, constant }
    }

    /// Builds a constraint from integer coefficients and constant.
    pub fn from_integers(coeffs: &[Integer], relation: Relation, constant: Integer) -> Self {
        Constraint {
            coeffs: coeffs.iter().cloned().map(Rational::from).collect(),
            relation,
            constant: Rational::from(constant),
        }
    }

    /// Builds a constraint from `i64` coefficients (convenience for tests).
    pub fn from_i64s(coeffs: &[i64], relation: Relation, constant: i64) -> Self {
        Constraint {
            coeffs: coeffs.iter().map(|&c| Rational::from(c)).collect(),
            relation,
            constant: Rational::from(constant),
        }
    }

    /// Number of variables mentioned (dense length).
    pub fn dimension(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficient vector as a [`Row`](crate::row::Row), stored sparsely
    /// when mostly zeros (the engines pivot and eliminate on rows, not on
    /// dense slices).
    pub fn to_row(&self) -> crate::row::Row {
        crate::row::Row::from_dense_auto(&self.coeffs)
    }

    /// Evaluates `coeffs · point`.
    pub fn lhs_value(&self, point: &[Rational]) -> Rational {
        dot(&self.coeffs, point)
    }

    /// `true` iff the constraint is satisfied at `point`.
    pub fn is_satisfied_by(&self, point: &[Rational]) -> bool {
        self.relation.holds(&self.lhs_value(point), &self.constant)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if first {
                write!(f, "{c}*x{i}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}*x{i}", -c)?;
            } else {
                write!(f, " + {c}*x{i}")?;
            }
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, " {} {}", self.relation, self.constant)
    }
}

/// Dot product of two equally sized rational slices.
pub fn dot(a: &[Rational], b: &[Rational]) -> Rational {
    debug_assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    let mut acc = Rational::zero();
    for (x, y) in a.iter().zip(b) {
        if !x.is_zero() && !y.is_zero() {
            acc += &(x * y);
        }
    }
    acc
}

/// Dot product of an integer vector and a rational vector.
pub fn dot_int(a: &[Integer], b: &[Rational]) -> Rational {
    debug_assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    let mut acc = Rational::zero();
    for (x, y) in a.iter().zip(b) {
        if !x.is_zero() && !y.is_zero() {
            acc += &(&Rational::from(x.clone()) * y);
        }
    }
    acc
}

/// Dot product of two integer vectors.
pub fn dot_int_int(a: &[Integer], b: &[Integer]) -> Integer {
    debug_assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    let mut acc = Integer::zero();
    for (x, y) in a.iter().zip(b) {
        if !x.is_zero() && !y.is_zero() {
            acc += &(x * y);
        }
    }
    acc
}

/// Dot product of an integer vector and a natural vector.
pub fn dot_int_nat(a: &[Integer], b: &[Natural]) -> Integer {
    debug_assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    let mut acc = Integer::zero();
    for (x, y) in a.iter().zip(b) {
        if !x.is_zero() && !y.is_zero() {
            acc += &(x * &Integer::from(y.clone()));
        }
    }
    acc
}

/// A system of linear constraints over `dimension` rational variables.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinearSystem {
    dimension: usize,
    constraints: Vec<Constraint>,
}

impl LinearSystem {
    /// Creates an empty system over `dimension` variables.
    pub fn new(dimension: usize) -> Self {
        LinearSystem { dimension, constraints: Vec::new() }
    }

    /// Number of variables.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The constraints of the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` iff there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Adds a constraint.
    ///
    /// # Panics
    /// Panics if the constraint's dimension does not match the system's.
    pub fn push(&mut self, c: Constraint) {
        assert_eq!(c.dimension(), self.dimension, "constraint dimension mismatch");
        self.constraints.push(c);
    }

    /// Adds the constraint `x_i ≥ 0` for every variable.
    pub fn push_nonnegativity(&mut self) {
        for i in 0..self.dimension {
            let mut coeffs = vec![Rational::zero(); self.dimension];
            coeffs[i] = Rational::one();
            self.constraints.push(Constraint::new(coeffs, Relation::Ge, Rational::zero()));
        }
    }

    /// `true` iff `point` satisfies every constraint.
    pub fn is_satisfied_by(&self, point: &[Rational]) -> bool {
        assert_eq!(point.len(), self.dimension, "point dimension mismatch");
        self.constraints.iter().all(|c| c.is_satisfied_by(point))
    }
}

impl fmt::Display for LinearSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "linear system over {} variables:", self.dimension)?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_i64s(n, d)
    }

    #[test]
    fn relation_semantics() {
        assert!(Relation::Le.holds(&r(1, 2), &r(1, 2)));
        assert!(!Relation::Lt.holds(&r(1, 2), &r(1, 2)));
        assert!(Relation::Ge.holds(&r(3, 2), &r(1, 2)));
        assert!(Relation::Gt.holds(&r(3, 2), &r(1, 2)));
        assert!(Relation::Eq.holds(&r(2, 4), &r(1, 2)));
        assert!(Relation::Lt.is_strict() && Relation::Gt.is_strict());
        assert!(
            !Relation::Le.is_strict() && !Relation::Ge.is_strict() && !Relation::Eq.is_strict()
        );
    }

    #[test]
    fn constraint_evaluation() {
        // 2x - 3y >= 1 at (2, 1) -> 1 >= 1 holds; at (1, 1) -> -1 >= 1 fails.
        let c = Constraint::from_i64s(&[2, -3], Relation::Ge, 1);
        assert!(c.is_satisfied_by(&[r(2, 1), r(1, 1)]));
        assert!(!c.is_satisfied_by(&[r(1, 1), r(1, 1)]));
        assert_eq!(c.lhs_value(&[r(1, 2), r(1, 3)]), r(0, 1));
    }

    #[test]
    fn dot_products() {
        assert_eq!(dot(&[r(1, 2), r(2, 1)], &[r(4, 1), r(3, 1)]), r(8, 1));
        assert_eq!(dot_int(&[Integer::from(2), Integer::from(-1)], &[r(1, 2), r(3, 1)]), r(-2, 1));
        assert_eq!(
            dot_int_int(
                &[Integer::from(2), Integer::from(-1)],
                &[Integer::from(5), Integer::from(3)]
            ),
            Integer::from(7)
        );
        assert_eq!(
            dot_int_nat(
                &[Integer::from(-2), Integer::from(3)],
                &[Natural::from(5u64), Natural::from(4u64)]
            ),
            Integer::from(2)
        );
    }

    #[test]
    fn system_building_and_satisfaction() {
        let mut sys = LinearSystem::new(2);
        sys.push(Constraint::from_i64s(&[1, 1], Relation::Le, 4));
        sys.push(Constraint::from_i64s(&[1, -1], Relation::Gt, 0));
        sys.push_nonnegativity();
        assert_eq!(sys.len(), 4);
        assert!(sys.is_satisfied_by(&[r(2, 1), r(1, 1)]));
        assert!(!sys.is_satisfied_by(&[r(1, 1), r(1, 1)])); // strict fails
        assert!(!sys.is_satisfied_by(&[r(5, 1), r(1, 1)])); // first fails
        assert!(!sys.is_satisfied_by(&[r(2, 1), r(-1, 1)])); // nonnegativity fails
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut sys = LinearSystem::new(2);
        sys.push(Constraint::from_i64s(&[1, 1, 1], Relation::Le, 4));
    }

    #[test]
    fn display_is_readable() {
        let c = Constraint::from_i64s(&[2, 0, -3], Relation::Lt, 7);
        assert_eq!(c.to_string(), "2*x0 - 3*x2 < 7");
        let zero = Constraint::from_i64s(&[0, 0], Relation::Ge, 0);
        assert_eq!(zero.to_string(), "0 >= 0");
    }
}
