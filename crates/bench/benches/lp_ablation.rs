//! E7 — ablation of the feasibility engine behind Theorem 4.1/4.2:
//! exact phase-1 simplex vs Fourier–Motzkin elimination.
//!
//! Both engines decide the same strict homogeneous systems (and are
//! cross-checked to agree); the sweep over dimension and row count shows
//! Fourier–Motzkin's combinatorial blow-up against the simplex's steady
//! growth — the reason the simplex is the default engine.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dioph_bench::{bench_rng, random_mpi};
use dioph_linalg::{FeasibilityEngine, StrictHomogeneousSystem};
use rand::Rng;

fn random_system(dimension: usize, rows: usize, rng: &mut impl Rng) -> StrictHomogeneousSystem {
    let mut sys = StrictHomogeneousSystem::new(dimension);
    for _ in 0..rows {
        let row: Vec<i64> = (0..dimension).map(|_| rng.random_range(-4..=6)).collect();
        sys.push_row(row.into_iter().map(dioph_arith::Integer::from).collect());
    }
    sys
}

fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/dimension_sweep");
    for dimension in [2usize, 3, 4, 5, 6] {
        let mut rng = bench_rng();
        let systems: Vec<_> = (0..6).map(|_| random_system(dimension, 8, &mut rng)).collect();
        // Engines must agree on every instance.
        for sys in &systems {
            assert_eq!(
                sys.is_feasible(FeasibilityEngine::Simplex).unwrap(),
                sys.is_feasible(FeasibilityEngine::FourierMotzkin).unwrap(),
            );
        }
        for engine in [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin] {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), dimension),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine).unwrap());
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_row_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/row_sweep");
    for rows in [4usize, 8, 16, 32] {
        let mut rng = bench_rng();
        let systems: Vec<_> = (0..6).map(|_| random_system(5, rows, &mut rng)).collect();
        // Fourier–Motzkin's pair combinations explode with the row count
        // (every elimination squares the constraint set in the worst case);
        // past 8 rows a single decision takes minutes and tens of gigabytes,
        // so the FM side of the ablation stops where the blow-up starts —
        // which is itself the measurement the ablation exists to show.
        let engines: &[FeasibilityEngine] = if rows <= 8 {
            &[FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin]
        } else {
            &[FeasibilityEngine::Simplex]
        };
        for &engine in engines {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), rows),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine).unwrap());
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_mpi_derived_systems(c: &mut Criterion) {
    // Systems exactly as they arise from compiled MPIs (non-negative
    // exponents, row = e − e_i), rather than uniform random coefficients.
    let mut group = c.benchmark_group("E7/mpi_derived_systems");
    for unknowns in [3usize, 5, 7] {
        let mut rng = bench_rng();
        let systems: Vec<_> =
            (0..6).map(|_| random_mpi(unknowns, 12, 5, &mut rng).to_strict_system()).collect();
        // FM only where it terminates in bench time: the 12-row systems
        // already push its doubly-exponential pair combinations past minutes
        // at 5 unknowns (see the row_sweep note).
        let engines: &[FeasibilityEngine] = if unknowns <= 3 {
            &[FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin]
        } else {
            &[FeasibilityEngine::Simplex]
        };
        for &engine in engines {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), unknowns),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine).unwrap());
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

/// The grown E7 sweep (ROADMAP "Scale instances"): simplex-only, at
/// dimensions and row counts where the LP route's wall-clock is measured in
/// hundreds of milliseconds to seconds per batch — large enough that the
/// arithmetic substrate (small-int fast paths, sparse rows) dominates the
/// measurement instead of harness noise. Fourier–Motzkin is excluded here:
/// its doubly-exponential blow-up makes these sizes intractable for it.
/// This sub-sweep tops out at 12×36 — the last size where rational pivot
/// values still fit machine words; `bench_past_the_cliff` below takes over
/// from there on the fraction-free route.
fn bench_simplex_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/simplex_scale");
    for dimension in [8usize, 12] {
        let rows = 3 * dimension;
        let mut rng = bench_rng();
        let systems: Vec<_> = (0..4).map(|_| random_system(dimension, rows, &mut rng)).collect();
        group.bench_with_input(
            BenchmarkId::new("Simplex", format!("{dimension}x{rows}")),
            &systems,
            |b, systems| {
                b.iter(|| {
                    for sys in systems {
                        black_box(sys.is_feasible(FeasibilityEngine::Simplex).unwrap());
                    }
                });
            },
        );
    }
    // MPI-derived growth: exactly the strict systems Theorem 4.1 produces,
    // at sizes where compiled probe batches spend their time today.
    for unknowns in [10usize, 14] {
        let terms = 4 * unknowns;
        let mut rng = bench_rng();
        let systems: Vec<_> =
            (0..4).map(|_| random_mpi(unknowns, terms, 6, &mut rng).to_strict_system()).collect();
        group.bench_with_input(
            BenchmarkId::new("Simplex/mpi", unknowns),
            &systems,
            |b, systems| {
                b.iter(|| {
                    for sys in systems {
                        black_box(sys.is_feasible(FeasibilityEngine::Simplex).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

/// Past the machine-word cliff. Up to PR 4 the sweep was capped at 12×36:
/// from ~16 unknowns × 48 rows the rational pivot values outgrow machine
/// words for good, and the per-entry gcd reductions of the rational simplex
/// dominate the run. The fraction-free (Bareiss) kernel replaces them with
/// one exact gcd division per row per pivot, which is what makes these
/// sizes — 16×48 through 24×72, and MPI-derived systems to 18 unknowns —
/// benchable at all. At the cliff itself (16×48) both routes run, so the
/// crossover is measured rather than asserted; beyond it the sweep is
/// fraction-free only. Cross-route verdict identity is asserted on every
/// instance benched here.
fn bench_past_the_cliff(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/past_the_cliff");
    for dimension in [16usize, 20, 24] {
        let rows = 3 * dimension;
        let mut rng = bench_rng();
        let systems: Vec<_> = (0..2).map(|_| random_system(dimension, rows, &mut rng)).collect();
        for sys in &systems {
            assert_eq!(
                sys.is_feasible(FeasibilityEngine::Bareiss).unwrap(),
                sys.is_feasible(FeasibilityEngine::Simplex).unwrap(),
                "routes must agree at {dimension}x{rows}"
            );
        }
        // Both routes at the old cap so the crossover is visible; the
        // rational route is dropped beyond it (it still finishes, but its
        // limb arithmetic is exactly the cost this sweep exists to remove).
        let engines: &[FeasibilityEngine] = if dimension <= 16 {
            &[FeasibilityEngine::Bareiss, FeasibilityEngine::Simplex]
        } else {
            &[FeasibilityEngine::Bareiss]
        };
        for &engine in engines {
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), format!("{dimension}x{rows}")),
                &systems,
                |b, systems| {
                    b.iter(|| {
                        for sys in systems {
                            black_box(sys.is_feasible(engine).unwrap());
                        }
                    });
                },
            );
        }
    }
    // MPI-derived systems past the previous 14-unknown cap.
    for unknowns in [18usize] {
        let terms = 4 * unknowns;
        let mut rng = bench_rng();
        let systems: Vec<_> =
            (0..2).map(|_| random_mpi(unknowns, terms, 6, &mut rng).to_strict_system()).collect();
        for sys in &systems {
            assert_eq!(
                sys.is_feasible(FeasibilityEngine::Bareiss).unwrap(),
                sys.is_feasible(FeasibilityEngine::Simplex).unwrap(),
                "routes must agree on the {unknowns}-unknown MPI systems"
            );
        }
        group.bench_with_input(
            BenchmarkId::new("Bareiss/mpi", unknowns),
            &systems,
            |b, systems| {
                b.iter(|| {
                    for sys in systems {
                        black_box(sys.is_feasible(FeasibilityEngine::Bareiss).unwrap());
                    }
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dimension_sweep, bench_row_sweep, bench_mpi_derived_systems,
        bench_simplex_scale, bench_past_the_cliff
}
criterion_main!(benches);
