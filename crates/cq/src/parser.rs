//! A small parser for conjunctive queries in the paper's datalog notation.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query     ::=  head "<-" body "."?
//! head      ::=  NAME "(" terms? ")"
//! body      ::=  "true" | atom ("," atom)*
//! atom      ::=  NAME mult? "(" terms? ")"
//! mult      ::=  "^" NUMBER
//! terms     ::=  term ("," term)*
//! term      ::=  NAME            (a variable, e.g. x1, y)
//!             |  "'" NAME "'"    (a language constant, e.g. 'c1')
//!             |  NUMBER          (a numeric language constant)
//!             |  "^" NAME        (a canonical constant, e.g. ^x1)
//! ```
//!
//! Example (the paper's Section 2 running query):
//!
//! ```
//! use dioph_cq::parse_query;
//! let q = parse_query("q(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4).").unwrap();
//! assert_eq!(q.total_atom_count(), 6);
//! assert_eq!(q.distinct_atom_count(), 4);
//! ```

use core::fmt;

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::term::Term;
use crate::ucq::UnionOfConjunctiveQueries;

/// Error produced when parsing a query fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueryError {
    /// Human-readable description of the problem.
    message: String,
    /// Byte offset in the input at which the problem was detected.
    position: usize,
}

impl ParseQueryError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseQueryError { message: message.into(), position }
    }

    /// The byte offset at which parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseQueryError {}

/// Parses a conjunctive query written in datalog notation with optional
/// multiplicity superscripts (see the module documentation for the grammar).
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseQueryError> {
    let mut p = Parser::new(input);
    let q = p.query()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(ParseQueryError::new("unexpected trailing input", p.pos));
    }
    Ok(q)
}

/// Parses a union of conjunctive queries: one query per non-empty line (or
/// queries separated by `;`). All disjuncts must share the same arity.
pub fn parse_ucq(input: &str) -> Result<UnionOfConjunctiveQueries, ParseQueryError> {
    let mut disjuncts = Vec::new();
    for piece in input.split([';', '\n']) {
        if piece.trim().is_empty() {
            continue;
        }
        disjuncts.push(parse_query(piece)?);
    }
    if disjuncts.is_empty() {
        return Err(ParseQueryError::new("a UCQ needs at least one disjunct", 0));
    }
    let arity = disjuncts[0].arity();
    if disjuncts.iter().any(|d| d.arity() != arity) {
        return Err(ParseQueryError::new("all UCQ disjuncts must have the same arity", 0));
    }
    Ok(UnionOfConjunctiveQueries::new(disjuncts))
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: u8) -> Result<(), ParseQueryError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseQueryError::new(
                format!(
                    "expected '{}', found {}",
                    expected as char,
                    other.map_or("end of input".to_string(), |b| format!("'{}'", b as char))
                ),
                self.pos,
            )),
        }
    }

    fn identifier(&mut self) -> Result<String, ParseQueryError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParseQueryError::new("expected an identifier", self.pos));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<u64, ParseQueryError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ParseQueryError::new("expected a number", self.pos));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| ParseQueryError::new("number too large", start))
    }

    fn query(&mut self) -> Result<ConjunctiveQuery, ParseQueryError> {
        let name = self.identifier()?;
        self.expect(b'(')?;
        let head = self.term_list(b')')?;
        self.expect(b')')?;
        // Arrow: "<-" or ":-".
        self.skip_ws();
        match (self.bump(), self.bump()) {
            (Some(b'<'), Some(b'-')) | (Some(b':'), Some(b'-')) => {}
            _ => {
                return Err(ParseQueryError::new(
                    "expected '<-' or ':-'",
                    self.pos.saturating_sub(2),
                ))
            }
        }
        self.skip_ws();
        // Body: "true" or a list of atoms.
        let mut atoms: Vec<(Atom, u64)> = Vec::new();
        if self.input[self.pos..].trim_start().starts_with("true") {
            self.skip_ws();
            self.pos += 4;
        } else {
            loop {
                atoms.push(self.atom()?);
                self.skip_ws();
                if self.peek() == Some(b',') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.skip_ws();
        if self.peek() == Some(b'.') {
            self.pos += 1;
        }
        Ok(ConjunctiveQuery::new(name, head, atoms))
    }

    fn atom(&mut self) -> Result<(Atom, u64), ParseQueryError> {
        let relation = self.identifier()?;
        self.skip_ws();
        let mult = if self.peek() == Some(b'^') {
            self.pos += 1;
            self.number()?
        } else {
            1
        };
        self.expect(b'(')?;
        let terms = self.term_list(b')')?;
        self.expect(b')')?;
        Ok((Atom::new(relation, terms), mult))
    }

    fn term_list(&mut self, closing: u8) -> Result<Vec<Term>, ParseQueryError> {
        let mut terms = Vec::new();
        self.skip_ws();
        if self.peek() == Some(closing) {
            return Ok(terms);
        }
        loop {
            terms.push(self.term()?);
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(terms)
    }

    fn term(&mut self) -> Result<Term, ParseQueryError> {
        self.skip_ws();
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let name = self.identifier()?;
                self.expect(b'\'')?;
                Ok(Term::constant(name))
            }
            Some(b'^') => {
                self.pos += 1;
                let name = self.identifier()?;
                Ok(Term::canon(name))
            }
            Some(b) if b.is_ascii_digit() => {
                let n = self.number()?;
                Ok(Term::constant(n.to_string()))
            }
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => Ok(Term::var(self.identifier()?)),
            other => Err(ParseQueryError::new(
                format!(
                    "expected a term, found {}",
                    other.map_or("end of input".to_string(), |b| format!("'{}'", b as char))
                ),
                self.pos,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_examples;

    #[test]
    fn parses_paper_section2_query() {
        let q =
            parse_query("q3(x1, x2) <- R^2(x1, y1), R(x1, y2), P^2(y2, y3), P(x2, y4).").unwrap();
        assert_eq!(q, paper_examples::section2_query_q3());
    }

    #[test]
    fn parses_constants_and_canonical_constants() {
        let q = parse_query("q(x1, x2) <- R^2(x1, x2), R('c1', x2), R^3(x1, 'c2')").unwrap();
        assert_eq!(q, paper_examples::section3_query_q1().with_name("q"));
        let g = parse_query("g(^x1, ^x2) <- R(^x1, ^x2)").unwrap();
        assert_eq!(g.head(), &[Term::canon("x1"), Term::canon("x2")]);
        assert!(g.body_atoms().all(Atom::is_ground));
    }

    #[test]
    fn numeric_constants() {
        let q = parse_query("q(x) <- R(x, 42)").unwrap();
        let atom = q.body_atoms().next().unwrap();
        assert_eq!(atom.terms()[1], Term::constant("42"));
    }

    #[test]
    fn boolean_and_empty_body_queries() {
        let b = parse_query("b() <- R('a', 'b'), R('b', 'c')").unwrap();
        assert!(b.is_boolean());
        assert_eq!(b.total_atom_count(), 2);
        let t = parse_query("t() <- true.").unwrap();
        assert!(t.is_boolean());
        assert_eq!(t.total_atom_count(), 0);
    }

    #[test]
    fn prolog_style_arrow_and_no_period() {
        let q = parse_query("q(x) :- R(x, x)").unwrap();
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn roundtrip_through_display() {
        // Display output re-parses to the same query.
        for q in [
            paper_examples::section2_query_q1(),
            paper_examples::section2_query_q2(),
            paper_examples::section2_query_q3(),
            paper_examples::section3_query_q1(),
            paper_examples::section3_query_q2(),
        ] {
            let reparsed = parse_query(&q.to_string()).unwrap();
            assert_eq!(reparsed, q, "round-trip failed for {q}");
        }
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_query("q(x) <- ").unwrap_err();
        assert!(err.to_string().contains("identifier"));
        let err = parse_query("q(x R(x)").unwrap_err();
        assert!(err.position() > 0);
        assert!(parse_query("q(x) - R(x)").is_err());
        assert!(parse_query("q(x) <- R(x, )").is_err());
        assert!(parse_query("q(x) <- R(x) extra").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("q(x) <- R^(x)").is_err());
        assert!(parse_query("q(x) <- R('unterminated)").is_err());
    }

    #[test]
    fn parses_ucqs() {
        let ucq = parse_ucq("q1(x) <- R(x, x); q2(x) <- S(x, 'c')").unwrap();
        assert_eq!(ucq.disjuncts().len(), 2);
        let ucq2 = parse_ucq("q1(x) <- R(x, x)\nq2(x) <- S(x, 'c')\n").unwrap();
        assert_eq!(ucq2.disjuncts().len(), 2);
        assert!(parse_ucq("").is_err());
        assert!(parse_ucq("q1(x) <- R(x); q2(x, y) <- R(x, y)").is_err());
    }
}
