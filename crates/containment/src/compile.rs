//! Compilation of a bag-containment instance into a Monomial–Polynomial
//! Inequality (Definitions 3.2 and 3.3 of the paper).
//!
//! Fixing a projection-free containee `q1(x1)`, a probe tuple `t` and the
//! containing query `q2(x2)`:
//!
//! * the **unknowns** are the distinct atoms of `body(q1(t))` (equivalently,
//!   the facts of the canonical instance `I_{q1(t)}`), each standing for the
//!   unknown multiplicity that a bag assigns to that fact;
//! * the **monomial** `M_{q1(t)}(u)` has exponent `µ_{q1(t)}(α)` for the
//!   unknown of atom `α`;
//! * the **polynomial** `P^{q2}_{q1(t)}(u)` has one monomial per containment
//!   mapping `h ∈ CM(q2(x2), q1(t))`, namely the monomial of the collapsed
//!   image query `h(q2)`; mappings with identical images accumulate into the
//!   coefficient.
//!
//! Corollary 3.1 / Theorem 5.3 then reduce the containment question to the
//! (un)solvability of `P(u) < M(u)` over the naturals.

use std::sync::OnceLock;

use dioph_arith::Natural;
use dioph_bagdb::{bag_answer_multiplicity, BagInstance};
use dioph_cq::{
    for_each_containment_mapping_to_grounded, most_general_probe_tuple, Atom, ConjunctiveQuery,
    MappingBindings, ProbeSpace, Term,
};
use dioph_poly::{Monomial, Mpi, Polynomial};

use crate::certificate::{ContainmentError, Counterexample};

/// A bag-containment instance compiled to an MPI for one probe tuple.
///
/// The probe tuple and the unknown vector are not stored separately: the
/// probe is the grounded containee's head, and unknown `u_j` is the `j`-th
/// distinct atom of its body (in the deterministic body order).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompiledProbe {
    /// The grounded containee `q1(t)`; its head is the probe tuple `t` and
    /// its distinct body atoms are the unknowns.
    grounded_containee: ConjunctiveQuery,
    /// The MPI `P^{q2}_{q1(t)}(u) < M_{q1(t)}(u)`.
    mpi: Mpi,
    /// Number of containment mappings found (before accumulation).
    mapping_count: usize,
}

impl CompiledProbe {
    /// Compiles the MPI for containee `q1`, containing query `q2` and probe
    /// tuple `probe`.
    ///
    /// Returns `None` when the probe tuple is not unifiable with the head of
    /// `q1` (such tuples are not probe tuples of `q1` at all).
    pub fn compile(
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
        probe: &[Term],
    ) -> Option<CompiledProbe> {
        CompiledProbe::compile_owned(containee, containing, probe.to_vec())
    }

    /// [`Self::compile`] taking ownership of the probe tuple, so callers that
    /// materialise the tuple anyway (the probe-space resolution of
    /// [`CompiledPair::probe`]) hand it over instead of copying it again.
    pub fn compile_owned(
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
        probe: Vec<Term>,
    ) -> Option<CompiledProbe> {
        // Memoised slots reach this function only on their first fill, so the
        // counter reads as "cold compilations".
        dioph_obs::registry::CACHE_PROBE_COMPILED.incr();
        let _compile_span = dioph_obs::span(dioph_obs::Phase::Compile);
        let grounded = containee.ground_with_tuple(probe)?;
        // Unknowns: the distinct atoms of body(q1(t)), in deterministic order.
        // They are borrowed straight from the grounded query rather than
        // cloned into a side vector; the grounded containee is kept alive in
        // the compiled probe as the single owner of both the probe tuple (its
        // head) and the unknown vector (its distinct body atoms).
        let n = grounded.distinct_atom_count();

        // Monomial side: exponents are the body multiplicities of q1(t), in
        // the same deterministic (sorted) order as the unknowns.
        let mut mono_exponents = vec![0u64; n];
        for (j, (_atom, mult)) in grounded.body().enumerate() {
            mono_exponents[j] = mult;
        }
        let monomial = Monomial::new(mono_exponents);

        // Polynomial side: one monomial per containment mapping h ∈ CM(q2, q1(t)).
        // The visitor enumeration never materialises a substitution or the
        // image query h(q2): each image atom is matched term-wise against the
        // unknown vector, and multiplicities of atoms that collapse under h
        // accumulate directly into the reused exponent buffer (Equation 1).
        let mut polynomial = Polynomial::zero(n);
        let mut mapping_count = 0usize;
        let mut exponents = vec![0u64; n];
        for_each_containment_mapping_to_grounded(containing, &grounded, |h| {
            mapping_count += 1;
            exponents.iter_mut().for_each(|e| *e = 0);
            for (atom, mult) in containing.body() {
                let j = grounded.body_atoms().position(|cand| image_matches(cand, atom, h)).expect(
                    "the image of a containment mapping lies inside the canonical instance",
                );
                exponents[j] += mult;
            }
            polynomial.add_monomial(Monomial::from_slice(&exponents));
        });
        dioph_obs::registry::CONTAINMENT_MAPPINGS.add(mapping_count as u64);

        Some(CompiledProbe {
            grounded_containee: grounded,
            mpi: Mpi::new(polynomial, monomial),
            mapping_count,
        })
    }

    /// The probe tuple: the head of the grounded containee.
    pub fn probe(&self) -> &[Term] {
        self.grounded_containee.head()
    }

    /// The grounded containee `q1(t)`.
    pub fn grounded_containee(&self) -> &ConjunctiveQuery {
        &self.grounded_containee
    }

    /// The unknown vector: the atom associated with each unknown, in the
    /// grounded containee's deterministic (sorted) body order.
    pub fn atoms(&self) -> impl ExactSizeIterator<Item = &Atom> {
        self.grounded_containee.body_atoms()
    }

    /// The number of unknowns.
    pub fn dimension(&self) -> usize {
        self.grounded_containee.distinct_atom_count()
    }

    /// The compiled MPI `P(u) < M(u)`.
    pub fn mpi(&self) -> &Mpi {
        &self.mpi
    }

    /// The number of containment mappings from the containing query into
    /// `q1(t)` (the number of monomial contributions before accumulation).
    pub fn mapping_count(&self) -> usize {
        self.mapping_count
    }

    /// Human-readable unknown names `u_{α}` for display.
    pub fn unknown_names(&self) -> Vec<String> {
        self.atoms().map(|a| format!("u_{a}")).collect()
    }

    /// Turns a natural assignment to the unknowns into the corresponding bag
    /// over the canonical instance `I_{q1(t)}`.
    ///
    /// # Panics
    /// Panics if the assignment's length differs from the number of unknowns.
    pub fn assignment_to_bag(&self, assignment: &[Natural]) -> BagInstance {
        assert_eq!(assignment.len(), self.dimension(), "assignment dimension mismatch");
        BagInstance::from_multiplicities(self.atoms().cloned().zip(assignment.iter().cloned()))
    }
}

/// A whole containment pair compiled once and shared **read-only** across
/// probes, worker threads and repeated decisions.
///
/// This is the compilation cache behind `dioph-engine`: validation of the
/// containee happens exactly once (in [`CompiledPair::new`]), and every
/// per-probe compilation — the containment-mapping enumeration plus the MPI
/// assembly of [`CompiledProbe::compile`] — is memoised in a
/// [`OnceLock`] slot keyed by the probe's raw index in the pair's
/// [`ProbeSpace`]. All state is immutable after initialisation, so a
/// `CompiledPair` is `Send + Sync` and can sit behind an `Arc` (or a scoped
/// borrow) while any number of threads resolve disjoint — or even
/// overlapping — probe indices concurrently; a probe raced by two threads is
/// still compiled only once.
///
/// Deciding the same pair again (a `bench --repeat` loop, a batch stream
/// replaying a pair, the two directions of an equivalence check each hitting
/// their own pair) reuses every compiled MPI instead of re-enumerating the
/// containment mappings.
#[derive(Debug)]
pub struct CompiledPair {
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
    most_general: OnceLock<CompiledProbe>,
    space: OnceLock<ProbeSpace>,
    /// One memoisation slot per raw probe index; `None` marks an index whose
    /// candidate tuple is not unifiable with the head (not a probe tuple).
    slots: OnceLock<Vec<OnceLock<Option<CompiledProbe>>>>,
}

impl CompiledPair {
    /// Validates the containee and wraps the pair for shared compilation.
    ///
    /// # Errors
    /// The same validation errors as `BagContainmentDecider::decide`:
    /// [`ContainmentError::EmptyBody`],
    /// [`ContainmentError::ContaineeNotProjectionFree`] and
    /// [`ContainmentError::UnsafeQuery`].
    pub fn new(
        containee: ConjunctiveQuery,
        containing: ConjunctiveQuery,
    ) -> Result<CompiledPair, ContainmentError> {
        validate_containee(&containee)?;
        Ok(CompiledPair {
            containee,
            containing,
            most_general: OnceLock::new(),
            space: OnceLock::new(),
            slots: OnceLock::new(),
        })
    }

    /// The containee `q1` (left side of `⊑b`).
    pub fn containee(&self) -> &ConjunctiveQuery {
        &self.containee
    }

    /// The containing query `q2` (right side of `⊑b`).
    pub fn containing(&self) -> &ConjunctiveQuery {
        &self.containing
    }

    /// The compiled most-general probe (Theorem 5.3), compiled on first use.
    pub fn most_general(&self) -> &CompiledProbe {
        self.most_general.get_or_init(|| {
            let probe = most_general_probe_tuple(&self.containee);
            CompiledProbe::compile_owned(&self.containee, &self.containing, probe)
                .expect("the most-general probe tuple always unifies with the head")
        })
    }

    /// The indexed probe space of the containee, computed on first use.
    pub fn probe_space(&self) -> &ProbeSpace {
        self.space.get_or_init(|| ProbeSpace::new(&self.containee))
    }

    /// The number of claimable probe units this pair exposes to a scheduler:
    /// the raw probe-space length, floored at one so a degenerate (empty)
    /// probe space still publishes a single no-op unit whose retirement
    /// finalizes the pair. Indices `0..probe_units()` are exactly the values
    /// [`Self::probe`] accepts, except in the degenerate case, which a
    /// claimer must guard with [`ProbeSpace::raw_len`].
    pub fn probe_units(&self) -> usize {
        self.probe_space().raw_len().max(1)
    }

    /// Resolves (and memoises) the compilation of the probe with raw index
    /// `index` in [`Self::probe_space`]; `None` when that index is not a
    /// probe tuple. Safe to call from many threads at once.
    ///
    /// # Panics
    /// Panics if `index` is out of range for the probe space.
    pub fn probe(&self, index: usize) -> Option<&CompiledProbe> {
        let space = self.probe_space();
        let slots =
            self.slots.get_or_init(|| (0..space.raw_len()).map(|_| OnceLock::new()).collect());
        slots[index]
            .get_or_init(|| {
                space.tuple(index).map(|probe| {
                    CompiledProbe::compile_owned(&self.containee, &self.containing, probe)
                        .expect("probe tuples are unifiable with the head by construction")
                })
            })
            .as_ref()
    }

    /// Builds (and soundness-checks) the counterexample bag for a probe of
    /// this pair from a satisfying MPI assignment.
    ///
    /// # Panics
    /// Panics if the extracted bag does not actually violate containment —
    /// that would be an internal soundness bug, re-checked here with the
    /// independent Equation-2 evaluator.
    pub fn counterexample(
        &self,
        compiled: &CompiledProbe,
        assignment: &[Natural],
    ) -> Counterexample {
        let bag = compiled.assignment_to_bag(assignment);
        let probe: Vec<Term> = compiled.probe().to_vec();
        let containee_multiplicity = bag_answer_multiplicity(&self.containee, &bag, &probe);
        let containing_multiplicity = bag_answer_multiplicity(&self.containing, &bag, &probe);
        assert!(
            containee_multiplicity > containing_multiplicity,
            "internal soundness violation: extracted bag does not violate containment \
             (containee {containee_multiplicity} vs containing {containing_multiplicity})"
        );
        Counterexample { probe, bag, containee_multiplicity, containing_multiplicity }
    }
}

/// Does `candidate` equal the image `h(atom)`? Decided term-wise against the
/// mapping's bindings, so the image atom is never materialised.
fn image_matches(candidate: &Atom, atom: &Atom, h: &MappingBindings<'_>) -> bool {
    candidate.relation() == atom.relation()
        && candidate.arity() == atom.arity()
        && atom.terms().iter().zip(candidate.terms()).all(|(pattern, target)| {
            match pattern.as_var() {
                Some(v) => h.image_of(v) == Some(target),
                None => pattern == target,
            }
        })
}

/// Checks that `containee` lies in the fragment the paper's decision
/// procedure covers: non-empty body, projection-free, safe.
pub(crate) fn validate_containee(containee: &ConjunctiveQuery) -> Result<(), ContainmentError> {
    if containee.distinct_atom_count() == 0 {
        return Err(ContainmentError::EmptyBody { query: containee.name().to_string() });
    }
    let existential: Vec<String> = containee.existential_variables().into_iter().collect();
    if !existential.is_empty() {
        return Err(ContainmentError::ContaineeNotProjectionFree {
            existential_variables: existential,
        });
    }
    if !containee.is_safe() {
        let body = containee.body_variables();
        let missing: Vec<String> =
            containee.head_variables().into_iter().filter(|v| !body.contains(v)).collect();
        return Err(ContainmentError::UnsafeQuery {
            query: containee.name().to_string(),
            missing_variables: missing,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_arith::Natural;
    use dioph_cq::paper_examples;
    use dioph_linalg::FeasibilityEngine;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn paper_section3_running_example_compiles_to_the_printed_mpi() {
        // q1(x1,x2) ← R²(x1,x2), R(c1,x2), R³(x1,c2), probe (x̂1, x̂2),
        // q2(x1,x2) ← R³(x1,x2), R²(x1,y1), R²(y2,y1).
        // The paper derives M = u1²·u2·u3³ and P = u1⁷ + u1⁵·u2² + u1³·u3⁴
        // with u1 = u_{R(x̂1,x̂2)}, u2 = u_{R(c1,x̂2)}, u3 = u_{R(x̂1,c2)}.
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        let probe = vec![Term::canon("x1"), Term::canon("x2")];
        let compiled = CompiledProbe::compile(&q1, &q2, &probe).unwrap();

        assert_eq!(compiled.dimension(), 3);
        assert_eq!(compiled.mapping_count(), 3);

        // Identify the positions of the three unknowns.
        let pos = |atom: &Atom| compiled.atoms().position(|a| a == atom).unwrap();
        let u1 = pos(&Atom::new("R", vec![Term::canon("x1"), Term::canon("x2")]));
        let u2 = pos(&Atom::new("R", vec![Term::constant("c1"), Term::canon("x2")]));
        let u3 = pos(&Atom::new("R", vec![Term::canon("x1"), Term::constant("c2")]));

        // Monomial exponents: (2, 1, 3) on (u1, u2, u3).
        let mono = compiled.mpi().monomial();
        assert_eq!(mono.exponent(u1), 2);
        assert_eq!(mono.exponent(u2), 1);
        assert_eq!(mono.exponent(u3), 3);

        // Polynomial terms: u1^7, u1^5*u2^2, u1^3*u3^4, all with coefficient 1.
        let poly = compiled.mpi().polynomial();
        assert_eq!(poly.term_count(), 3);
        let mut expected = vec![(7u64, 0u64, 0u64), (5, 2, 0), (3, 0, 4)];
        let mut actual: Vec<(u64, u64, u64)> = poly
            .terms()
            .map(|(c, m)| {
                assert!(c.is_one());
                (m.exponent(u1), m.exponent(u2), m.exponent(u3))
            })
            .collect();
        expected.sort_unstable();
        actual.sort_unstable();
        assert_eq!(actual, expected);

        // The paper's evaluation: at (u1,u2,u3) = (1,4,3), P = 98 < 108 = M.
        let mut point = vec![Natural::zero(); 3];
        point[u1] = nat(1);
        point[u2] = nat(4);
        point[u3] = nat(3);
        assert!(compiled.mpi().is_solution(&point));
    }

    #[test]
    fn compile_fails_for_non_unifiable_probe() {
        // Head (x, x) cannot be grounded with two distinct constants.
        let q1 = dioph_cq::parse_query("q(x, x) <- R(x, x)").unwrap();
        let q2 = dioph_cq::parse_query("p(x, y) <- R(x, y)").unwrap();
        assert!(
            CompiledProbe::compile(&q1, &q2, &[Term::canon("x"), Term::constant("c")]).is_none()
        );
        assert!(CompiledProbe::compile(&q1, &q2, &[Term::canon("x"), Term::canon("x")]).is_some());
    }

    #[test]
    fn zero_polynomial_when_no_containment_mapping_exists() {
        // q2 uses a relation S that q1 does not mention: no containment mapping.
        let q1 = dioph_cq::parse_query("q(x) <- R(x, x)").unwrap();
        let q2 = dioph_cq::parse_query("p(x) <- S(x, x)").unwrap();
        let probe = vec![Term::canon("x")];
        let compiled = CompiledProbe::compile(&q1, &q2, &probe).unwrap();
        assert_eq!(compiled.mapping_count(), 0);
        assert!(compiled.mpi().polynomial().is_zero());
        // The MPI is then trivially solvable (containment fails).
        assert!(compiled.mpi().has_diophantine_solution(FeasibilityEngine::Simplex).unwrap());
    }

    #[test]
    fn identical_images_accumulate_coefficients() {
        // q1(x) ← R(x,x); q2(x) ← R(x,y1), R(y2,x): on the probe x̂ both
        // existential variables must map to x̂, and the two mappings' images
        // are distinct mappings but... here there is exactly one mapping.
        // Use a containing query with two interchangeable existential atoms
        // instead: q2(x) ← R(x,y1), R(x,y2) over q1(x) ← R(x,c1), R(x,c2):
        // mappings send (y1,y2) to (c1,c1), (c1,c2), (c2,c1), (c2,c2); the
        // images for (c1,c2) and (c2,c1) coincide, so that monomial gets
        // coefficient 2.
        let q1 = dioph_cq::parse_query("q(x) <- R(x, 'c1'), R(x, 'c2')").unwrap();
        let q2 = dioph_cq::parse_query("p(x) <- R(x, y1), R(x, y2)").unwrap();
        let probe = vec![Term::canon("x")];
        let compiled = CompiledProbe::compile(&q1, &q2, &probe).unwrap();
        assert_eq!(compiled.mapping_count(), 4);
        assert_eq!(compiled.mpi().polynomial().term_count(), 3);
        let coeffs: Vec<Natural> =
            compiled.mpi().polynomial().terms().map(|(c, _)| c.clone()).collect();
        assert!(coeffs.contains(&nat(2)));
        assert_eq!(compiled.mpi().polynomial().coefficient_sum(), nat(4));
    }

    #[test]
    fn assignment_to_bag_roundtrip() {
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        let probe = vec![Term::canon("x1"), Term::canon("x2")];
        let compiled = CompiledProbe::compile(&q1, &q2, &probe).unwrap();
        let assignment = vec![nat(1), nat(4), nat(3)];
        let bag = compiled.assignment_to_bag(&assignment);
        assert_eq!(bag.support_size(), 3);
        for (atom, value) in compiled.atoms().zip(&assignment) {
            assert_eq!(&bag.multiplicity(atom), value);
        }
    }

    #[test]
    fn compiled_pair_memoises_and_matches_direct_compilation() {
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        let pair = CompiledPair::new(q1.clone(), q2.clone()).unwrap();

        // The most-general probe is compiled once and shared by reference.
        let first = pair.most_general() as *const CompiledProbe;
        let second = pair.most_general() as *const CompiledProbe;
        assert_eq!(first, second, "repeated access must hit the same compilation");
        assert_eq!(
            pair.most_general(),
            &CompiledProbe::compile(&q1, &q2, &dioph_cq::most_general_probe_tuple(&q1)).unwrap()
        );

        // Every raw index resolves to exactly the probes the materialising
        // enumeration produces, in the same order.
        let space_len = pair.probe_space().raw_len();
        let via_pair: Vec<&CompiledProbe> = (0..space_len).filter_map(|i| pair.probe(i)).collect();
        let expected: Vec<CompiledProbe> = dioph_cq::probe_tuples(&q1)
            .iter()
            .map(|t| CompiledProbe::compile(&q1, &q2, t).unwrap())
            .collect();
        assert_eq!(via_pair.len(), expected.len());
        for (got, want) in via_pair.iter().zip(&expected) {
            assert_eq!(*got, want);
        }
        // Memoised: resolving an index again returns the same allocation.
        let a = pair.probe(0).unwrap() as *const CompiledProbe;
        let b = pair.probe(0).unwrap() as *const CompiledProbe;
        assert_eq!(a, b);
    }

    #[test]
    fn compiled_pair_is_send_sync_and_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledPair>();

        let q1 = paper_examples::section3_probe_example();
        let q2 = paper_examples::section3_probe_example();
        let pair = CompiledPair::new(q1, q2).unwrap();
        let n = pair.probe_space().raw_len();
        std::thread::scope(|s| {
            for worker in 0..4 {
                let pair = &pair;
                s.spawn(move || {
                    // Overlapping strides: every thread touches every index.
                    for i in 0..n {
                        let _ = pair.probe((i + worker) % n);
                    }
                });
            }
        });
        assert_eq!((0..n).filter_map(|i| pair.probe(i)).count(), 16);
    }

    #[test]
    fn compiled_pair_rejects_out_of_fragment_containees() {
        let ok = dioph_cq::parse_query("p(x) <- R(x, x)").unwrap();
        let not_pf = dioph_cq::parse_query("q(x) <- R(x, y)").unwrap();
        assert!(matches!(
            CompiledPair::new(not_pf, ok.clone()),
            Err(crate::ContainmentError::ContaineeNotProjectionFree { .. })
        ));
        let empty = ConjunctiveQuery::from_atom_list("e", vec![], vec![]);
        assert!(matches!(
            CompiledPair::new(empty, ok),
            Err(crate::ContainmentError::EmptyBody { .. })
        ));
    }

    #[test]
    fn grounding_merges_atoms_in_the_monomial() {
        // q1(x1,x2) ← R(x1,x2), R(x2,x1): on the diagonal probe (x̂, x̂) the two
        // atoms merge into a single unknown with monomial exponent 2.
        let q1 = dioph_cq::parse_query("q(x1, x2) <- R(x1, x2), R(x2, x1)").unwrap();
        let q2 = dioph_cq::parse_query("p(x1, x2) <- R(x1, x2)").unwrap();
        let diag = vec![Term::canon("z"), Term::canon("z")];
        // (x̂z, x̂z) is unifiable with (x1, x2) — both map to the same constant.
        let compiled = CompiledProbe::compile(&q1, &q2, &diag).unwrap();
        assert_eq!(compiled.dimension(), 1);
        assert_eq!(compiled.mpi().monomial().exponent(0), 2);
        assert_eq!(compiled.mpi().polynomial().term_count(), 1);
    }
}
