//! The probe-level worker pool: fan the probe tuples of one compiled pair
//! across threads, merge deterministically.
//!
//! ## Scheduling
//!
//! Probe tuples are addressed by their raw index in the pair's
//! [`ProbeSpace`](dioph_cq::ProbeSpace), so the scheduler is a single shared
//! atomic counter: a worker claims the next index, resolves it through the
//! pair's compilation cache (compiling the probe's MPI at most once even if
//! another caller races it), and decides it with
//! [`BagContainmentDecider::decide_probe`] — the same routine the sequential
//! loop runs.
//!
//! ## Deterministic merging
//!
//! The sequential decider returns the outcome of the **first** probe (in
//! probe order) that produces an event — a witness assignment or a
//! guess-and-check budget error. To be bit-identical for any thread count,
//! the pool keeps only the event with the lowest probe index and uses that
//! index as a *cutoff*: claimed indices above a known event are skipped
//! (their outcome could never win the merge), while lower indices are still
//! decided and may replace the event. Contained verdicts count every probe
//! tuple exactly once, so `probes_checked` also matches the sequential run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dioph_arith::Natural;
use dioph_containment::{BagContainment, BagContainmentDecider, CompiledPair, ContainmentError};

/// The outcome of one probe that can decide the whole pair.
enum ProbeEvent {
    /// An MPI assignment witnessing non-containment at this probe.
    Witness(Vec<Natural>),
    /// The per-probe decision failed (guess-and-check budget exhaustion).
    Error(ContainmentError),
}

/// Decides `pair` with `jobs` worker threads; bit-identical to
/// `decider.decide_pair(pair)`.
pub(crate) fn decide_pair_parallel(
    decider: &BagContainmentDecider,
    pair: &CompiledPair,
    jobs: usize,
) -> Result<BagContainment, ContainmentError> {
    dioph_obs::registry::ENGINE_PAIRS_DECIDED.incr();
    let raw_len = pair.probe_space().raw_len();
    let workers = jobs.min(raw_len).max(1);

    let next = AtomicUsize::new(0);
    let cutoff = AtomicUsize::new(usize::MAX);
    let first_event: Mutex<Option<(usize, ProbeEvent)>> = Mutex::new(None);
    let checked = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for worker in 0..workers {
            let (next, cutoff, first_event, checked) = (&next, &cutoff, &first_event, &checked);
            s.spawn(move || {
                dioph_obs::trace::name_current_thread(&format!("probe-worker-{worker}"));
                let mut claims = 0u64;
                let mut busy_ns = 0u64;
                let mut max_unit_ns = 0u64;
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= raw_len {
                        break;
                    }
                    claims += 1;
                    dioph_obs::registry::ENGINE_PROBES_CLAIMED.incr();
                    // An event at a lower index already decides the pair;
                    // skipping is only an optimisation (a stale read costs
                    // wasted work, never a wrong merge).
                    if index > cutoff.load(Ordering::Relaxed) {
                        continue;
                    }
                    let unit_start = dioph_obs::phase::timing_enabled().then(Instant::now);
                    let Some(compiled) = pair.probe(index) else { continue };
                    checked.fetch_add(1, Ordering::Relaxed);
                    let outcome = decider.decide_probe(compiled);
                    if let Some(start) = unit_start {
                        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        busy_ns = busy_ns.saturating_add(ns);
                        max_unit_ns = max_unit_ns.max(ns);
                    }
                    let event = match outcome {
                        Ok(None) => continue,
                        Ok(Some(assignment)) => ProbeEvent::Witness(assignment),
                        Err(error) => ProbeEvent::Error(error),
                    };
                    let mut earliest = first_event.lock().expect("probe workers never panic");
                    if earliest.as_ref().is_none_or(|(winner, _)| index < *winner) {
                        *earliest = Some((index, event));
                        cutoff.store(index, Ordering::Relaxed);
                    }
                }
                dioph_obs::pool::record("probe", worker, claims, busy_ns, max_unit_ns);
            });
        }
    });

    let result = match first_event.into_inner().expect("probe workers never panic") {
        Some((index, ProbeEvent::Witness(assignment))) => {
            let compiled = pair.probe(index).expect("the winning event came from a probe");
            Ok(BagContainment::NotContained(Box::new(pair.counterexample(compiled, &assignment))))
        }
        Some((_, ProbeEvent::Error(error))) => Err(error),
        None => Ok(BagContainment::Contained { probes_checked: checked.into_inner() }),
    };
    if let Ok(verdict) = &result {
        dioph_containment::observe_verdict(verdict);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::Algorithm;
    use dioph_cq::parse_query;

    #[test]
    fn parallel_all_probes_matches_sequential_probe_counts() {
        // The diagonal-probe example has 16 probe tuples; all must be
        // checked (and counted) when containment holds.
        let q = parse_query("q(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2')").unwrap();
        let decider = BagContainmentDecider::new(Algorithm::AllProbes);
        let pair = CompiledPair::new(q.clone(), q.clone()).unwrap();
        let sequential = decider.decide_pair(&pair).unwrap();
        for jobs in [1, 2, 3, 8, 64] {
            let parallel = decide_pair_parallel(&decider, &pair, jobs).unwrap();
            assert_eq!(parallel, sequential, "jobs={jobs}");
        }
        assert!(matches!(sequential, BagContainment::Contained { probes_checked: 16 }));
    }

    #[test]
    fn parallel_merge_picks_the_first_failing_probe() {
        // A failing pair: the counterexample must be the one the sequential
        // loop finds (the lowest-index failing probe), for every job count.
        let q1 = parse_query("q(x, y) <- R(x, y)").unwrap();
        let q2 = parse_query("p(x, y) <- R(x, x)").unwrap();
        let decider = BagContainmentDecider::new(Algorithm::AllProbes);
        let sequential = decider.decide(&q1, &q2).unwrap();
        let ce = sequential.counterexample().expect("pair must fail");
        for jobs in [2, 4, 16] {
            let pair = CompiledPair::new(q1.clone(), q2.clone()).unwrap();
            let parallel = decide_pair_parallel(&decider, &pair, jobs).unwrap();
            assert_eq!(parallel.counterexample(), Some(ce), "jobs={jobs}");
            assert_eq!(parallel.to_json(), sequential.to_json(), "jobs={jobs}");
        }
    }
}
