//! # dioph-containment — bag-containment decision procedures
//!
//! The primary contribution of *"Attacking Diophantus: Solving a Special Case
//! of Bag Containment"* (Konstantinidis & Mogavero, PODS 2019), as a library:
//! deciding `q1 ⊑b q2` — bag containment of a **projection-free** conjunctive
//! query `q1` into an arbitrary conjunctive query `q2` — in Π₂ᵖ, with
//! explicit, machine-verified counterexample bags when containment fails.
//!
//! ## Pipeline
//!
//! 1. [`CompiledProbe`] compiles (containee, containing, probe tuple) into a
//!    Monomial–Polynomial Inequality (Definitions 3.2/3.3);
//! 2. `dioph-poly` decides the MPI through the strict homogeneous linear
//!    system of Theorem 4.1, solved by `dioph-linalg` (Theorem 4.2);
//! 3. [`BagContainmentDecider`] wires it together following Theorem 5.3
//!    (most-general probe tuple), with Corollary 3.1 (all probes) and the
//!    Lemma 5.1 enumeration (guess & check) available as baselines;
//! 4. failures come with a [`Counterexample`] bag which is re-evaluated by
//!    the independent `dioph-bagdb` engine.
//!
//! ```
//! use dioph_containment::{is_bag_contained, set_containment};
//! use dioph_cq::paper_examples;
//!
//! let q1 = paper_examples::section2_query_q1();
//! let q2 = paper_examples::section2_query_q2();
//!
//! // q1 ⊑b q2 (the paper's Section 2 example) ...
//! assert!(is_bag_contained(&q1, &q2).unwrap().holds());
//!
//! // ... but q2 ⋢b q1, with an explicit violating bag.
//! let result = is_bag_contained(&q2, &q1).unwrap();
//! let witness = result.counterexample().unwrap();
//! assert!(witness.verify(&q2, &q1));
//!
//! // Both are set-equivalent, though — bag semantics is strictly finer.
//! assert!(set_containment(&q2, &q1).holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod compile;
mod decider;
pub mod json;
mod scratch;
mod set;

pub use certificate::{BagContainment, ContainmentError, Counterexample};
pub use compile::{CompiledPair, CompiledProbe};
pub use decider::{
    are_bag_equivalent, bag_equivalence, is_bag_contained, observe_verdict, Algorithm,
    BagContainmentDecider,
};
pub use scratch::ProbeScratch;
pub use set::{
    are_set_equivalent, bag_set_containment, is_bag_set_contained, set_containment, SetContainment,
};

// Re-export the configuration enum callers need to select an LP engine.
pub use dioph_linalg::FeasibilityEngine;
