//! Probe tuples (Definition 3.1 of the paper).
//!
//! Given a projection-free CQ `q(x)` over an n-tuple of free variables, a
//! *probe tuple* is an n-tuple of constants drawn from the active domain of
//! the canonical instance `I_{q(x)}` — i.e. from the canonical constants of
//! the variables of `q` plus the language constants of `q` — that is
//! unifiable with `x` (positions carrying the same variable receive the same
//! constant).
//!
//! Theorem 3.1 checks bag containment over every probe tuple; Theorem 5.3
//! later shows the single *most-general* probe tuple suffices. Both sets are
//! produced here.

use std::collections::BTreeSet;

use crate::query::ConjunctiveQuery;
use crate::term::Term;

/// The active domain of the canonical instance `I_{q(x)}`: canonical
/// constants of the query's variables plus its language constants.
pub fn canonical_active_domain(query: &ConjunctiveQuery) -> BTreeSet<Term> {
    let mut domain: BTreeSet<Term> = query.variables().into_iter().map(Term::CanonConst).collect();
    domain.extend(query.constants());
    domain
}

/// Enumerates all probe tuples of a query (Definition 3.1): every
/// `|head|`-tuple over the canonical active domain that is unifiable with the
/// head.
///
/// The number of probe tuples is `|adom(I_q)|^{arity}` before the
/// unifiability filter, so this is exponential in the arity; Theorem 5.3
/// (`most_general_probe_tuple`) avoids the enumeration in the decision
/// procedure, but the full set is still used for differential testing
/// (Corollary 3.1) and for the paper's Section 3 example.
///
/// # Panics
/// Panics if a head term is a constant (probe tuples are defined for queries
/// whose head is a tuple of variables).
pub fn probe_tuples(query: &ConjunctiveQuery) -> Vec<Vec<Term>> {
    for t in query.head() {
        assert!(
            t.is_var(),
            "probe tuples are defined for queries with an all-variable head, found {t}"
        );
    }
    let domain: Vec<Term> = canonical_active_domain(query).into_iter().collect();
    let arity = query.arity();
    if arity == 0 {
        // A Boolean query has exactly one (empty) probe tuple.
        return vec![Vec::new()];
    }
    if domain.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut current = vec![0usize; arity];
    loop {
        let tuple: Vec<Term> = current.iter().map(|&i| domain[i].clone()).collect();
        if unifiable_with_head(query.head(), &tuple) {
            out.push(tuple);
        }
        // Advance the mixed-radix counter.
        let mut pos = arity;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            current[pos] += 1;
            if current[pos] < domain.len() {
                break;
            }
            current[pos] = 0;
        }
    }
}

/// The *most-general* probe tuple `t*` (Theorem 5.3): each head variable is
/// replaced by its own canonical constant.
pub fn most_general_probe_tuple(query: &ConjunctiveQuery) -> Vec<Term> {
    query.head().iter().map(Term::canonicalize).collect()
}

fn unifiable_with_head(head: &[Term], tuple: &[Term]) -> bool {
    let mut sigma = crate::substitution::Substitution::identity();
    sigma.unify_tuples(head, tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::paper_examples;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn paper_section3_sixteen_probe_tuples() {
        // q(x1,x2) ← R(x1,x2), R(c1,x2), R(x1,c2) has 16 probe tuples:
        // all pairs over {x̂1, x̂2, c1, c2}.
        let q = paper_examples::section3_probe_example();
        let domain = canonical_active_domain(&q);
        assert_eq!(domain.len(), 4);
        let tuples = probe_tuples(&q);
        assert_eq!(tuples.len(), 16);
        // Spot-check a few members listed in the paper.
        assert!(tuples.contains(&vec![Term::canon("x1"), Term::canon("x1")]));
        assert!(tuples.contains(&vec![Term::canon("x1"), Term::constant("c1")]));
        assert!(tuples.contains(&vec![Term::constant("c2"), Term::constant("c1")]));
        // Every tuple is over the domain and has the right arity.
        for t in &tuples {
            assert_eq!(t.len(), 2);
            assert!(t.iter().all(|x| domain.contains(x)));
        }
    }

    #[test]
    fn most_general_probe_is_canonical_head() {
        let q = paper_examples::section3_query_q1();
        assert_eq!(most_general_probe_tuple(&q), vec![Term::canon("x1"), Term::canon("x2")]);
        // It is always one of the probe tuples.
        assert!(probe_tuples(&q).contains(&most_general_probe_tuple(&q)));
    }

    #[test]
    fn repeated_head_variables_restrict_probe_tuples() {
        // q(x, x) ← R(x, x): only "diagonal" tuples are unifiable with the head.
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x"), v("x")],
            vec![Atom::new("R", vec![v("x"), v("x")])],
        );
        let tuples = probe_tuples(&q);
        // Domain is {x̂}, and only (x̂, x̂) unifies.
        assert_eq!(tuples, vec![vec![Term::canon("x"), Term::canon("x")]]);
    }

    #[test]
    fn constants_enlarge_the_domain() {
        // q(x) ← R(x, c1): domain {x̂, c1}, probe tuples (x̂) and (c1).
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x")],
            vec![Atom::new("R", vec![v("x"), Term::constant("c1")])],
        );
        let tuples = probe_tuples(&q);
        assert_eq!(tuples.len(), 2);
        assert!(tuples.contains(&vec![Term::canon("x")]));
        assert!(tuples.contains(&vec![Term::constant("c1")]));
    }

    #[test]
    fn boolean_query_has_one_empty_probe_tuple() {
        let q = ConjunctiveQuery::from_atom_list(
            "b",
            vec![],
            vec![Atom::new("R", vec![Term::constant("a"), Term::constant("b")])],
        );
        assert_eq!(probe_tuples(&q), vec![Vec::<Term>::new()]);
        assert_eq!(most_general_probe_tuple(&q), Vec::<Term>::new());
    }

    #[test]
    fn existential_variables_contribute_canonical_constants() {
        // Even for a non-projection-free query, the canonical active domain
        // includes canonical constants of existential variables (they are
        // part of the canonical instance).
        let q = paper_examples::section2_query_q3();
        let domain = canonical_active_domain(&q);
        assert!(domain.contains(&Term::canon("y1")));
        assert!(domain.contains(&Term::canon("x1")));
        assert_eq!(domain.len(), 6);
    }

    #[test]
    #[should_panic(expected = "all-variable head")]
    fn grounded_heads_are_rejected() {
        let q = paper_examples::section3_query_q1().most_general_grounding();
        let _ = probe_tuples(&q);
    }

    #[test]
    fn probe_tuple_count_grows_with_domain_and_arity() {
        // q(x1,x2,x3) ← R(x1,x2,x3): 27 probe tuples (3 canonical constants).
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x1"), v("x2"), v("x3")],
            vec![Atom::new("R", vec![v("x1"), v("x2"), v("x3")])],
        );
        assert_eq!(probe_tuples(&q).len(), 27);
    }
}
