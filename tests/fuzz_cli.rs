//! End-to-end tests of `diophantus fuzz`, pinning the golden report.
//!
//! `tests/golden/fuzz.json` was produced by
//!
//! ```text
//! diophantus fuzz --seed 7 --cases 12 --samples 8 --json
//! ```
//!
//! and the current binary must reproduce it **byte-identically** — under
//! every `--lp-route` and `--jobs` value, since the report deliberately
//! records only seed-determined data. Any divergence means either the
//! decider's verdicts changed (a real regression) or the report stopped
//! being route/thread-invariant (a broken correctness claim).

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_diophantus");

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().expect("the diophantus binary must spawn");
    (
        out.status.code().expect("the binary must exit with a code"),
        String::from_utf8(out.stdout).expect("stdout must be UTF-8"),
        String::from_utf8(out.stderr).expect("stderr must be UTF-8"),
    )
}

fn golden() -> String {
    let path = format!("{}/tests/golden/fuzz.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

const GOLDEN_ARGS: [&str; 8] = ["fuzz", "--seed", "7", "--cases", "12", "--samples", "8", "--json"];

#[test]
fn fuzz_report_matches_the_golden_fixture_byte_for_byte() {
    let (code, stdout, stderr) = run(&GOLDEN_ARGS);
    assert_eq!(code, 0, "the golden run must be disagreement-free: {stderr}");
    assert_eq!(stdout, golden(), "fuzz --json diverged from tests/golden/fuzz.json");
}

#[test]
fn fuzz_report_is_route_and_thread_invariant() {
    let reference = golden();
    for extra in [
        &["--jobs", "2"][..],
        &["--jobs", "4"][..],
        &["--lp-route", "bareiss"][..],
        &["--lp-route", "auto", "--jobs", "4"][..],
    ] {
        let mut args = GOLDEN_ARGS.to_vec();
        args.extend_from_slice(extra);
        let (code, stdout, _) = run(&args);
        assert_eq!(code, 0, "{extra:?}");
        assert_eq!(stdout, reference, "fuzz report diverged under {extra:?}");
    }
}

#[test]
fn golden_report_verifies_and_tampering_is_caught() {
    // The pinned report's certificates re-check under the independent
    // evaluator via `diophantus verify` (file argument, as a user would).
    let path = format!("{}/tests/golden/fuzz.json", env!("CARGO_MANIFEST_DIR"));
    let (code, stdout, _) = run(&["verify", &path]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("0 failure(s)"), "{stdout}");
}

#[test]
fn injected_decider_bugs_are_caught_and_minimised() {
    // Acceptance gate: a deliberately corrupted decider must be caught, and
    // the disagreement shrunk to a reproducer of at most 4 atoms per side.
    for bug in ["flip-verdict", "tamper-certificate"] {
        let args = ["fuzz", "--seed", "7", "--cases", "12", "--samples", "8", "--inject", bug];
        let (code, stdout, stderr) = run(&args);
        assert_eq!(code, 1, "--inject {bug} must exit 1:\n{stdout}\n{stderr}");
        assert!(stderr.contains("disagreement(s) found"), "{bug}: {stderr}");
        let minimized: Vec<&str> = stdout
            .lines()
            .filter(|l| {
                l.trim_start().starts_with("minimized containee:")
                    || l.trim_start().starts_with("minimized containing:")
            })
            .collect();
        assert!(!minimized.is_empty(), "{bug}: no minimized reproducer in {stdout}");
        for line in minimized {
            let body = line.split("<-").nth(1).unwrap_or_else(|| panic!("{bug}: {line}"));
            let atoms = body.split("),").count();
            assert!(atoms <= 4, "{bug}: reproducer not minimal ({atoms} atoms): {line}");
        }
    }
}

#[test]
fn fuzz_exit_code_contract() {
    // 0 on a clean run, 1 on disagreements (tested above), 2 on usage errors.
    let (code, _, stderr) = run(&["fuzz", "--cases", "oops"]);
    assert_eq!(code, 2, "{stderr}");
    let (code, _, stderr) = run(&["fuzz", "--inject", "nonsense"]);
    assert_eq!(code, 2, "{stderr}");
    let (code, _, stderr) = run(&["fuzz", "--replay", "/nonexistent-corpus"]);
    assert_eq!(code, 1, "a missing corpus is an input failure: {stderr}");
}
