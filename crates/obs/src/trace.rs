//! Chrome trace-event collection (`--trace-out`).
//!
//! When enabled, every phase span (see [`crate::phase`]) is recorded as a
//! complete (`"ph":"X"`) trace event on the track of the thread that ran it,
//! with worker threads named by the pools that spawn them. [`Trace::to_chrome_json`]
//! renders the collected events as a trace-event JSON object loadable in
//! `chrome://tracing` and Perfetto.
//!
//! Collection is off by default and costs one relaxed load per span; once
//! [`enable`]d, each span takes one mutex push. Tracing is an explicit
//! observability mode, not a hot-path feature, so the simple global
//! collector wins over per-thread buffers.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static THREADS: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The trace-local id of the calling thread, assigned on first use.
fn current_tid() -> u64 {
    TID.with(|slot| match slot.get() {
        Some(tid) => tid,
        None => {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(tid));
            tid
        }
    })
}

/// One complete span on one thread's track.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// The phase name (`parse`, `lp`, …).
    pub name: &'static str,
    /// The trace-local thread id.
    pub tid: u64,
    /// Start offset from the trace epoch, in nanoseconds.
    pub ts_ns: u128,
    /// Duration in nanoseconds.
    pub dur_ns: u128,
}

/// Starts collecting trace events (idempotent). The first call pins the
/// trace epoch that all timestamps are relative to.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// `true` while spans are being recorded into the trace.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one finished span on the current thread's track. No-op unless
/// [`enable`]d.
pub fn record(name: &'static str, start: Instant, end: Instant) {
    if !is_enabled() {
        return;
    }
    let Some(epoch) = EPOCH.get() else { return };
    let event = TraceEvent {
        name,
        tid: current_tid(),
        ts_ns: start.duration_since(*epoch).as_nanos(),
        dur_ns: end.duration_since(start).as_nanos(),
    };
    if let Ok(mut events) = EVENTS.lock() {
        events.push(event);
    }
}

/// Names the current thread's track (`main`, `batch-worker-0`, …). The last
/// name registered for a thread wins.
pub fn name_current_thread(label: &str) {
    if !is_enabled() {
        return;
    }
    let tid = current_tid();
    if let Ok(mut threads) = THREADS.lock() {
        if let Some(slot) = threads.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = label.to_string();
        } else {
            threads.push((tid, label.to_string()));
        }
    }
}

/// Everything collected since [`enable`]: the spans plus the thread-name
/// table.
pub struct Trace {
    /// The recorded spans.
    pub events: Vec<TraceEvent>,
    /// `(tid, name)` labels registered via [`name_current_thread`].
    pub threads: Vec<(u64, String)>,
}

/// Stops collection and drains everything recorded so far.
pub fn take() -> Trace {
    ENABLED.store(false, Ordering::Relaxed);
    let events = EVENTS.lock().map(|mut e| std::mem::take(&mut *e)).unwrap_or_default();
    let mut threads = THREADS.lock().map(|mut t| std::mem::take(&mut *t)).unwrap_or_default();
    threads.sort();
    Trace { events, threads }
}

/// Renders nanoseconds as the microsecond numbers Chrome's `ts`/`dur`
/// fields expect, keeping nanosecond precision in the fraction.
fn micros(ns: u128) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl Trace {
    /// The trace-event JSON object (`{"traceEvents":[…]}`) Chrome and
    /// Perfetto load directly.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |text: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&text);
        };
        for (tid, name) in &self.threads {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut first,
            );
        }
        for event in &self.events {
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{},\"dur\":{}}}",
                    event.tid,
                    event.name,
                    micros(event.ts_ns),
                    micros(event.dur_ns),
                ),
                &mut first,
            );
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_keeps_nanosecond_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        // The suite shares the process; this test must not enable tracing.
        let t = Instant::now();
        record("parse", t, t);
        assert!(!is_enabled());
    }

    #[test]
    fn chrome_json_renders_threads_then_events() {
        let trace = Trace {
            events: vec![TraceEvent { name: "lp", tid: 3, ts_ns: 1_500, dur_ns: 250 }],
            threads: vec![(3, "probe-worker-1".to_string())],
        };
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"probe-worker-1\"}}"
        ));
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":3,\"name\":\"lp\",\"ts\":1.500,\"dur\":0.250}"
        ));
        assert!(json.ends_with("]}\n"));
    }
}
