//! The streaming batch front-end: `Job` in, `Verdict` out, in order,
//! continuously.
//!
//! A batch run wires four pieces together inside one `std::thread::scope`:
//!
//! ```text
//!   input ──JobReader──▶ feeder ──admit──▶ unified scheduler ──▶ workers
//!   (stdin,  (splits on    thread  (parse,  (each pair's probe    (claim
//!    file)    '.' pair      │       check,   space published as    (pair,
//!             boundaries)   │       compile) claimable units)      probe)
//!                           ▼                                      chunks)
//!                    collector (calling thread) ◀── finalized ──────┘
//!                    reorders by submission seq,      verdicts
//!                    emits Verdicts in order
//! ```
//!
//! The feeder admits pairs: it parses, fragment-checks and compiles (via
//! the shared [`CompilationCache`]) each job, answers broken jobs
//! immediately, and publishes every compiled pair's probe space into the
//! shared [`Scheduler`](crate::pool) as claimable unit ranges. Workers
//! pull (pair, probe-index) chunks from *any* in-flight pair, so a giant
//! pair amid small ones is drained by the whole pool. The input iterator
//! is pulled lazily (the feeder blocks admission while the pool is
//! saturated), so memory stays bounded no matter how long the stream is,
//! and verdict `k` is emitted as soon as jobs `1..=k` are done — not when
//! the stream ends.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::BufRead;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use dioph_analyze::first_fragment_error;
use dioph_containment::{Algorithm, BagContainment, CompiledPair, ContainmentError};
use dioph_cq::{parse_program_spanned, ConjunctiveQuery};

use crate::pool::{PairRef, Scheduler, UnitKind};
use crate::DecisionEngine;

/// How many compiled pairs the per-stream cache retains before it is
/// (crudely, but boundedly) cleared.
const CACHE_CAPACITY: usize = 256;

/// One unit of batch work: a `.`-terminated (containee, containing) pair in
/// the datalog notation of `docs/grammar.md`, plus a stable id the matching
/// [`Verdict`] carries back.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Job {
    /// Caller-chosen stable identifier (JobReader numbers jobs from 1).
    pub id: u64,
    /// The pair's source text (exactly two `.`-terminated queries).
    pub source: String,
    /// Set when the reader could not produce this job's source (an I/O
    /// failure, e.g. invalid UTF-8 in the stream); the engine reports it as
    /// a structured `read` failure instead of deciding anything.
    pub read_error: Option<String>,
}

/// A successfully decided pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PairOutcome {
    /// The parsed containee (left side of `⊑b`).
    pub containee: ConjunctiveQuery,
    /// The parsed containing query (right side of `⊑b`).
    pub containing: ConjunctiveQuery,
    /// The containment verdict, with certificate.
    pub verdict: BagContainment,
}

/// A per-job failure that does not abort the stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BatchError {
    /// The input stream failed before the job's source was complete.
    Read {
        /// The underlying I/O diagnostic.
        message: String,
    },
    /// The job's source text is not a well-formed pair of queries.
    Parse {
        /// Diagnostic (line/column are relative to the job's source text).
        message: String,
    },
    /// The pair parsed but could not be decided.
    Decide {
        /// Diagnostic naming the pair and the violated precondition.
        message: String,
    },
}

impl BatchError {
    /// The pipeline stage that failed: `"read"`, `"parse"` or `"decide"`.
    pub fn stage(&self) -> &'static str {
        match self {
            BatchError::Read { .. } => "read",
            BatchError::Parse { .. } => "parse",
            BatchError::Decide { .. } => "decide",
        }
    }

    /// The human-readable diagnostic.
    pub fn message(&self) -> &str {
        match self {
            BatchError::Read { message }
            | BatchError::Parse { message }
            | BatchError::Decide { message } => message,
        }
    }
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} error: {}", self.stage(), self.message())
    }
}

impl std::error::Error for BatchError {}

/// The engine's answer for one [`Job`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// The id of the job this verdict answers.
    pub id: u64,
    /// The decided pair, or the structured per-job failure.
    pub outcome: Result<PairOutcome, BatchError>,
}

/// Throughput statistics of one [`DecisionEngine::run_batch`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Jobs whose verdict was emitted (including failures).
    pub jobs_processed: u64,
    /// Emitted verdicts that carried a [`BatchError`].
    pub failures: u64,
    /// Compilations served from the shared cache.
    pub cache_hits: u64,
    /// Pairs compiled fresh (cache misses).
    pub cache_misses: u64,
}

// ---------------------------------------------------------------------------
// The compilation cache
// ---------------------------------------------------------------------------

/// A thread-safe cache of [`CompiledPair`]s keyed by the pair's
/// name-normalised datalog text.
///
/// Query names are erased from the key because they never influence a
/// verdict — `q1a ⊑b q1b` and `q7a ⊑b q7b` over the same bodies share one
/// compilation. The cached [`CompiledPair`] is itself a lazy per-probe
/// cache, so a stream that replays a pair skips the containment-mapping
/// enumeration and MPI assembly entirely, not just the parse.
pub struct CompilationCache {
    map: Mutex<HashMap<(String, String), Arc<CompiledPair>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompilationCache {
    /// A cache that holds up to `capacity` compiled pairs (it is cleared —
    /// not evicted entry-by-entry — when full, keeping memory bounded on
    /// adversarial streams).
    pub fn new(capacity: usize) -> Self {
        CompilationCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks the pair up, compiling (and validating) it on a miss.
    ///
    /// # Errors
    /// The validation errors of [`CompiledPair::new`].
    pub fn get_or_compile(
        &self,
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
    ) -> Result<Arc<CompiledPair>, ContainmentError> {
        let key = (normalised_text(containee), normalised_text(containing));
        if let Some(pair) = self.map.lock().expect("cache users never panic").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            dioph_obs::registry::CACHE_COMPILED_PAIR_HITS.incr();
            return Ok(Arc::clone(pair));
        }
        // Validate outside the lock; CompiledPair fills its probe slots
        // lazily, so this is cheap.
        let fresh = Arc::new(CompiledPair::new(containee.clone(), containing.clone())?);
        let mut map = self.map.lock().expect("cache users never panic");
        if let Some(raced) = map.get(&key) {
            // Another worker compiled the same pair while we validated; keep
            // the incumbent so both jobs share one per-probe cache.
            self.hits.fetch_add(1, Ordering::Relaxed);
            dioph_obs::registry::CACHE_COMPILED_PAIR_HITS.incr();
            return Ok(Arc::clone(raced));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        dioph_obs::registry::CACHE_COMPILED_PAIR_MISSES.incr();
        if map.len() >= self.capacity {
            map.clear();
        }
        map.insert(key, Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Number of cache lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of fresh compilations.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The cache key rendering: the query with its name erased.
fn normalised_text(query: &ConjunctiveQuery) -> String {
    query.clone().with_name("q").to_string()
}

// ---------------------------------------------------------------------------
// The job reader (streaming pair splitter)
// ---------------------------------------------------------------------------

/// Splits a `BufRead` into [`Job`]s — one per consecutive pair of
/// `.`-terminated queries — **without waiting for end of input**, so a batch
/// over stdin answers pairs as they arrive.
///
/// The splitter understands just enough of the grammar to find query
/// boundaries: `%` and `#` start line comments (a `.` inside a comment does
/// not terminate a query). Leading comments stay attached to the following
/// job. A trailing fragment at end of input (an unterminated query, or an
/// odd query left without a partner) becomes a final job whose parse failure
/// the batch reports like any other per-job error. An I/O failure (including
/// invalid UTF-8 in the stream) ends the stream with a final job carrying
/// [`Job::read_error`], so a truncated input is reported as a `read`
/// failure — never silently passed off as a clean end of input.
pub struct JobReader<R: BufRead> {
    reader: R,
    next_id: u64,
    ready: VecDeque<Job>,
    buffer: String,
    /// `.`-terminated queries accumulated in `buffer` so far (0 or 1).
    queries_in_buffer: usize,
    /// Whether `buffer` holds anything besides whitespace and comments.
    buffer_has_content: bool,
    exhausted: bool,
}

impl<R: BufRead> JobReader<R> {
    /// Wraps a reader; jobs are numbered from 1 in stream order.
    pub fn new(reader: R) -> Self {
        JobReader {
            reader,
            next_id: 1,
            ready: VecDeque::new(),
            buffer: String::new(),
            queries_in_buffer: 0,
            buffer_has_content: false,
            exhausted: false,
        }
    }

    fn push_job(&mut self, source: String, read_error: Option<String>) {
        self.ready.push_back(Job { id: self.next_id, source, read_error });
        self.next_id += 1;
    }

    fn complete_job(&mut self) {
        let source = std::mem::take(&mut self.buffer);
        self.queries_in_buffer = 0;
        self.buffer_has_content = false;
        self.push_job(source, None);
    }

    fn consume_line(&mut self, line: &str) {
        let mut in_comment = false;
        for ch in line.chars() {
            // Don't start a job's source with the whitespace left over from
            // the line a previous job ended on: diagnostics are job-relative
            // (`line:column` within `Job::source`), so every job must begin
            // at 1:1 with its first meaningful character.
            if self.buffer.is_empty() && ch.is_whitespace() {
                continue;
            }
            self.buffer.push(ch);
            if in_comment {
                continue;
            }
            match ch {
                '%' | '#' => in_comment = true,
                '.' => {
                    self.queries_in_buffer += 1;
                    if self.queries_in_buffer == 2 {
                        self.complete_job();
                    }
                }
                c if !c.is_whitespace() => self.buffer_has_content = true,
                _ => {}
            }
        }
    }
}

impl<R: BufRead> Iterator for JobReader<R> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        loop {
            if let Some(job) = self.ready.pop_front() {
                return Some(job);
            }
            if self.exhausted {
                return None;
            }
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    self.exhausted = true;
                    if self.buffer_has_content || self.queries_in_buffer > 0 {
                        // Unterminated tail: surface it as a job so its parse
                        // error is reported instead of silently dropped.
                        self.complete_job();
                    }
                }
                Err(error) => {
                    // The stream died mid-read (invalid UTF-8, a failing
                    // disk, …): everything after this point is unreadable,
                    // so flush any partial pair and then report the failure
                    // as a job of its own — the batch must not mistake a
                    // truncated input for a clean end of stream.
                    self.exhausted = true;
                    if self.buffer_has_content || self.queries_in_buffer > 0 {
                        self.complete_job();
                    }
                    self.push_job(String::new(), Some(format!("input stream failed: {error}")));
                }
                Ok(_) => self.consume_line(&line),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The batch runner
// ---------------------------------------------------------------------------

/// The feeder's admission decision for one job.
enum Admission {
    /// Already answered without scheduling (read / parse / fragment /
    /// compile failure).
    Answered(Verdict),
    /// Compiled and ready to publish as claimable units.
    Scheduled { context: JobContext, pair: Arc<CompiledPair> },
}

/// The job-local half of a scheduled pair: its id and *its own* parsed
/// queries. The scheduler decides through the cached [`CompiledPair`],
/// which may carry the names of whichever job compiled the same bodies
/// first — the emitted [`Verdict`] must echo this job's names.
struct JobContext {
    id: u64,
    containee: ConjunctiveQuery,
    containing: ConjunctiveQuery,
}

impl JobContext {
    /// Wraps the scheduler's pair result back into this job's verdict.
    fn into_verdict(self, result: Result<BagContainment, ContainmentError>) -> Verdict {
        let outcome = match result {
            Ok(verdict) => {
                Ok(PairOutcome { containee: self.containee, containing: self.containing, verdict })
            }
            Err(error) => Err(BatchError::Decide {
                message: format!(
                    "cannot decide {} ⊑b {}: {error}",
                    self.containee.name(),
                    self.containing.name()
                ),
            }),
        };
        Verdict { id: self.id, outcome }
    }
}

/// Parses, checks and compiles one job (runs on the feeder thread; the
/// probe decisions themselves stay on the workers, since a fresh
/// [`CompiledPair`] fills its probe slots lazily).
fn admit_job(cache: &CompilationCache, job: Job) -> Admission {
    let id = job.id;
    if let Some(message) = job.read_error {
        return Admission::Answered(Verdict { id, outcome: Err(BatchError::Read { message }) });
    }
    match compile_source(cache, &job.source) {
        Ok((containee, containing, pair)) => {
            Admission::Scheduled { context: JobContext { id, containee, containing }, pair }
        }
        Err(error) => Admission::Answered(Verdict { id, outcome: Err(error) }),
    }
}

fn compile_source(
    cache: &CompilationCache,
    source: &str,
) -> Result<(ConjunctiveQuery, ConjunctiveQuery, Arc<CompiledPair>), BatchError> {
    let queries = {
        let _parse_span = dioph_obs::span(dioph_obs::Phase::Parse);
        parse_program_spanned(source).map_err(|e| BatchError::Parse {
            message: format!("{}:{}: {}", e.line(), e.column(), e.message()),
        })?
    };
    dioph_obs::registry::PARSE_QUERIES.add(queries.len() as u64);
    let mut it = queries.into_iter();
    let (Some(containee), Some(containing), None) = (it.next(), it.next(), it.next()) else {
        return Err(BatchError::Parse {
            message: "a batch job must hold exactly one (containee, containing) pair of \
                      '.'-terminated queries"
                .to_string(),
        });
    };
    // Pre-flight fragment check: a containee the compiler would reject is
    // reported with its job-relative line:column and stable lint code
    // instead of the span-less `ContainmentError` rendering.
    let fragment_error = {
        let _check_span = dioph_obs::span(dioph_obs::Phase::Check);
        first_fragment_error(&containee, source)
    };
    if let Some(rendered) = fragment_error {
        return Err(BatchError::Decide {
            message: format!(
                "cannot decide {} ⊑b {}: {rendered}",
                containee.query.name(),
                containing.query.name()
            ),
        });
    }
    let (containee, containing) = (containee.query, containing.query);
    let pair = cache.get_or_compile(&containee, &containing).map_err(|e| BatchError::Decide {
        message: format!("cannot decide {} ⊑b {}: {e}", containee.name(), containing.name()),
    })?;
    Ok((containee, containing, pair))
}

/// See [`DecisionEngine::run_batch`].
pub(crate) fn run_batch<I, F>(engine: &DecisionEngine, jobs: I, mut emit: F) -> BatchStats
where
    I: Iterator<Item = Job> + Send,
    F: FnMut(Verdict) -> bool,
{
    let workers = engine.config().jobs.max(1);
    let cache = CompilationCache::new(CACHE_CAPACITY);
    let decider = engine.sequential_decider();
    let mut stats = BatchStats::default();

    // Every scheduled pair publishes its units through one shared queue,
    // so a worker drained of its own pair steals units from any other
    // in-flight pair instead of idling behind a giant one.
    let kind = if engine.config().algorithm == Algorithm::MostGeneralProbe {
        UnitKind::MostGeneral
    } else {
        UnitKind::ProbeSpace
    };
    // The in-flight-task capacity is the old bounded job channel's
    // backpressure: the feeder blocks when the pool is saturated, keeping
    // memory bounded on endless streams.
    let scheduler = Scheduler::new("batch", workers, workers * 2);
    let (out_tx, out_rx) = mpsc::channel::<(u64, Verdict)>();
    // The job-local context of every scheduled pair, keyed by submission
    // sequence; the finalizing worker takes it back out to assemble the
    // verdict.
    let contexts: Mutex<HashMap<u64, JobContext>> = Mutex::new(HashMap::new());

    std::thread::scope(|s| {
        for worker in 0..workers {
            let out_tx = out_tx.clone();
            let (scheduler, decider, contexts) = (&scheduler, &decider, &contexts);
            s.spawn(move || {
                scheduler.run_worker(worker, decider, &|seq, result| {
                    let context = contexts
                        .lock()
                        .expect("batch workers never panic")
                        .remove(&seq)
                        .expect("every scheduled job has a context");
                    let _ = out_tx.send((seq, context.into_verdict(result)));
                });
            });
        }

        let feeder_tx = out_tx.clone();
        drop(out_tx);
        let (scheduler_ref, cache_ref, contexts_ref) = (&scheduler, &cache, &contexts);
        s.spawn(move || {
            dioph_obs::trace::name_current_thread("batch-feeder");
            for (seq, job) in (0u64..).zip(jobs) {
                if scheduler_ref.is_aborted() {
                    break;
                }
                match admit_job(cache_ref, job) {
                    Admission::Answered(verdict) => {
                        if feeder_tx.send((seq, verdict)).is_err() {
                            break;
                        }
                    }
                    Admission::Scheduled { context, pair } => {
                        contexts_ref
                            .lock()
                            .expect("the batch feeder never panics")
                            .insert(seq, context);
                        if !scheduler_ref.admit(seq, PairRef::Shared(pair), kind) {
                            // Aborted while waiting for a slot; the context
                            // will never be finalized.
                            contexts_ref
                                .lock()
                                .expect("the batch feeder never panics")
                                .remove(&seq);
                            break;
                        }
                    }
                }
            }
            scheduler_ref.close();
        });

        // Collector (this thread): reorder by submission sequence, emit in
        // order as soon as every earlier verdict is out. When `emit` asks to
        // stop, the scheduler is aborted and the remaining in-flight results
        // are drained without being emitted.
        let mut next_seq = 0u64;
        let mut pending: BTreeMap<u64, Verdict> = BTreeMap::new();
        for (seq, verdict) in out_rx {
            if scheduler.is_aborted() {
                continue; // drain without emitting
            }
            pending.insert(seq, verdict);
            while let Some(verdict) = pending.remove(&next_seq) {
                let _merge_span = dioph_obs::span(dioph_obs::Phase::Merge);
                next_seq += 1;
                stats.jobs_processed += 1;
                dioph_obs::registry::ENGINE_BATCH_JOBS.incr();
                if verdict.outcome.is_err() {
                    stats.failures += 1;
                    dioph_obs::registry::ENGINE_BATCH_FAILURES.incr();
                }
                if !emit(verdict) {
                    scheduler.abort();
                    break;
                }
            }
        }
    });

    scheduler.finish();
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use dioph_cq::parse_program;

    fn reader(text: &str) -> JobReader<&[u8]> {
        JobReader::new(text.as_bytes())
    }

    #[test]
    fn job_reader_splits_pairs_across_and_within_lines() {
        let jobs: Vec<Job> = reader(
            "q1(x) <- R(x, x). p1(x) <- R(x, x).\n\
             q2(x) <- R(x, x).\np2(x) <- R(x, x). q3(x) <- S(x). p3(x) <- S(x).",
        )
        .collect();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[2].id, 3);
        for job in &jobs {
            assert_eq!(parse_program(&job.source).unwrap().len(), 2, "{}", job.source);
        }
    }

    #[test]
    fn job_reader_ignores_dots_in_comments_and_pure_comment_tails() {
        let jobs: Vec<Job> =
            reader("% a comment. with dots.\nq(x) <- R(x, x). p(x) <- R(x, x).\n% trailing.\n")
                .collect();
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].source.starts_with("% a comment"));
        assert_eq!(parse_program(&jobs[0].source).unwrap().len(), 2);
    }

    #[test]
    fn job_reader_surfaces_unterminated_tails_as_a_final_job() {
        let jobs: Vec<Job> =
            reader("q(x) <- R(x, x). p(x) <- R(x, x). odd(x) <- R(x, x).").collect();
        assert_eq!(jobs.len(), 2);
        assert_eq!(parse_program(&jobs[1].source).unwrap().len(), 1);

        let jobs: Vec<Job> = reader("q(x) <- R(x, x). p(x) <- R(x").collect();
        assert_eq!(jobs.len(), 1, "the cut-off text must not be dropped");
        assert!(parse_program(&jobs[0].source).is_err());
    }

    /// A reader that yields `data` and then fails, like a stream with a
    /// stray invalid-UTF-8 byte or a dying disk.
    struct FailingReader {
        data: &'static [u8],
        pos: usize,
    }

    impl std::io::Read for FailingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.data.len() {
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(std::io::Error::other("stray invalid byte"))
            }
        }
    }

    #[test]
    fn job_reader_surfaces_io_failures_as_read_error_jobs() {
        let failing = FailingReader { data: b"q1(x) <- R(x, x). p1(x) <- R(x, x).\n", pos: 0 };
        let jobs: Vec<Job> = JobReader::new(std::io::BufReader::new(failing)).collect();
        assert_eq!(jobs.len(), 2, "{jobs:?}");
        assert_eq!(jobs[0].read_error, None);
        let message = jobs[1].read_error.as_deref().expect("the failure must become a job");
        assert!(message.contains("stray invalid byte"), "{message}");

        // Through the engine, the failure is a structured `read` verdict —
        // a truncated stream can never end with exit-success silence.
        let failing = FailingReader { data: b"q1(x) <- R(x, x). p1(x) <- R(x, x).\n", pos: 0 };
        let engine = DecisionEngine::new(EngineConfig::default());
        let mut got: Vec<Verdict> = Vec::new();
        let stats = engine.run_batch(JobReader::new(std::io::BufReader::new(failing)), |v| {
            got.push(v);
            true
        });
        assert_eq!(stats.failures, 1);
        assert!(got[0].outcome.is_ok());
        assert_eq!(got[1].outcome.as_ref().unwrap_err().stage(), "read");
    }

    #[test]
    fn batch_emits_verdicts_in_submission_order_for_any_worker_count() {
        let mut input = String::new();
        for i in 0..12 {
            // Alternate contained / not-contained pairs so outcomes differ.
            if i % 2 == 0 {
                input.push_str(&format!("q{i}(x) <- R(x, x). p{i}(x) <- R(x, x).\n"));
            } else {
                input.push_str(&format!("q{i}(x) <- R(x, x), S(x). p{i}(x) <- R(x, x).\n"));
            }
        }
        let mut reference: Vec<Verdict> = Vec::new();
        DecisionEngine::new(EngineConfig { jobs: 1, ..Default::default() }).run_batch(
            reader(&input),
            |v| {
                reference.push(v);
                true
            },
        );
        for workers in [2usize, 4, 8] {
            let engine = DecisionEngine::new(EngineConfig { jobs: workers, ..Default::default() });
            let mut got: Vec<Verdict> = Vec::new();
            let stats = engine.run_batch(reader(&input), |v| {
                got.push(v);
                true
            });
            assert_eq!(got, reference, "workers={workers}");
            assert_eq!(stats.jobs_processed, 12);
            assert_eq!(stats.failures, 0);
        }
        assert_eq!(reference.len(), 12);
        assert!(reference.iter().enumerate().all(|(i, v)| v.id == i as u64 + 1));
        assert!(reference[0].outcome.as_ref().unwrap().verdict.holds());
        assert!(!reference[1].outcome.as_ref().unwrap().verdict.holds());
    }

    #[test]
    fn batch_failures_are_values_and_the_stream_continues() {
        let input = "q1(x) <- R(x, x). p1(x) <- R(x, x).\n\
                     broken(x <- R(x, x). p2(x) <- R(x, x).\n\
                     q3(x) <- R(x, y). p3(x) <- R(x, x).\n\
                     q4(x) <- R(x, x). p4(x) <- R(x, x).\n";
        let engine = DecisionEngine::new(EngineConfig { jobs: 3, ..Default::default() });
        let mut got: Vec<Verdict> = Vec::new();
        let stats = engine.run_batch(reader(input), |v| {
            got.push(v);
            true
        });
        assert_eq!(got.len(), 4);
        assert!(got[0].outcome.is_ok());
        let parse = got[1].outcome.as_ref().unwrap_err();
        assert_eq!(parse.stage(), "parse");
        let decide = got[2].outcome.as_ref().unwrap_err();
        assert_eq!(decide.stage(), "decide");
        assert!(decide.message().contains("projection-free"), "{decide}");
        // The fragment pre-check names the job-relative position of the
        // offending variable and the stable lint code.
        assert!(decide.message().contains("1:15: error[D002]"), "{decide}");
        assert!(got[3].outcome.is_ok());
        assert_eq!(stats.failures, 2);
        assert_eq!(stats.jobs_processed, 4);
    }

    #[test]
    fn batch_cache_amortises_replayed_pairs() {
        // The same pair body under rotating names: one compilation, many hits.
        let mut input = String::new();
        for i in 0..10 {
            input.push_str(&format!("q{i}(x) <- R^2(x, x). p{i}(x) <- R(x, y), R(y, x).\n"));
        }
        let engine = DecisionEngine::new(EngineConfig { jobs: 4, ..Default::default() });
        let mut verdicts = Vec::new();
        let stats = engine.run_batch(reader(&input), |v| {
            verdicts.push(v);
            true
        });
        assert_eq!(stats.jobs_processed, 10);
        assert_eq!(stats.cache_hits + stats.cache_misses, 10);
        assert!(stats.cache_misses < 10, "identical pairs must share a compilation: {stats:?}");
        // All ten verdicts agree (same underlying pair).
        let first = verdicts[0].outcome.as_ref().unwrap().verdict.clone();
        for v in &verdicts {
            assert_eq!(v.outcome.as_ref().unwrap().verdict, first);
        }
    }

    #[test]
    fn compilation_cache_clears_rather_than_grows_past_capacity() {
        let cache = CompilationCache::new(2);
        let qs: Vec<(ConjunctiveQuery, ConjunctiveQuery)> = (0..4)
            .map(|i| {
                let body = format!("q(x) <- R^{}(x, x)", i + 1);
                (dioph_cq::parse_query(&body).unwrap(), dioph_cq::parse_query(&body).unwrap())
            })
            .collect();
        for (a, b) in &qs {
            cache.get_or_compile(a, b).unwrap();
        }
        assert_eq!(cache.misses(), 4);
        // Replaying the last pair hits.
        cache.get_or_compile(&qs[3].0, &qs[3].1).unwrap();
        assert_eq!(cache.hits(), 1);
    }
}
