//! # dioph-cq — the conjunctive-query model
//!
//! The logical substrate of the *"Attacking Diophantus"* (PODS 2019)
//! reproduction: terms with canonical constants, atoms, conjunctive queries
//! in **bag representation**, substitutions, homomorphism / containment-
//! mapping enumeration, canonical instances, probe tuples and a datalog
//! parser.
//!
//! Everything here follows Section 2 and Section 3 of the paper closely; the
//! worked examples of those sections are available as fixtures in
//! [`paper_examples`].
//!
//! ```
//! use dioph_cq::{parse_query, probe_tuples, is_set_contained};
//!
//! let q1 = parse_query("q1(x1, x2) <- R^2(x1, x2), P^3(x2, x2)").unwrap();
//! let q2 = parse_query("q2(x1, x2) <- R^3(x1, x2), P^3(x2, x2)").unwrap();
//!
//! // Chandra–Merlin set containment: q1 ⊑s q2 and q2 ⊑s q1.
//! assert!(is_set_contained(&q1, &q2));
//! assert!(is_set_contained(&q2, &q1));
//!
//! // Probe tuples of a projection-free query (Definition 3.1).
//! assert_eq!(probe_tuples(&q1).len(), 4);
//! ```
//!
//! ---
//!
#![doc = include_str!("../../../docs/grammar.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atom;
mod homomorphism;
pub mod paper_examples;
mod parser;
mod probe;
mod query;
mod span;
mod substitution;
mod term;
mod ucq;

pub use atom::Atom;
pub use homomorphism::{
    containment_mappings, containment_mappings_to_grounded,
    for_each_containment_mapping_to_grounded, homomorphisms_into, is_set_contained,
    query_homomorphisms, query_homomorphisms_with_answer, MappingBindings,
};
pub use parser::{
    parse_program, parse_program_spanned, parse_query, parse_query_spanned, parse_ucq,
    ParseQueryError, ProgramParseError,
};
pub use probe::{canonical_active_domain, most_general_probe_tuple, probe_tuples, ProbeSpace};
pub use query::ConjunctiveQuery;
pub use span::{line_column, AtomOccurrence, QuerySpans, Span, SpannedQuery};
pub use substitution::Substitution;
pub use term::Term;
pub use ucq::UnionOfConjunctiveQueries;
