//! # dioph-fuzz — differential fuzzing oracle for the bag-containment decider
//!
//! Every correctness claim in this workspace used to bottom out in golden
//! fixtures generated from the decider itself. This crate closes the loop
//! with an *independent* refutation harness: seeded random query pairs in
//! the paper fragment are decided by the MPI/LP route (through the
//! `dioph-engine` probe pool, so `--jobs` and `--lp-route` are exercised)
//! and the verdicts are cross-checked three ways:
//!
//! 1. **Bounded bag-database ground truth** — a `Contained` verdict must
//!    survive brute-force Equation-2 evaluation
//!    ([`dioph_bagdb::bag_containment_holds_on`]) over every bag below the
//!    configured multiplicity bound on the containee's canonical facts
//!    (exhaustive when the space is small, sampled otherwise), plus random
//!    bags over the schema and a bounded active domain.
//! 2. **Certificate replay** — a `NotContained` verdict's counterexample bag
//!    must reproduce its claimed multiplicities under the independent
//!    evaluator ([`dioph_containment::Counterexample::verify`]).
//! 3. **Chandra–Merlin set containment as a necessary condition** — bag
//!    containment implies set containment, and for projection-free
//!    containees the bag-set verdict must coincide with the set verdict
//!    (the Section 3 remark, checked through
//!    [`dioph_containment::bag_set_containment`]).
//!
//! Any disagreement is **shrunk** to a minimal reproducer (greedily removing
//! body atoms, decrementing multiplicities and dropping database facts while
//! the disagreement persists) and reported with a machine-checkable witness.
//! The whole run is deterministic in the seed — and, by construction, the
//! report is byte-identical across LP routes and thread counts, which is
//! itself one of the properties under test.
//!
//! ```
//! use dioph_fuzz::{run_fuzz, FuzzConfig};
//!
//! let report = run_fuzz(&FuzzConfig { cases: 5, ..FuzzConfig::default() });
//! assert_eq!(report.disagreements.len(), 0);
//! assert_eq!(report.cases.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod oracle;
mod report;

pub use generate::{generate_case, FuzzCase};
pub use oracle::{check_pair, derive_seed, CaseOutcome, Disagreement, DisagreementKind, Injection};
pub use report::{run_fuzz, run_replay, CaseReport, FuzzReport};

use dioph_containment::FeasibilityEngine;

/// Configuration of a fuzzing run. Everything that influences generated
/// cases or the brute-force sweep is part of the seed-stable report header;
/// `jobs`, `engine` and `injection` deliberately are **not** — verdicts must
/// be identical across them, so the report must be too.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Master seed; every case derives its own RNG stream from it.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: usize,
    /// Active-domain bound for the random schema databases (constants
    /// `c0..c{max_adom-1}`, merged with the constants the queries mention).
    pub max_adom: usize,
    /// Multiplicity bound for every swept or sampled bag database.
    pub max_mult: u64,
    /// Number of sampled bags when the bounded space is too large to
    /// enumerate, and the budget for the random schema databases.
    pub samples: usize,
    /// Exhaustive-enumeration threshold: sweep every bounded bag when the
    /// space has at most this many, sample otherwise.
    pub enumeration_cap: u128,
    /// Worker threads for the probe pool deciding each case.
    pub jobs: usize,
    /// LP feasibility engine behind the decider.
    pub engine: FeasibilityEngine,
    /// Deliberate decider corruption for self-tests: proves the oracle
    /// catches (and minimises) an injected bug.
    pub injection: Option<Injection>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x2019_0630,
            cases: 100,
            max_adom: 3,
            max_mult: 2,
            samples: 32,
            enumeration_cap: 512,
            jobs: 1,
            engine: FeasibilityEngine::default(),
            injection: None,
        }
    }
}
