//! The three-way differential oracle and the disagreement shrinker.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dioph_analyze::{classify_pair, FragmentClass};
use dioph_arith::Natural;
use dioph_bagdb::{
    bag_containment_holds_on, bounded_bag_count, enumerate_bounded_bags, ground_atoms, BagInstance,
    BagViolation,
};
use dioph_containment::{
    bag_set_containment, set_containment, Algorithm, BagContainment, CompiledPair,
    ContainmentError, Counterexample,
};
use dioph_cq::{Atom, ConjunctiveQuery, Term};
use dioph_engine::{DecisionEngine, EngineConfig};

use crate::FuzzConfig;

/// SplitMix64-style stream derivation: case `index` of master seed `seed`
/// gets its own statistically independent RNG stream, so cases (and the
/// database sampling inside one case) never share randomness and a single
/// case can be replayed in isolation.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deliberate decider corruption, used to prove the oracle catches (and
/// minimises) a real bug. Applied to the decider's verdict before any check
/// runs, including during shrinking — so the injected bug stays reproducible
/// on the minimised pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Injection {
    /// Invert the verdict: `Contained` becomes `NotContained` with a
    /// fabricated certificate (caught by certificate replay), and
    /// `NotContained` becomes `Contained` (caught by the database sweep).
    FlipVerdict,
    /// Bump the claimed containee multiplicity of every counterexample by
    /// one (caught by certificate replay).
    TamperCertificate,
}

impl Injection {
    fn apply(self, verdict: BagContainment, pair: &CompiledPair) -> BagContainment {
        match (self, verdict) {
            (Injection::FlipVerdict, BagContainment::Contained { .. }) => {
                // A fabricated witness on the canonical bag. The pair really
                // is contained, so no bag satisfies lhs > rhs and the replay
                // check must reject this certificate.
                let canonical = pair.most_general();
                let bag = BagInstance::from_multiplicities(
                    canonical.grounded_containee().body().map(|(a, _)| (a.clone(), Natural::one())),
                );
                BagContainment::NotContained(Box::new(Counterexample {
                    probe: canonical.probe().to_vec(),
                    bag,
                    containee_multiplicity: Natural::one(),
                    containing_multiplicity: Natural::zero(),
                }))
            }
            (Injection::FlipVerdict, BagContainment::NotContained(_)) => {
                BagContainment::Contained { probes_checked: 0 }
            }
            (Injection::TamperCertificate, BagContainment::NotContained(mut ce)) => {
                ce.containee_multiplicity = ce.containee_multiplicity.clone() + Natural::one();
                BagContainment::NotContained(ce)
            }
            (Injection::TamperCertificate, contained) => contained,
        }
    }
}

/// The kind of three-way disagreement the oracle detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DisagreementKind {
    /// A `NotContained` certificate whose bag does not reproduce its claimed
    /// multiplicities under the independent Equation-2 evaluator.
    CertificateRejected,
    /// A `Contained` verdict on a pair that is not even set-contained
    /// (Chandra–Merlin is a necessary condition for bag containment).
    SetConditionViolated,
    /// The bag-set verdict disagrees with the set verdict on a
    /// projection-free containee (they must coincide per Section 3).
    BagSetMismatch,
    /// A `Contained` verdict contradicted by an explicit bag database.
    ContainedRefuted,
}

impl DisagreementKind {
    /// Stable kebab-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DisagreementKind::CertificateRejected => "certificate-rejected",
            DisagreementKind::SetConditionViolated => "set-condition-violated",
            DisagreementKind::BagSetMismatch => "bag-set-mismatch",
            DisagreementKind::ContainedRefuted => "contained-refuted-by-database",
        }
    }
}

/// A detected disagreement, with the original pair and a shrunk reproducer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Disagreement {
    /// What went wrong.
    pub kind: DisagreementKind,
    /// Human-readable one-line diagnosis.
    pub detail: String,
    /// The original containee.
    pub containee: ConjunctiveQuery,
    /// The original containing query.
    pub containing: ConjunctiveQuery,
    /// The greedily minimised containee still reproducing the disagreement.
    pub minimized_containee: ConjunctiveQuery,
    /// The greedily minimised containing query.
    pub minimized_containing: ConjunctiveQuery,
    /// For database refutations: a minimised machine-checkable witness
    /// (probe tuple + bag + both multiplicities, in certificate form).
    pub counterexample: Option<Counterexample>,
}

/// Everything the oracle observed about one pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CaseOutcome {
    /// The decider's verdict (post-injection), or the per-pair error.
    pub result: Result<BagContainment, ContainmentError>,
    /// The Chandra–Merlin set-containment verdict.
    pub set: bool,
    /// The bag-set verdict, when the containee is in the fragment.
    pub bag_set: Option<bool>,
    /// The decidability-matrix cell of the pair.
    pub fragment: FragmentClass,
    /// How many bag databases the brute-force side checked.
    pub databases: usize,
    /// The disagreement, if any — already shrunk.
    pub disagreement: Option<Disagreement>,
}

struct RawDisagreement {
    kind: DisagreementKind,
    detail: String,
    violation: Option<(BagInstance, BagViolation)>,
}

fn engine_for(config: &FuzzConfig) -> DecisionEngine {
    // All-probes rather than the most-general-probe default: it gives the
    // probe pool something to fan out (`jobs` is meaningful) and makes
    // `probes_checked` independent of the thread count.
    DecisionEngine::new(EngineConfig {
        jobs: config.jobs,
        algorithm: Algorithm::AllProbes,
        engine: config.engine,
    })
}

/// The active domain for random schema databases: every constant the pair
/// mentions, padded with fresh `c{i}` constants up to `max_adom`.
fn schema_domain(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    max_adom: usize,
) -> Vec<Term> {
    let mut domain: Vec<Term> = containee
        .body_atoms()
        .chain(containing.body_atoms())
        .flat_map(dioph_cq::Atom::constants)
        .collect::<std::collections::BTreeSet<Term>>()
        .into_iter()
        .collect();
    let mut i = 0;
    while domain.len() < max_adom {
        let fresh = Term::constant(format!("c{i}"));
        if !domain.contains(&fresh) {
            domain.push(fresh);
        }
        i += 1;
    }
    domain.sort();
    domain
}

fn schema_of(containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> Vec<(String, usize)> {
    let mut schema: Vec<(String, usize)> = containee
        .body_atoms()
        .chain(containing.body_atoms())
        .map(|a| (a.relation().to_string(), a.arity()))
        .collect();
    schema.sort();
    schema.dedup();
    schema
}

/// Sweeps bag databases against a `Contained` verdict. Returns the first
/// refuting bag (in deterministic order) and the number of bags checked.
fn sweep_databases(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    canonical_facts: &[Atom],
    config: &FuzzConfig,
    rng: &mut StdRng,
) -> (usize, Option<(BagInstance, BagViolation)>) {
    fn check(
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
        bag: BagInstance,
        checked: &mut usize,
    ) -> Option<(BagInstance, BagViolation)> {
        *checked += 1;
        match bag_containment_holds_on(containee, containing, &bag) {
            Ok(()) => None,
            Err(violation) => Some((bag, violation)),
        }
    }

    let mut checked = 0;
    // Phase 1: every bag over the containee's canonical facts with bounded
    // multiplicities — exhaustive when the space is small (the common case
    // for fuzz-sized queries), sampled otherwise.
    let exhaustive = bounded_bag_count(canonical_facts.len(), config.max_mult)
        .map(|n| n <= config.enumeration_cap)
        .unwrap_or(false);
    if exhaustive {
        for bag in enumerate_bounded_bags(canonical_facts, config.max_mult) {
            if let Some(found) = check(containee, containing, bag, &mut checked) {
                return (checked, Some(found));
            }
        }
    } else {
        for _ in 0..config.samples {
            let bag = BagInstance::from_multiplicities(canonical_facts.iter().filter_map(|f| {
                let m = rng.random_range(0..=config.max_mult);
                (m > 0).then(|| (f.clone(), Natural::from(m)))
            }));
            if let Some(found) = check(containee, containing, bag, &mut checked) {
                return (checked, Some(found));
            }
        }
    }

    // Phase 2: random bags over the full schema and a bounded active domain
    // — databases the canonical instance cannot express (extra facts,
    // merged constants).
    let fact_space = ground_atoms(
        &schema_of(containee, containing),
        &schema_domain(containee, containing, config.max_adom),
    );
    if !fact_space.is_empty() {
        for _ in 0..config.samples {
            let picks = rng.random_range(1..=fact_space.len().min(4));
            let mut bag = BagInstance::new();
            for _ in 0..picks {
                let fact = &fact_space[rng.random_range(0..fact_space.len())];
                bag.set(fact.clone(), Natural::from(rng.random_range(1..=config.max_mult)));
            }
            if let Some(found) = check(containee, containing, bag, &mut checked) {
                return (checked, Some(found));
            }
        }
    }
    (checked, None)
}

/// One full oracle pass over a pair: decide, inject, cross-check. Returns
/// the raw (unshrunk) disagreement, plus the bookkeeping the report needs.
#[allow(clippy::type_complexity)]
fn check_once(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    config: &FuzzConfig,
    db_seed: u64,
) -> (Result<BagContainment, ContainmentError>, bool, Option<bool>, usize, Option<RawDisagreement>)
{
    let set = set_containment(containee, containing).holds();
    let bag_set = bag_set_containment(containee, containing).ok().map(|r| r.holds());

    let pair = match CompiledPair::new(containee.clone(), containing.clone()) {
        Ok(pair) => pair,
        Err(e) => return (Err(e), set, bag_set, 0, None),
    };
    let verdict = match engine_for(config).decide_pair(&pair) {
        Ok(verdict) => verdict,
        Err(e) => return (Err(e), set, bag_set, 0, None),
    };
    let verdict = match config.injection {
        Some(injection) => injection.apply(verdict, &pair),
        None => verdict,
    };

    // Section 3: for a projection-free containee the bag-set verdict IS the
    // set verdict; any daylight between the two is a bug in one of them.
    if let Some(bag_set) = bag_set {
        if bag_set != set {
            let raw = RawDisagreement {
                kind: DisagreementKind::BagSetMismatch,
                detail: format!(
                    "bag-set says {} but set containment says {}",
                    if bag_set { "contained" } else { "not contained" },
                    if set { "contained" } else { "not contained" },
                ),
                violation: None,
            };
            return (Ok(verdict), set, Some(bag_set), 0, Some(raw));
        }
    }

    match &verdict {
        BagContainment::NotContained(ce) => {
            let raw = (!ce.verify(containee, containing)).then(|| RawDisagreement {
                kind: DisagreementKind::CertificateRejected,
                detail: format!(
                    "certificate claims {} > {} at tuple ({}) but the Equation-2 evaluator \
                     disagrees",
                    ce.containee_multiplicity,
                    ce.containing_multiplicity,
                    ce.probe.iter().map(ToString::to_string).collect::<Vec<_>>().join(", "),
                ),
                violation: None,
            });
            (Ok(verdict), set, bag_set, 0, raw)
        }
        BagContainment::Contained { .. } => {
            if !set {
                let raw = RawDisagreement {
                    kind: DisagreementKind::SetConditionViolated,
                    detail: "verdict is contained but Chandra–Merlin finds no containment \
                             mapping (set containment is necessary for bag containment)"
                        .to_string(),
                    violation: None,
                };
                return (Ok(verdict), set, bag_set, 0, Some(raw));
            }
            let canonical_facts: Vec<Atom> =
                pair.most_general().grounded_containee().body().map(|(a, _)| a.clone()).collect();
            let mut rng = StdRng::seed_from_u64(db_seed);
            let (databases, refutation) =
                sweep_databases(containee, containing, &canonical_facts, config, &mut rng);
            let raw = refutation.map(|(bag, violation)| RawDisagreement {
                kind: DisagreementKind::ContainedRefuted,
                detail: format!("verdict is contained but on bag {bag} the {violation}"),
                violation: Some((bag, violation)),
            });
            (Ok(verdict), set, bag_set, databases, raw)
        }
    }
}

fn valid_containee(q: &ConjunctiveQuery) -> bool {
    q.distinct_atom_count() > 0 && q.is_safe() && q.is_projection_free()
}

fn valid_containing(q: &ConjunctiveQuery) -> bool {
    q.distinct_atom_count() > 0 && q.is_safe()
}

/// Single-atom mutants of a query: each distinct atom removed entirely, and
/// each multiplicity above one decremented.
fn query_mutants(query: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    let atoms: Vec<(Atom, u64)> = query.body().map(|(a, m)| (a.clone(), m)).collect();
    let mut mutants = Vec::new();
    for skip in 0..atoms.len() {
        let body: Vec<(Atom, u64)> =
            atoms.iter().enumerate().filter(|(i, _)| *i != skip).map(|(_, p)| p.clone()).collect();
        mutants.push(ConjunctiveQuery::new(query.name(), query.head().to_vec(), body));
    }
    for (i, (_, m)) in atoms.iter().enumerate() {
        if *m > 1 {
            let body = atoms
                .iter()
                .enumerate()
                .map(|(j, (a, m))| (a.clone(), if j == i { m - 1 } else { *m }));
            mutants.push(ConjunctiveQuery::new(query.name(), query.head().to_vec(), body));
        }
    }
    mutants
}

/// Shrinks the witness bag of a database refutation: drop facts and
/// decrement multiplicities while the pair still violates containment on it.
fn shrink_bag(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    mut bag: BagInstance,
    mut violation: BagViolation,
) -> (BagInstance, BagViolation) {
    loop {
        let mut improved = false;
        let facts: Vec<(Atom, Natural)> = bag.iter().map(|(a, m)| (a.clone(), m.clone())).collect();
        for (fact, mult) in &facts {
            // Try removing the fact entirely, then shrinking it to a single
            // occurrence.
            for candidate_mult in [Natural::zero(), Natural::one()] {
                if mult <= &candidate_mult {
                    continue;
                }
                let mut candidate = bag.clone();
                candidate.set(fact.clone(), candidate_mult.clone());
                if let Err(v) = bag_containment_holds_on(containee, containing, &candidate) {
                    bag = candidate;
                    violation = v;
                    improved = true;
                    break;
                }
            }
            if improved {
                break;
            }
        }
        if !improved {
            return (bag, violation);
        }
    }
}

/// Greedy shrink loop: repeatedly adopt the first single-atom mutant (of
/// either query) that still reproduces the same disagreement kind.
fn shrink(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    kind: DisagreementKind,
    config: &FuzzConfig,
    db_seed: u64,
) -> (ConjunctiveQuery, ConjunctiveQuery, Option<(BagInstance, BagViolation)>) {
    let reproduces = |ce: &ConjunctiveQuery, cg: &ConjunctiveQuery| -> Option<RawDisagreement> {
        let (_, _, _, _, raw) = check_once(ce, cg, config, db_seed);
        raw.filter(|r| r.kind == kind)
    };
    let mut current_ce = containee.clone();
    let mut current_cg = containing.clone();
    let mut witness = None;
    loop {
        let mut improved = false;
        for mutant in query_mutants(&current_ce) {
            if !valid_containee(&mutant) {
                continue;
            }
            if let Some(raw) = reproduces(&mutant, &current_cg) {
                current_ce = mutant;
                witness = raw.violation;
                improved = true;
                break;
            }
        }
        if !improved {
            for mutant in query_mutants(&current_cg) {
                if !valid_containing(&mutant) {
                    continue;
                }
                if let Some(raw) = reproduces(&current_ce, &mutant) {
                    current_cg = mutant;
                    witness = raw.violation;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    (current_ce, current_cg, witness)
}

/// Runs the full oracle on one pair — decide through the probe pool, apply
/// any configured injection, cross-check all three ways, and shrink any
/// disagreement to a minimal reproducer. Deterministic in `(pair, config,
/// db_seed)`; the decider configuration (`jobs`, `engine`) must not change
/// the outcome, and the fuzzer exists to prove exactly that.
pub fn check_pair(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
    config: &FuzzConfig,
    db_seed: u64,
) -> CaseOutcome {
    let fragment = classify_pair(containee, containing);
    let (result, set, bag_set, databases, raw) = check_once(containee, containing, config, db_seed);
    let disagreement = raw.map(|raw| {
        let (min_ce, min_cg, min_witness) =
            shrink(containee, containing, raw.kind, config, db_seed);
        // The shrink loop only records a witness when it improves the pair;
        // fall back to the original sweep's witness otherwise.
        let witness = min_witness.or(raw.violation);
        let counterexample = witness.map(|(bag, violation)| {
            let (bag, violation) = shrink_bag(&min_ce, &min_cg, bag, violation);
            Counterexample {
                probe: violation.tuple,
                bag,
                containee_multiplicity: violation.containee_multiplicity,
                containing_multiplicity: violation.containing_multiplicity,
            }
        });
        Disagreement {
            kind: raw.kind,
            detail: raw.detail,
            containee: containee.clone(),
            containing: containing.clone(),
            minimized_containee: min_ce,
            minimized_containing: min_cg,
            counterexample,
        }
    });
    CaseOutcome { result, set, bag_set, fragment, databases, disagreement }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::{paper_examples, parse_query};

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    fn config() -> FuzzConfig {
        FuzzConfig { samples: 8, ..FuzzConfig::default() }
    }

    #[test]
    fn clean_pairs_produce_no_disagreement() {
        let cases = [
            (paper_examples::section2_query_q1(), paper_examples::section2_query_q2()),
            (paper_examples::section2_query_q2(), paper_examples::section2_query_q1()),
            (q("q(x) <- R^2(x, x)"), q("p(x) <- R(x, y), R(y, x)")),
            (q("q(x) <- R(x, x), S(x, x)"), q("p(x) <- R(x, x)")),
        ];
        for (containee, containing) in cases {
            let outcome = check_pair(&containee, &containing, &config(), 1);
            assert!(outcome.disagreement.is_none(), "{containee} vs {containing}");
            assert_eq!(outcome.fragment, FragmentClass::PaperDecidable);
            // Bag-set coincides with set on the paper fragment.
            assert_eq!(outcome.bag_set, Some(outcome.set));
            if outcome.result.as_ref().unwrap().holds() {
                assert!(outcome.databases > 0, "contained verdicts must be swept");
            }
        }
    }

    #[test]
    fn flip_verdict_injection_is_caught_both_ways() {
        let cfg = FuzzConfig { injection: Some(Injection::FlipVerdict), ..config() };
        // A contained pair: flipping fabricates a bogus certificate.
        let containee = paper_examples::section2_query_q1();
        let containing = paper_examples::section2_query_q2();
        let outcome = check_pair(&containee, &containing, &cfg, 1);
        let d = outcome.disagreement.expect("flipped contained verdict must be caught");
        assert_eq!(d.kind, DisagreementKind::CertificateRejected);

        // A not-contained pair: flipping asserts containment; the bounded
        // sweep (or the set-condition check) must refute it.
        let containee = q("q(x) <- R^2(x, x)");
        let containing = q("p(x) <- R(x, x)");
        let outcome = check_pair(&containee, &containing, &cfg, 1);
        let d = outcome.disagreement.expect("flipped not-contained verdict must be caught");
        assert_eq!(d.kind, DisagreementKind::ContainedRefuted);
        let ce = d.counterexample.expect("database refutations carry a witness");
        assert!(ce.verify(&d.minimized_containee, &d.minimized_containing));
        // The reproducer is minimal: a single atom on each side suffices.
        assert!(d.minimized_containee.total_atom_count() <= 4);
        assert!(d.minimized_containing.total_atom_count() <= 4);
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let cfg = FuzzConfig { injection: Some(Injection::TamperCertificate), ..config() };
        let containee = paper_examples::section2_query_q2();
        let containing = paper_examples::section2_query_q1();
        let outcome = check_pair(&containee, &containing, &cfg, 1);
        let d = outcome.disagreement.expect("tampered certificate must be caught");
        assert_eq!(d.kind, DisagreementKind::CertificateRejected);
        // Contained pairs are untouched by this injection.
        let outcome = check_pair(&containing, &containee, &cfg, 1);
        assert!(outcome.disagreement.is_none());
    }

    #[test]
    fn outcomes_are_identical_across_jobs_and_lp_routes() {
        use dioph_containment::FeasibilityEngine;
        let pairs = [
            (q("q(x) <- R^2(x, x)"), q("p(x) <- R(x, y), R(y, x)")),
            (paper_examples::section2_query_q2(), paper_examples::section2_query_q1()),
        ];
        for (containee, containing) in pairs {
            let reference = check_pair(&containee, &containing, &config(), 3);
            for jobs in [1usize, 2, 4] {
                for engine in [
                    FeasibilityEngine::Simplex,
                    FeasibilityEngine::Bareiss,
                    FeasibilityEngine::Auto,
                ] {
                    let cfg = FuzzConfig { jobs, engine, ..config() };
                    let outcome = check_pair(&containee, &containing, &cfg, 3);
                    assert_eq!(outcome, reference, "jobs={jobs} engine={engine:?}");
                }
            }
        }
    }

    #[test]
    fn out_of_fragment_pairs_report_errors_not_panics() {
        let containee = q("q(x) <- R(x, y)");
        let containing = q("p(x) <- R(x, x)");
        let outcome = check_pair(&containee, &containing, &config(), 0);
        assert!(matches!(outcome.result, Err(ContainmentError::ContaineeNotProjectionFree { .. })));
        assert_eq!(outcome.bag_set, None);
        // Multiplicity-free with a projection-bearing containee: the
        // Chaudhuri–Vardi bag-set cell, not the paper fragment.
        assert_eq!(outcome.fragment, FragmentClass::BagSet);
    }

    #[test]
    fn seed_derivation_separates_streams() {
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        let c = derive_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(7, 0));
    }
}
