//! Property-based tests for the bag relational engine.
//!
//! The central object is Equation 2 of the paper; the properties below pin
//! down its interaction with the bag structure (monotonicity, scaling,
//! support restriction, consistency with set semantics).

use dioph_arith::Natural;
use dioph_bagdb::{bag_answer_multiplicity, bag_answers, set_answers, BagInstance, SetInstance};
use dioph_cq::{Atom, ConjunctiveQuery, Term};
use proptest::prelude::*;

fn constant(i: usize) -> Term {
    Term::constant(format!("c{i}"))
}

/// Random bag instances over a small universe of binary R-facts and unary
/// S-facts.
fn bag_strategy() -> impl Strategy<Value = BagInstance> {
    proptest::collection::vec(((0usize..3, 0usize..3), 0u64..4), 0..8).prop_map(|facts| {
        let mut bag = BagInstance::new();
        for ((a, b), mult) in facts {
            bag.add(Atom::new("R", vec![constant(a), constant(b)]), Natural::from(mult));
            if mult % 2 == 0 {
                bag.add(Atom::new("S", vec![constant(a)]), Natural::from(mult / 2));
            }
        }
        bag
    })
}

/// A small pool of fixed queries exercising joins, self-joins, constants and
/// repeated atoms.
fn query_pool() -> Vec<ConjunctiveQuery> {
    [
        "q0(x) <- R(x, y)",
        "q1(x, y) <- R(x, y)",
        "q2(x) <- R(x, x)",
        "q3(x) <- R(x, y), S(y)",
        "q4(x) <- R^2(x, y)",
        "q5(x, z) <- R(x, y), R(y, z)",
        "q6(x) <- R(x, 'c0')",
        "q7(x) <- R(x, y), R(x, w)",
    ]
    .iter()
    .map(|s| dioph_cq::parse_query(s).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Set semantics = bag semantics with multiplicities erased: a tuple has a
    /// positive bag multiplicity iff it is a set answer over the support.
    #[test]
    fn bag_support_agrees_with_set_semantics(bag in bag_strategy(), qi in 0usize..8) {
        let query = &query_pool()[qi];
        let support: SetInstance = bag.support();
        let set = set_answers(query, &support);
        let bag_ans = bag_answers(query, &bag);
        for tuple in &set {
            prop_assert!(bag_ans.get(tuple).map(|m| !m.is_zero()).unwrap_or(false),
                "set answer {:?} missing from bag answers", tuple);
        }
        for tuple in bag_ans.keys() {
            prop_assert!(set.contains(tuple));
        }
    }

    /// Monotonicity: growing the bag (adding occurrences) never decreases any
    /// answer multiplicity.
    #[test]
    fn evaluation_is_monotone_in_the_bag(bag in bag_strategy(), extra in bag_strategy(), qi in 0usize..8) {
        let query = &query_pool()[qi];
        let mut bigger = bag.clone();
        for (fact, mult) in extra.iter() {
            bigger.add(fact.clone(), mult.clone());
        }
        let before = bag_answers(query, &bag);
        let after = bag_answers(query, &bigger);
        for (tuple, mult) in &before {
            let new_mult = after.get(tuple).cloned().unwrap_or_else(Natural::zero);
            prop_assert!(new_mult >= *mult, "answer {:?} decreased from {} to {}", tuple, mult, new_mult);
        }
    }

    /// Scaling: multiplying every fact multiplicity by k multiplies each
    /// answer multiplicity by k^(total atom count of the image query); in
    /// particular by at least k for non-empty bodies.
    #[test]
    fn uniform_scaling_scales_answers(bag in bag_strategy(), k in 2u64..4, qi in 0usize..8) {
        let query = &query_pool()[qi];
        let scaled = BagInstance::from_multiplicities(
            bag.iter().map(|(f, m)| (f.clone(), m * &Natural::from(k))),
        );
        let total_atoms = query.total_atom_count();
        let factor = Natural::from(k).pow(total_atoms);
        for (tuple, mult) in bag_answers(query, &bag) {
            let scaled_mult = bag_answer_multiplicity(query, &scaled, &tuple);
            prop_assert_eq!(&mult * &factor, scaled_mult);
        }
    }

    /// Restriction: restricting a bag to its own support changes nothing, and
    /// the subbag relation is reflexive and antisymmetric on the generated bags.
    #[test]
    fn restriction_and_subbag_laws(bag in bag_strategy(), other in bag_strategy()) {
        prop_assert_eq!(bag.restrict_to(&bag.support()), bag.clone());
        prop_assert!(bag.is_subbag_of(&bag));
        if bag.is_subbag_of(&other) && other.is_subbag_of(&bag) {
            prop_assert_eq!(bag, other);
        }
    }

    /// The all-ones bag counts homomorphisms: every answer multiplicity equals
    /// the number of homomorphisms producing that answer tuple.
    #[test]
    fn ones_bag_counts_homomorphisms(bag in bag_strategy(), qi in 0usize..8) {
        let query = &query_pool()[qi];
        let support = bag.support();
        let ones = BagInstance::uniform_ones(&support);
        let answers = bag_answers(query, &ones);
        let mut counts: std::collections::BTreeMap<Vec<Term>, u64> = Default::default();
        for h in dioph_cq::query_homomorphisms(query, support.facts()) {
            *counts.entry(h.apply_tuple(query.head())).or_insert(0) += 1;
        }
        for (tuple, count) in counts {
            prop_assert_eq!(answers.get(&tuple).cloned(), Some(Natural::from(count)));
        }
    }
}
