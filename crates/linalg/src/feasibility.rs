//! Feasibility of strict homogeneous linear systems.
//!
//! Theorem 4.1 of the paper reduces the Diophantine-solution problem for an
//! n-MPI `P(u) < M(u)` to the question of whether the system
//!
//! ```text
//!     (e − e_i)ᵀ · ε > 0     for i = 1..m,      ε ≥ 0
//! ```
//!
//! has a solution over the naturals, which (as observed in the paper's proof)
//! is equivalent to rational feasibility because the system is homogeneous
//! with rational coefficients: any rational solution can be scaled by the
//! least common multiple of its denominators into a natural one.
//!
//! [`StrictHomogeneousSystem`] captures exactly that shape and offers two
//! independent engines ([`FeasibilityEngine::Simplex`] and
//! [`FeasibilityEngine::FourierMotzkin`]) for deciding it and extracting
//! natural witnesses. Both engines receive the system as sparse [`Row`]s
//! built straight from the non-zero integer coefficients — the exponent
//! difference vectors of real MPIs are mostly zeros, and the shared
//! pivot/eliminate kernels skip what is never stored.

use dioph_arith::{Integer, Natural, Rational};

use crate::fourier_motzkin::{self, FmOutcome, UpperForm};
use crate::row::Row;
use crate::simplex::{self, SimplexOutcome};
use crate::system::{dot_int_nat, Constraint, LinearSystem, Relation};

/// Which engine to use when deciding feasibility.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FeasibilityEngine {
    /// Exact rational phase-1 simplex (default; polynomial in practice).
    #[default]
    Simplex,
    /// Fourier–Motzkin elimination (simple, doubly exponential worst case).
    FourierMotzkin,
}

/// A system `{ rows[i] · ε > 0 }` over non-negative unknowns `ε`.
///
/// Rows have integer coefficients (the exponent differences `e − e_i` of the
/// paper are integer vectors).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StrictHomogeneousSystem {
    dimension: usize,
    rows: Vec<Vec<Integer>>,
}

impl StrictHomogeneousSystem {
    /// Creates an empty system over `dimension` unknowns.
    pub fn new(dimension: usize) -> Self {
        StrictHomogeneousSystem { dimension, rows: Vec::new() }
    }

    /// Number of unknowns.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The coefficient rows.
    pub fn rows(&self) -> &[Vec<Integer>] {
        &self.rows
    }

    /// Number of rows (strict inequalities).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the system has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds the strict inequality `row · ε > 0`.
    ///
    /// # Panics
    /// Panics if the row length differs from the system dimension.
    pub fn push_row(&mut self, row: Vec<Integer>) {
        assert_eq!(row.len(), self.dimension, "row dimension mismatch");
        self.rows.push(row);
    }

    /// Adds a row given as `i64` coefficients (convenience).
    pub fn push_row_i64(&mut self, row: &[i64]) {
        self.push_row(row.iter().map(|&c| Integer::from(c)).collect());
    }

    /// Checks whether a natural-number assignment satisfies every row.
    pub fn is_satisfied_by_naturals(&self, point: &[Natural]) -> bool {
        assert_eq!(point.len(), self.dimension, "point dimension mismatch");
        self.rows.iter().all(|row| dot_int_nat(row, point).is_positive())
    }

    /// One sparse [`Row`] per strict inequality: exactly the non-zero
    /// integer coefficients, as rationals.
    pub fn to_sparse_rows(&self) -> Vec<Row> {
        self.rows
            .iter()
            .map(|row| {
                let entries: Vec<(usize, Rational)> = row
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.is_zero())
                    .map(|(i, c)| (i, Rational::from(c)))
                    .collect();
                Row::sparse(self.dimension, entries)
            })
            .collect()
    }

    /// Renders the system as a [`LinearSystem`] with strict rows and explicit
    /// non-negativity constraints (used by tests and displays; the engines
    /// themselves run on [`Self::to_sparse_rows`]).
    pub fn to_linear_system(&self) -> LinearSystem {
        let mut sys = LinearSystem::new(self.dimension);
        for row in &self.rows {
            sys.push(Constraint::from_integers(row, Relation::Gt, Integer::zero()));
        }
        sys.push_nonnegativity();
        sys
    }

    /// Decides rational feasibility and returns a rational witness if one
    /// exists.
    ///
    /// An empty system (no rows) over at least one unknown is trivially
    /// feasible (witness: all zeros); over zero unknowns it is also feasible
    /// with the empty witness.
    pub fn rational_solution(&self, engine: FeasibilityEngine) -> Option<Vec<Rational>> {
        if self.rows.is_empty() {
            return Some(vec![Rational::zero(); self.dimension]);
        }
        // A row of all zeros can never be strictly positive.
        if self.rows.iter().any(|row| row.iter().all(|c| c.is_zero())) {
            return None;
        }
        match engine {
            FeasibilityEngine::Simplex => {
                // Homogeneity: A·ε > 0, ε ≥ 0 feasible  ⟺  A·ε ≥ 1, ε ≥ 0 feasible.
                let b = vec![Rational::one(); self.rows.len()];
                match simplex::feasible_point_rows(self.dimension, self.to_sparse_rows(), b) {
                    SimplexOutcome::Feasible(x) => Some(x),
                    SimplexOutcome::Infeasible => None,
                }
            }
            FeasibilityEngine::FourierMotzkin => {
                // Each strict row A_i·ε > 0 normalises to -A_i·ε < 0, and
                // each non-negativity ε_j ≥ 0 to -ε_j ≤ 0 — all sparse.
                let mut forms: Vec<UpperForm> =
                    Vec::with_capacity(self.rows.len() + self.dimension);
                for row in self.to_sparse_rows() {
                    let mut negated = row;
                    negated.negate();
                    forms.push(UpperForm {
                        row: negated,
                        strict: true,
                        constant: Rational::zero(),
                    });
                }
                for j in 0..self.dimension {
                    let row = Row::sparse(self.dimension, vec![(j, -Rational::one())]);
                    forms.push(UpperForm { row, strict: false, constant: Rational::zero() });
                }
                match fourier_motzkin::solve_forms(self.dimension, forms) {
                    FmOutcome::Feasible(x) => {
                        debug_assert!(
                            self.to_linear_system().is_satisfied_by(&x),
                            "FM witness must satisfy the strict system"
                        );
                        Some(x)
                    }
                    FmOutcome::Infeasible => None,
                }
            }
        }
    }

    /// Decides feasibility and returns a **natural-number** witness if one
    /// exists (Theorem 4.1's "Diophantine solution" of the linear system).
    ///
    /// The witness is obtained by scaling a rational solution by the least
    /// common multiple of its denominators; since the system is homogeneous
    /// and all rational components are non-negative, the scaled vector is a
    /// valid natural solution.
    pub fn natural_solution(&self, engine: FeasibilityEngine) -> Option<Vec<Natural>> {
        let rational = self.rational_solution(engine)?;
        Some(scale_to_naturals(&rational))
    }

    /// `true` iff the system admits a solution (equivalently: the associated
    /// MPI admits a Diophantine solution, by Theorem 4.1).
    pub fn is_feasible(&self, engine: FeasibilityEngine) -> bool {
        self.rational_solution(engine).is_some()
    }
}

/// Scales a non-negative rational vector by the LCM of its denominators,
/// producing a natural vector pointing in the same direction.
///
/// # Panics
/// Panics if any component is negative.
pub fn scale_to_naturals(point: &[Rational]) -> Vec<Natural> {
    let mut lcm = Natural::one();
    for value in point {
        assert!(!value.is_negative(), "cannot scale a negative rational to a natural");
        lcm = lcm.lcm(value.denom());
    }
    point.iter().map(|value| &value.numer().magnitude() * &(&lcm / value.denom())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINES: [FeasibilityEngine; 2] =
        [FeasibilityEngine::Simplex, FeasibilityEngine::FourierMotzkin];

    #[test]
    fn empty_system_is_feasible() {
        for engine in ENGINES {
            let sys = StrictHomogeneousSystem::new(3);
            assert!(sys.is_feasible(engine));
            assert_eq!(sys.natural_solution(engine).unwrap().len(), 3);
        }
    }

    #[test]
    fn paper_running_example_is_feasible() {
        // {-5ε1 + ε2 + 3ε3 > 0, -3ε1 - ε2 + 3ε3 > 0, -ε1 + ε2 - ε3 > 0}
        // The paper exhibits the solution (0, 2, 1).
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(3);
            sys.push_row_i64(&[-5, 1, 3]);
            sys.push_row_i64(&[-3, -1, 3]);
            sys.push_row_i64(&[-1, 1, -1]);
            let nat = sys.natural_solution(engine).expect("feasible");
            assert!(sys.is_satisfied_by_naturals(&nat), "{engine:?}: witness {nat:?}");
            // The paper's own solution works too.
            let paper = vec![Natural::zero(), Natural::from(2u64), Natural::from(1u64)];
            assert!(sys.is_satisfied_by_naturals(&paper));
        }
    }

    #[test]
    fn zero_row_is_infeasible() {
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(2);
            sys.push_row_i64(&[0, 0]);
            sys.push_row_i64(&[1, 1]);
            assert!(!sys.is_feasible(engine));
        }
    }

    #[test]
    fn all_negative_row_is_infeasible() {
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(2);
            sys.push_row_i64(&[-1, -2]);
            assert!(!sys.is_feasible(engine));
        }
    }

    #[test]
    fn opposing_rows_are_infeasible() {
        // ε1 - ε2 > 0 and ε2 - ε1 > 0 cannot both hold.
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(2);
            sys.push_row_i64(&[1, -1]);
            sys.push_row_i64(&[-1, 1]);
            assert!(!sys.is_feasible(engine));
        }
    }

    #[test]
    fn single_positive_direction() {
        for engine in ENGINES {
            let mut sys = StrictHomogeneousSystem::new(1);
            sys.push_row_i64(&[3]);
            let nat = sys.natural_solution(engine).unwrap();
            assert!(sys.is_satisfied_by_naturals(&nat));
        }
    }

    #[test]
    fn engines_agree_on_structured_instances() {
        // A family of instances where feasibility flips with a parameter.
        for k in -4i64..=4 {
            let mut sys = StrictHomogeneousSystem::new(3);
            sys.push_row_i64(&[k, 1, -1]);
            sys.push_row_i64(&[1, -2, 1]);
            sys.push_row_i64(&[-1, 1, 1]);
            let a = sys.is_feasible(FeasibilityEngine::Simplex);
            let b = sys.is_feasible(FeasibilityEngine::FourierMotzkin);
            assert_eq!(a, b, "engines disagree at k={k}");
            if let Some(nat) = sys.natural_solution(FeasibilityEngine::Simplex) {
                assert!(sys.is_satisfied_by_naturals(&nat));
            }
        }
    }

    #[test]
    fn sparse_rows_mirror_the_integer_rows() {
        let mut sys = StrictHomogeneousSystem::new(5);
        sys.push_row_i64(&[0, 3, 0, -2, 0]);
        sys.push_row_i64(&[1, 0, 0, 0, 0]);
        let rows = sys.to_sparse_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].nnz(), 2);
        assert_eq!(rows[0].get(1), Some(&Rational::from(3)));
        assert_eq!(rows[0].get(3), Some(&Rational::from(-2)));
        assert_eq!(rows[0].get(0), None);
        assert_eq!(rows[1].nnz(), 1);
    }

    #[test]
    fn scale_to_naturals_clears_denominators() {
        let point =
            vec![Rational::from_i64s(1, 2), Rational::from_i64s(2, 3), Rational::from_i64s(0, 1)];
        let nat = scale_to_naturals(&point);
        assert_eq!(nat, vec![Natural::from(3u64), Natural::from(4u64), Natural::zero()]);
    }

    #[test]
    #[should_panic(expected = "negative rational")]
    fn scale_to_naturals_rejects_negative() {
        let _ = scale_to_naturals(&[Rational::from_i64s(-1, 2)]);
    }
}
