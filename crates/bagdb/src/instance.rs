//! Set and bag database instances.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use dioph_arith::Natural;
use dioph_cq::{Atom, Term};

/// A set database instance: a finite set of facts (ground atoms).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SetInstance {
    facts: BTreeSet<Atom>,
}

impl SetInstance {
    /// The empty instance.
    pub fn new() -> Self {
        SetInstance { facts: BTreeSet::new() }
    }

    /// Builds an instance from an iterator of facts.
    ///
    /// # Panics
    /// Panics if any atom is not ground.
    pub fn from_facts(facts: impl IntoIterator<Item = Atom>) -> Self {
        let mut inst = SetInstance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// Inserts a fact; returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn insert(&mut self, fact: Atom) -> bool {
        assert!(fact.is_ground(), "instances contain only ground atoms, got {fact}");
        self.facts.insert(fact)
    }

    /// `true` iff the fact is present.
    pub fn contains(&self, fact: &Atom) -> bool {
        self.facts.contains(fact)
    }

    /// The facts of the instance.
    pub fn facts(&self) -> &BTreeSet<Atom> {
        &self.facts
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The active domain: all constants occurring in the instance.
    pub fn active_domain(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for fact in &self.facts {
            out.extend(fact.constants());
        }
        out
    }

    /// The relation names occurring in the instance.
    pub fn relation_names(&self) -> BTreeSet<String> {
        self.facts.iter().map(|f| f.relation().to_string()).collect()
    }

    /// `true` iff this instance is a subset of `other`.
    pub fn is_subinstance_of(&self, other: &SetInstance) -> bool {
        self.facts.is_subset(&other.facts)
    }
}

impl FromIterator<Atom> for SetInstance {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        SetInstance::from_facts(iter)
    }
}

impl fmt::Display for SetInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.facts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

/// A bag database instance: a function from facts to positive multiplicities
/// (facts with multiplicity zero are simply absent).
///
/// Multiplicities are arbitrary-precision naturals because counterexample
/// bags extracted from the Diophantine machinery can have multiplicities like
/// `ζ*^{d_j}` that overflow any machine integer.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BagInstance {
    multiplicities: BTreeMap<Atom, Natural>,
}

impl BagInstance {
    /// The empty bag.
    pub fn new() -> Self {
        BagInstance { multiplicities: BTreeMap::new() }
    }

    /// Builds a bag from `(fact, multiplicity)` pairs; zero multiplicities
    /// are dropped, repeated facts accumulate.
    ///
    /// # Panics
    /// Panics if any atom is not ground.
    pub fn from_multiplicities(pairs: impl IntoIterator<Item = (Atom, Natural)>) -> Self {
        let mut bag = BagInstance::new();
        for (fact, mult) in pairs {
            bag.add(fact, mult);
        }
        bag
    }

    /// Builds a bag from `u64` multiplicities (convenience).
    pub fn from_u64_multiplicities(pairs: impl IntoIterator<Item = (Atom, u64)>) -> Self {
        BagInstance::from_multiplicities(pairs.into_iter().map(|(a, m)| (a, Natural::from(m))))
    }

    /// The uniform bag assigning multiplicity 1 to every fact of a set
    /// instance.
    pub fn uniform_ones(instance: &SetInstance) -> Self {
        BagInstance::from_multiplicities(
            instance.facts().iter().cloned().map(|f| (f, Natural::one())),
        )
    }

    /// Adds `mult` occurrences of `fact`.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn add(&mut self, fact: Atom, mult: Natural) {
        assert!(fact.is_ground(), "bag instances contain only ground atoms, got {fact}");
        if mult.is_zero() {
            return;
        }
        self.multiplicities.entry(fact).and_modify(|m| *m += &mult).or_insert(mult);
    }

    /// Sets the multiplicity of `fact` (removing it when zero).
    pub fn set(&mut self, fact: Atom, mult: Natural) {
        assert!(fact.is_ground(), "bag instances contain only ground atoms, got {fact}");
        if mult.is_zero() {
            self.multiplicities.remove(&fact);
        } else {
            self.multiplicities.insert(fact, mult);
        }
    }

    /// The multiplicity of a fact (zero if absent).
    pub fn multiplicity(&self, fact: &Atom) -> Natural {
        self.multiplicities.get(fact).cloned().unwrap_or_else(Natural::zero)
    }

    /// Iterates over `(fact, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Atom, &Natural)> {
        self.multiplicities.iter()
    }

    /// Number of distinct facts with positive multiplicity.
    pub fn support_size(&self) -> usize {
        self.multiplicities.len()
    }

    /// `true` iff the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.multiplicities.is_empty()
    }

    /// The underlying set instance (the support of the bag).
    pub fn support(&self) -> SetInstance {
        SetInstance::from_facts(self.multiplicities.keys().cloned())
    }

    /// Sum of all multiplicities (the total number of tuples counting
    /// duplicates).
    pub fn total_multiplicity(&self) -> Natural {
        let mut acc = Natural::zero();
        for m in self.multiplicities.values() {
            acc += m;
        }
        acc
    }

    /// `true` iff `self ⊆ other` as bags: every fact's multiplicity here is
    /// at most its multiplicity there.
    pub fn is_subbag_of(&self, other: &BagInstance) -> bool {
        self.multiplicities.iter().all(|(fact, mult)| *mult <= other.multiplicity(fact))
    }

    /// Restricts the bag to the facts of the given set instance (the `µ′`
    /// construction in the proof of Theorem 3.1).
    pub fn restrict_to(&self, instance: &SetInstance) -> BagInstance {
        BagInstance {
            multiplicities: self
                .multiplicities
                .iter()
                .filter(|(fact, _)| instance.contains(fact))
                .map(|(f, m)| (f.clone(), m.clone()))
                .collect(),
        }
    }
}

impl FromIterator<(Atom, Natural)> for BagInstance {
    fn from_iter<I: IntoIterator<Item = (Atom, Natural)>>(iter: I) -> Self {
        BagInstance::from_multiplicities(iter)
    }
}

impl fmt::Display for BagInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (fact, mult)) in self.multiplicities.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}^{mult}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::paper_examples;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn set_instance_basics() {
        let mut inst = SetInstance::new();
        assert!(inst.is_empty());
        assert!(inst.insert(Atom::new("R", vec![c("a"), c("b")])));
        assert!(!inst.insert(Atom::new("R", vec![c("a"), c("b")])));
        assert!(inst.contains(&Atom::new("R", vec![c("a"), c("b")])));
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.active_domain().len(), 2);
        assert_eq!(inst.relation_names(), BTreeSet::from(["R".to_string()]));
    }

    #[test]
    #[should_panic(expected = "ground")]
    fn non_ground_facts_are_rejected() {
        let mut inst = SetInstance::new();
        inst.insert(Atom::new("R", vec![Term::var("x")]));
    }

    #[test]
    fn paper_section2_instance() {
        let inst = SetInstance::from_facts(paper_examples::section2_instance());
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.active_domain().len(), 5);
        assert_eq!(inst.relation_names().len(), 2);
    }

    #[test]
    fn bag_instance_basics() {
        let bag = BagInstance::from_u64_multiplicities(paper_examples::section2_bag());
        assert_eq!(bag.support_size(), 4);
        assert_eq!(bag.multiplicity(&Atom::new("P", vec![c("c5"), c("c4")])), Natural::from(3u64));
        assert_eq!(bag.multiplicity(&Atom::new("P", vec![c("c9"), c("c4")])), Natural::zero());
        assert_eq!(bag.total_multiplicity(), Natural::from(7u64));
        assert_eq!(bag.support().len(), 4);
    }

    #[test]
    fn add_accumulates_and_zero_is_dropped() {
        let mut bag = BagInstance::new();
        let fact = Atom::new("R", vec![c("a")]);
        bag.add(fact.clone(), Natural::zero());
        assert!(bag.is_empty());
        bag.add(fact.clone(), Natural::from(2u64));
        bag.add(fact.clone(), Natural::from(3u64));
        assert_eq!(bag.multiplicity(&fact), Natural::from(5u64));
        bag.set(fact.clone(), Natural::zero());
        assert!(bag.is_empty());
    }

    #[test]
    fn subbag_relation() {
        let small = BagInstance::from_u64_multiplicities([
            (Atom::new("R", vec![c("a")]), 1),
            (Atom::new("S", vec![c("b")]), 2),
        ]);
        let big = BagInstance::from_u64_multiplicities([
            (Atom::new("R", vec![c("a")]), 3),
            (Atom::new("S", vec![c("b")]), 2),
            (Atom::new("T", vec![c("c")]), 1),
        ]);
        assert!(small.is_subbag_of(&big));
        assert!(!big.is_subbag_of(&small));
        assert!(small.is_subbag_of(&small));
        assert!(BagInstance::new().is_subbag_of(&small));
    }

    #[test]
    fn uniform_ones_and_restrict() {
        let inst = SetInstance::from_facts(paper_examples::section2_instance());
        let ones = BagInstance::uniform_ones(&inst);
        assert_eq!(ones.total_multiplicity(), Natural::from(4u64));
        let sub = SetInstance::from_facts([Atom::new("R", vec![c("c1"), c("c2")])]);
        let restricted = ones.restrict_to(&sub);
        assert_eq!(restricted.support_size(), 1);
    }

    #[test]
    fn huge_multiplicities_are_exact() {
        let mut bag = BagInstance::new();
        let fact = Atom::new("R", vec![c("a")]);
        bag.add(fact.clone(), Natural::from(2u64).pow(200));
        assert_eq!(bag.multiplicity(&fact), Natural::from(2u64).pow(200));
    }

    #[test]
    fn display() {
        let bag = BagInstance::from_u64_multiplicities([(Atom::new("R", vec![c("a"), c("b")]), 2)]);
        assert_eq!(bag.to_string(), "{R('a', 'b')^2}");
        let inst = SetInstance::from_facts([Atom::new("R", vec![c("a"), c("b")])]);
        assert_eq!(inst.to_string(), "{R('a', 'b')}");
    }
}
