//! The worked examples of the paper, as reusable constructors.
//!
//! These queries and instances appear verbatim in Sections 2–4 of
//! *"Attacking Diophantus"* and are used throughout the workspace as
//! correctness fixtures (experiments E1 and E2 of `EXPERIMENTS.md`).

use std::collections::{BTreeMap, BTreeSet};

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::term::Term;

fn v(name: &str) -> Term {
    Term::var(name)
}

fn c(name: &str) -> Term {
    Term::constant(name)
}

/// Section 2: `q1(x1,x2) ← R²(x1,x2), P³(x2,x2)`.
pub fn section2_query_q1() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "q1",
        vec![v("x1"), v("x2")],
        [(Atom::new("R", vec![v("x1"), v("x2")]), 2), (Atom::new("P", vec![v("x2"), v("x2")]), 3)],
    )
}

/// Section 2: `q2(x1,x2) ← R³(x1,x2), P³(x2,x2)`.
pub fn section2_query_q2() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "q2",
        vec![v("x1"), v("x2")],
        [(Atom::new("R", vec![v("x1"), v("x2")]), 3), (Atom::new("P", vec![v("x2"), v("x2")]), 3)],
    )
}

/// Section 2: `q3(x1,x2) ← R²(x1,y1), R(x1,y2), P²(y2,y3), P(x2,y4)`
/// (the query whose bag representation opens Section 2, called `q` there and
/// `q3` in the containment example).
pub fn section2_query_q3() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "q3",
        vec![v("x1"), v("x2")],
        [
            (Atom::new("R", vec![v("x1"), v("y1")]), 2),
            (Atom::new("R", vec![v("x1"), v("y2")]), 1),
            (Atom::new("P", vec![v("y2"), v("y3")]), 2),
            (Atom::new("P", vec![v("x2"), v("y4")]), 1),
        ],
    )
}

/// Section 2: the set instance `I = {R(c1,c2), R(c1,c3), P(c2,c4), P(c5,c4)}`.
pub fn section2_instance() -> BTreeSet<Atom> {
    [
        Atom::new("R", vec![c("c1"), c("c2")]),
        Atom::new("R", vec![c("c1"), c("c3")]),
        Atom::new("P", vec![c("c2"), c("c4")]),
        Atom::new("P", vec![c("c5"), c("c4")]),
    ]
    .into_iter()
    .collect()
}

/// Section 2: the bag `Iµ = {R²(c1,c2), R(c1,c3), P(c2,c4), P³(c5,c4)}` over
/// [`section2_instance`], represented as fact → multiplicity.
pub fn section2_bag() -> BTreeMap<Atom, u64> {
    [
        (Atom::new("R", vec![c("c1"), c("c2")]), 2),
        (Atom::new("R", vec![c("c1"), c("c3")]), 1),
        (Atom::new("P", vec![c("c2"), c("c4")]), 1),
        (Atom::new("P", vec![c("c5"), c("c4")]), 3),
    ]
    .into_iter()
    .collect()
}

/// Section 2: the bag instance `Iµ = {R²(c1,c2), P(c2,c2)}` used to show
/// `q2 ⋢b q1`.
pub fn section2_counterexample_bag() -> BTreeMap<Atom, u64> {
    [(Atom::new("R", vec![c("c1"), c("c2")]), 2), (Atom::new("P", vec![c("c2"), c("c2")]), 1)]
        .into_iter()
        .collect()
}

/// Section 3: the projection-free query
/// `q(x1,x2) ← R(x1,x2), R(c1,x2), R(x1,c2)` used to illustrate probe tuples
/// (it has sixteen probe tuples).
pub fn section3_probe_example() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "q",
        vec![v("x1"), v("x2")],
        [
            (Atom::new("R", vec![v("x1"), v("x2")]), 1),
            (Atom::new("R", vec![c("c1"), v("x2")]), 1),
            (Atom::new("R", vec![v("x1"), c("c2")]), 1),
        ],
    )
}

/// Section 3: the "bag variation" projection-free containee
/// `q1(x1,x2) ← R²(x1,x2), R(c1,x2), R³(x1,c2)`.
pub fn section3_query_q1() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "q1",
        vec![v("x1"), v("x2")],
        [
            (Atom::new("R", vec![v("x1"), v("x2")]), 2),
            (Atom::new("R", vec![c("c1"), v("x2")]), 1),
            (Atom::new("R", vec![v("x1"), c("c2")]), 3),
        ],
    )
}

/// Section 3: the containing query
/// `q2(x1,x2) ← R³(x1,x2), R²(x1,y1), R²(y2,y1)`.
pub fn section3_query_q2() -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        "q2",
        vec![v("x1"), v("x2")],
        [
            (Atom::new("R", vec![v("x1"), v("x2")]), 3),
            (Atom::new("R", vec![v("x1"), v("y1")]), 2),
            (Atom::new("R", vec![v("y2"), v("y1")]), 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section2_queries_have_expected_shape() {
        let q1 = section2_query_q1();
        let q2 = section2_query_q2();
        let q3 = section2_query_q3();
        assert!(q1.is_projection_free() && q2.is_projection_free());
        assert!(!q3.is_projection_free());
        assert_eq!(q1.total_atom_count(), 5);
        assert_eq!(q2.total_atom_count(), 6);
        assert_eq!(q3.total_atom_count(), 6);
        assert_eq!(q3.distinct_atom_count(), 4);
    }

    #[test]
    fn section2_instance_and_bag_are_consistent() {
        let instance = section2_instance();
        let bag = section2_bag();
        assert_eq!(instance.len(), 4);
        assert_eq!(bag.len(), 4);
        for atom in bag.keys() {
            assert!(instance.contains(atom), "bag fact {atom} must be in the set instance");
        }
        assert_eq!(bag[&Atom::new("P", vec![c("c5"), c("c4")])], 3);
    }

    #[test]
    fn section3_queries_have_expected_shape() {
        let probe_q = section3_probe_example();
        assert!(probe_q.is_projection_free());
        assert_eq!(probe_q.constants().len(), 2);
        let q1 = section3_query_q1();
        assert!(q1.is_projection_free());
        assert_eq!(q1.total_atom_count(), 6);
        let q2 = section3_query_q2();
        assert!(!q2.is_projection_free());
        assert_eq!(q2.existential_variables().len(), 2);
    }
}
