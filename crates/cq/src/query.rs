//! Conjunctive queries in bag representation.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use crate::atom::Atom;
use crate::substitution::Substitution;
use crate::term::Term;

/// A conjunctive query `q(x) ← R₁^{m₁}(…), …, Rₖ^{mₖ}(…)` in **bag
/// representation** `⟨x, µ_q⟩` (Section 2 of the paper): the body is the set
/// of *distinct* atoms together with the multiplicity of each atom in the
/// original conjunction.
///
/// The head is a tuple of terms; for queries as written by users these are
/// variables, but grounded queries `q(t)` (obtained by substituting a probe
/// tuple for the head variables) carry constants in the head.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    name: String,
    head: Vec<Term>,
    body: BTreeMap<Atom, u64>,
}

impl ConjunctiveQuery {
    /// Builds a query from its head and `(atom, multiplicity)` pairs;
    /// multiplicities of repeated atoms accumulate, zero multiplicities are
    /// dropped.
    pub fn new(
        name: impl Into<String>,
        head: Vec<Term>,
        body: impl IntoIterator<Item = (Atom, u64)>,
    ) -> Self {
        let mut map: BTreeMap<Atom, u64> = BTreeMap::new();
        for (atom, mult) in body {
            if mult == 0 {
                continue;
            }
            *map.entry(atom).or_insert(0) += mult;
        }
        ConjunctiveQuery { name: name.into(), head, body: map }
    }

    /// Builds a query from a plain list of (possibly repeated) body atoms,
    /// counting repetitions — the translation from the classical syntactic
    /// form `∃y ⋀ᵢ Rᵢ(x, y)` to the bag representation.
    pub fn from_atom_list(name: impl Into<String>, head: Vec<Term>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery::new(name, head, atoms.into_iter().map(|a| (a, 1)))
    }

    /// The query name (used only for display).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The head tuple (free variables, or constants after grounding).
    pub fn head(&self) -> &[Term] {
        &self.head
    }

    /// The arity of the query (length of the head tuple).
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// `true` iff the query is Boolean (empty head).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Iterates over the distinct body atoms with their multiplicities, in a
    /// deterministic order.
    pub fn body(&self) -> impl Iterator<Item = (&Atom, u64)> {
        self.body.iter().map(|(a, &m)| (a, m))
    }

    /// The set of distinct body atoms (`body(q)` in the paper).
    pub fn body_atoms(&self) -> impl ExactSizeIterator<Item = &Atom> {
        self.body.keys()
    }

    /// The multiplicity `µ_q(atom)` of a body atom (0 if absent).
    pub fn multiplicity(&self, atom: &Atom) -> u64 {
        self.body.get(atom).copied().unwrap_or(0)
    }

    /// Number of distinct body atoms.
    pub fn distinct_atom_count(&self) -> usize {
        self.body.len()
    }

    /// Total number of atom occurrences (counting multiplicities).
    pub fn total_atom_count(&self) -> u64 {
        self.body.values().sum()
    }

    /// All variable names occurring in the head.
    pub fn head_variables(&self) -> BTreeSet<String> {
        self.head.iter().filter_map(|t| t.as_var().map(str::to_string)).collect()
    }

    /// All variable names occurring in the body.
    pub fn body_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for atom in self.body.keys() {
            out.extend(atom.variables());
        }
        out
    }

    /// All variable names occurring anywhere in the query (`var(q)`).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = self.head_variables();
        out.extend(self.body_variables());
        out
    }

    /// The existential variables: body variables that are not free.
    pub fn existential_variables(&self) -> BTreeSet<String> {
        let head = self.head_variables();
        self.body_variables().into_iter().filter(|v| !head.contains(v)).collect()
    }

    /// `true` iff the query is projection-free (no existential variables).
    pub fn is_projection_free(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// `true` iff every head variable also occurs in the body (the usual
    /// safety condition; required by the containment deciders).
    pub fn is_safe(&self) -> bool {
        let body = self.body_variables();
        self.head_variables().iter().all(|v| body.contains(v))
    }

    /// The constants (language and canonical) occurring in the query
    /// (`adom(q)` in the paper).
    pub fn constants(&self) -> BTreeSet<Term> {
        let mut out: BTreeSet<Term> =
            self.head.iter().filter(|t| t.is_constant()).cloned().collect();
        for atom in self.body.keys() {
            out.extend(atom.constants());
        }
        out
    }

    /// The canonical instance `I_q`: the set of ground atoms obtained by
    /// replacing every variable `x` with its canonical constant `x̂`.
    pub fn canonical_instance(&self) -> BTreeSet<Atom> {
        self.body.keys().map(Atom::canonicalize).collect()
    }

    /// The canonical instance together with the body multiplicities carried
    /// over (atoms that collapse under canonicalisation accumulate, per
    /// Equation 1 applied to the canonicalising substitution).
    pub fn canonical_instance_bag(&self) -> BTreeMap<Atom, u64> {
        let mut out: BTreeMap<Atom, u64> = BTreeMap::new();
        for (atom, mult) in &self.body {
            *out.entry(atom.canonicalize()).or_insert(0) += mult;
        }
        out
    }

    /// Applies a substitution `σ` to the query, producing `σ(q)`:
    /// the head becomes `σ(x)` and body multiplicities accumulate over atoms
    /// that become equal (Equation 1 of the paper).
    pub fn apply_substitution(&self, sigma: &Substitution) -> ConjunctiveQuery {
        let head = sigma.apply_tuple(&self.head);
        let mut body: BTreeMap<Atom, u64> = BTreeMap::new();
        for (atom, mult) in &self.body {
            *body.entry(sigma.apply_atom(atom)).or_insert(0) += mult;
        }
        ConjunctiveQuery { name: self.name.clone(), head, body }
    }

    /// Grounds the query with a tuple `t`: unifies the head with `t` and
    /// applies the resulting substitution, yielding `q(t)`.
    ///
    /// Returns `None` if the head is not unifiable with `t` (repeated head
    /// variables that would need two different values, or a head constant
    /// that differs from the corresponding component of `t`).
    pub fn ground_with(&self, tuple: &[Term]) -> Option<ConjunctiveQuery> {
        self.ground_with_tuple(tuple.to_vec())
    }

    /// [`Self::ground_with`] taking ownership of the tuple, which becomes the
    /// grounded head — the probe-compilation hot path materialises the tuple
    /// anyway and hands it over instead of re-cloning every component.
    pub fn ground_with_tuple(&self, tuple: Vec<Term>) -> Option<ConjunctiveQuery> {
        if tuple.len() != self.head.len() {
            return None;
        }
        // Positional head bindings in a tiny association list: heads are
        // short, and the substitution machinery would allocate owned names
        // and term clones per probe on the compilation hot path. Body
        // variables outside the head (non-projection-free queries) are left
        // unchanged, exactly as an under-defined substitution would.
        let mut binds: Vec<(&str, &Term)> = Vec::with_capacity(self.head.len());
        for (pattern, target) in self.head.iter().zip(&tuple) {
            match pattern.as_var() {
                Some(v) => match binds.iter().find(|(bound, _)| *bound == v) {
                    Some((_, existing)) if *existing != target => return None,
                    Some(_) => {}
                    None => binds.push((v, target)),
                },
                None => {
                    if pattern != target {
                        return None;
                    }
                }
            }
        }
        // Unification succeeded, so the grounded head is the tuple itself;
        // multiplicities of body atoms that collapse under the grounding
        // accumulate in ConjunctiveQuery::new (Equation 1).
        let subst = |t: &Term| match t.as_var() {
            Some(v) => binds
                .iter()
                .find(|(b, _)| *b == v)
                .map_or_else(|| t.clone(), |(_, img)| (*img).clone()),
            None => t.clone(),
        };
        let body: Vec<(Atom, u64)> = self
            .body
            .iter()
            .map(|(atom, &mult)| {
                (Atom::new(atom.relation(), atom.terms().iter().map(&subst).collect()), mult)
            })
            .collect();
        Some(ConjunctiveQuery::new(self.name.clone(), tuple, body))
    }

    /// The *most-general grounding* `q(t*)`: every head variable is replaced
    /// by its canonical constant (Theorem 5.3's most-general probe tuple).
    pub fn most_general_grounding(&self) -> ConjunctiveQuery {
        let tuple: Vec<Term> = self.head.iter().map(Term::canonicalize).collect();
        self.ground_with_tuple(tuple)
            .expect("the most-general probe tuple always unifies with the head")
    }

    /// Renames the query (display only).
    pub fn with_name(mut self, name: impl Into<String>) -> ConjunctiveQuery {
        self.name = name.into();
        self
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") <- ")?;
        if self.body.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, (atom, mult)) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if mult == &1 {
                    write!(f, "{atom}")?;
                } else {
                    write!(f, "{}^{}(", atom.relation(), mult)?;
                    for (j, t) in atom.terms().iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ")")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    /// The paper's Section 2 example:
    /// q(x1,x2) ← R²(x1,y1), R(x1,y2), P²(y2,y3), P(x2,y4).
    pub(crate) fn paper_q3() -> ConjunctiveQuery {
        ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x1"), v("x2")],
            vec![
                Atom::new("R", vec![v("x1"), v("y1")]),
                Atom::new("R", vec![v("x1"), v("y1")]),
                Atom::new("R", vec![v("x1"), v("y2")]),
                Atom::new("P", vec![v("y2"), v("y3")]),
                Atom::new("P", vec![v("y2"), v("y3")]),
                Atom::new("P", vec![v("x2"), v("y4")]),
            ],
        )
    }

    #[test]
    fn bag_representation_matches_paper() {
        let q = paper_q3();
        assert_eq!(q.distinct_atom_count(), 4);
        assert_eq!(q.total_atom_count(), 6);
        assert_eq!(q.multiplicity(&Atom::new("R", vec![v("x1"), v("y1")])), 2);
        assert_eq!(q.multiplicity(&Atom::new("R", vec![v("x1"), v("y2")])), 1);
        assert_eq!(q.multiplicity(&Atom::new("P", vec![v("y2"), v("y3")])), 2);
        assert_eq!(q.multiplicity(&Atom::new("P", vec![v("x2"), v("y4")])), 1);
        assert_eq!(q.multiplicity(&Atom::new("P", vec![v("z"), v("z")])), 0);
    }

    #[test]
    fn variable_classification() {
        let q = paper_q3();
        assert_eq!(q.arity(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.head_variables().len(), 2);
        assert_eq!(
            q.existential_variables(),
            BTreeSet::from(["y1".into(), "y2".into(), "y3".into(), "y4".into()])
        );
        assert!(!q.is_projection_free());
        assert!(q.is_safe());

        // A projection-free query.
        let pf = ConjunctiveQuery::from_atom_list(
            "p",
            vec![v("x1"), v("x2")],
            vec![Atom::new("R", vec![v("x1"), v("x2")]), Atom::new("P", vec![v("x2"), v("x2")])],
        );
        assert!(pf.is_projection_free());
        assert!(pf.is_safe());

        // An unsafe query: head variable not in body.
        let unsafe_q = ConjunctiveQuery::from_atom_list(
            "u",
            vec![v("x"), v("z")],
            vec![Atom::new("R", vec![v("x"), v("x")])],
        );
        assert!(!unsafe_q.is_safe());
        // z is free but never occurs existentially, so the query is still
        // projection-free by the definition (no existential variables).
        assert!(unsafe_q.is_projection_free());
    }

    #[test]
    fn substitution_merges_atoms_per_equation_1() {
        // The paper: σ = {y1,y2,y3,y4 ↦ x2} gives σ(q) = R³(x1,x2), P³(x2,x2).
        let q = paper_q3();
        let sigma = Substitution::from_pairs([
            ("y1".to_string(), v("x2")),
            ("y2".to_string(), v("x2")),
            ("y3".to_string(), v("x2")),
            ("y4".to_string(), v("x2")),
        ]);
        let sq = q.apply_substitution(&sigma);
        assert_eq!(sq.distinct_atom_count(), 2);
        assert_eq!(sq.total_atom_count(), 6);
        assert_eq!(sq.multiplicity(&Atom::new("R", vec![v("x1"), v("x2")])), 3);
        assert_eq!(sq.multiplicity(&Atom::new("P", vec![v("x2"), v("x2")])), 3);
        assert_eq!(sq.head(), &[v("x1"), v("x2")]);
    }

    #[test]
    fn grounding_with_probe_tuples() {
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x1"), v("x2")],
            vec![
                Atom::new("R", vec![v("x1"), v("x2")]),
                Atom::new("R", vec![Term::constant("c1"), v("x2")]),
                Atom::new("R", vec![v("x1"), Term::constant("c2")]),
            ],
        );
        // Ground with (^x1, ^x2): nothing merges.
        let g = q.ground_with(&[Term::canon("x1"), Term::canon("x2")]).unwrap();
        assert_eq!(g.distinct_atom_count(), 3);
        assert!(g.body_atoms().all(Atom::is_ground));
        // Ground with (c1, c2): R(c1,c2) appears from all three atoms? No:
        // R(x1,x2) -> R(c1,c2), R(c1,x2) -> R(c1,c2), R(x1,c2) -> R(c1,c2): all merge.
        let g2 = q.ground_with(&[Term::constant("c1"), Term::constant("c2")]).unwrap();
        assert_eq!(g2.distinct_atom_count(), 1);
        assert_eq!(
            g2.multiplicity(&Atom::new("R", vec![Term::constant("c1"), Term::constant("c2")])),
            3
        );
        // Arity mismatch.
        assert!(q.ground_with(&[Term::constant("c1")]).is_none());
        // Repeated head variables need equal components.
        let rep = ConjunctiveQuery::from_atom_list(
            "r",
            vec![v("x"), v("x")],
            vec![Atom::new("R", vec![v("x"), v("x")])],
        );
        assert!(rep.ground_with(&[Term::constant("c1"), Term::constant("c2")]).is_none());
        assert!(rep.ground_with(&[Term::constant("c1"), Term::constant("c1")]).is_some());
    }

    #[test]
    fn most_general_grounding_uses_canonical_constants() {
        let q = paper_q3();
        let g = q.most_general_grounding();
        assert_eq!(g.head(), &[Term::canon("x1"), Term::canon("x2")]);
        // Existential variables stay as variables in the body.
        assert!(!g.body_variables().is_empty());
        assert_eq!(g.distinct_atom_count(), 4);
    }

    #[test]
    fn canonical_instance() {
        let q = paper_q3();
        let inst = q.canonical_instance();
        assert_eq!(inst.len(), 4);
        assert!(inst.contains(&Atom::new("R", vec![Term::canon("x1"), Term::canon("y1")])));
        assert!(inst.iter().all(Atom::is_ground));
        // The bag version keeps multiplicities.
        let bag = q.canonical_instance_bag();
        assert_eq!(bag[&Atom::new("P", vec![Term::canon("y2"), Term::canon("y3")])], 2);
    }

    #[test]
    fn constants_and_adom() {
        let q = ConjunctiveQuery::from_atom_list(
            "q",
            vec![v("x")],
            vec![
                Atom::new("R", vec![v("x"), Term::constant("c1")]),
                Atom::new("R", vec![Term::constant("c2"), v("x")]),
            ],
        );
        assert_eq!(q.constants(), BTreeSet::from([Term::constant("c1"), Term::constant("c2")]));
    }

    #[test]
    fn zero_multiplicity_atoms_are_dropped() {
        let q = ConjunctiveQuery::new(
            "q",
            vec![v("x")],
            [(Atom::new("R", vec![v("x"), v("x")]), 0u64), (Atom::new("S", vec![v("x")]), 2u64)],
        );
        assert_eq!(q.distinct_atom_count(), 1);
        assert_eq!(q.total_atom_count(), 2);
    }

    #[test]
    fn display_shows_multiplicities() {
        let q = paper_q3();
        let s = q.to_string();
        assert!(s.starts_with("q(x1, x2) <- "));
        assert!(s.contains("R^2(x1, y1)"));
        assert!(s.contains("R(x1, y2)"));
        let empty = ConjunctiveQuery::from_atom_list("b", vec![], vec![]);
        assert_eq!(empty.to_string(), "b() <- true");
    }

    #[test]
    fn boolean_queries() {
        let b = ConjunctiveQuery::from_atom_list(
            "b",
            vec![],
            vec![Atom::new("R", vec![Term::constant("a"), Term::constant("b")])],
        );
        assert!(b.is_boolean());
        assert!(b.is_projection_free() == b.existential_variables().is_empty());
        assert!(b.is_safe());
    }
}
