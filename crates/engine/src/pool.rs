//! The unified (pair × probe) work-stealing scheduler: one shared work
//! queue serves both the single-pair `decide` pool and the streaming
//! `batch` pool.
//!
//! ## The work unit
//!
//! The schedulable unit is a **(pair, probe-index) claim**, not a whole
//! pair. Every admitted [`PairTask`] publishes its probe space as a range
//! of claimable unit indices (`0..units`): one unit per raw probe index
//! for the all-probes and guess-and-check algorithms, a single unit for
//! the most-general-probe route, and a single no-op unit for a degenerate
//! empty probe space (so some worker always retires — and therefore
//! finalizes — the pair). Workers claim *chunks* of consecutive units with
//! one relaxed `fetch_add` on the task's `next_unit` cursor: chunking keeps
//! cache locality on giant probe spaces and keeps tiny pairs from paying
//! one atomic claim per probe, while the shared cursor means any worker can
//! pull units from any in-flight pair — a giant pair amid small ones is
//! drained by the whole pool instead of starving on one thread.
//!
//! ## Unit lifecycle
//!
//! ```text
//!   admit ──▶ claim chunk ──▶ decide probes ──▶ retire chunk ──▶ finalize
//!   (feeder   (fetch_add on    (the sequential   (per-task tally  (last
//!    blocks    next_unit; a     decide_probe;     under one lock   retired
//!    at the    foreign pair     indices past      per chunk)       chunk
//!    in-flight counts one       the cutoff are                     builds the
//!    capacity) steal)           skipped)                           verdict)
//! ```
//!
//! A claimed chunk always retires in full — skipped units (past the
//! cutoff, or after a cancellation) retire without being decided — so the
//! per-task `remaining` tally reaches zero exactly once, and the worker
//! that retires the last chunk finalizes the pair: it assembles the
//! verdict from the merged event and hands it to the caller's sink. The
//! per-task completion tally lives under a `Mutex` locked once per retired
//! chunk, which is also what publishes every worker's probe outcomes to
//! the finalizer (the claim cursors only use relaxed atomics).
//!
//! ## Deterministic merging
//!
//! The sequential decider returns the outcome of the **first** probe (in
//! probe order) that produces an event — a witness assignment or a
//! guess-and-check budget error. To be bit-identical for any worker count
//! and any claim interleaving, each task keeps only the event with the
//! lowest probe index and uses that index as a *cutoff*: units above a
//! known event are skipped (their outcome could never win the merge),
//! while lower units are still decided and may replace the event.
//! Contained verdicts count every probe tuple exactly once, so
//! `probes_checked` also matches the sequential run.
//!
//! ## Cancellation
//!
//! Early termination never poisons the pool. A per-pair event (a witness,
//! a `--keep-going` budget error) cancels only that pair's remaining units
//! through its cutoff; other in-flight pairs are untouched. A scheduler
//! abort (the batch collector's `emit` returned `false`) flips one relaxed
//! flag: workers retire remaining units without deciding them, finalize
//! normally, and the collector discards the drained results — no worker is
//! ever detached or killed mid-unit.

use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use dioph_arith::Natural;
use dioph_containment::{
    BagContainment, BagContainmentDecider, CompiledPair, ContainmentError, ProbeScratch,
};

/// The outcome of one probe that can decide the whole pair.
enum ProbeEvent {
    /// An MPI assignment witnessing non-containment at this probe.
    Witness(Vec<Natural>),
    /// The per-probe decision failed (guess-and-check budget exhaustion).
    Error(ContainmentError),
}

/// How a scheduled pair is owned: the single-pair pool borrows its caller's
/// pair, the batch pool shares the compilation cache's.
pub(crate) enum PairRef<'a> {
    /// Borrowed from the caller (`DecisionEngine::decide`).
    Borrowed(&'a CompiledPair),
    /// Shared with the batch [`CompilationCache`](crate::CompilationCache).
    Shared(Arc<CompiledPair>),
}

impl Deref for PairRef<'_> {
    type Target = CompiledPair;

    fn deref(&self) -> &CompiledPair {
        match self {
            PairRef::Borrowed(pair) => pair,
            PairRef::Shared(pair) => pair,
        }
    }
}

/// What one unit index of a task means.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum UnitKind {
    /// One unit: the pair's most-general probe (Theorem 5.3 route).
    MostGeneral,
    /// One unit per raw probe-space index (all-probes, guess-and-check).
    ProbeSpace,
}

/// The merge-and-completion state of one task, locked once per retired
/// chunk. Holding `checked` and the winning event under the same lock as
/// `remaining` is what hands the finalizing worker every peer's outcome.
struct Progress {
    /// Units not yet retired; the chunk that takes this to zero finalizes.
    remaining: usize,
    /// Probe tuples decided (the `probes_checked` of a Contained verdict).
    checked: usize,
    /// The lowest-index probe event seen so far.
    event: Option<(usize, ProbeEvent)>,
}

/// One admitted pair: a claimable range of `units` probe indices plus the
/// merge state that turns retired units back into a single verdict.
pub(crate) struct PairTask<'a> {
    /// Submission sequence; handed back to the sink for in-order collection.
    seq: u64,
    pair: PairRef<'a>,
    kind: UnitKind,
    /// Total claimable units (≥ 1).
    units: usize,
    /// Consecutive units claimed per `fetch_add` on `next_unit`.
    chunk: usize,
    /// The claim cursor: the next unclaimed unit index.
    next_unit: AtomicUsize,
    /// Lowest unit index with a known event; higher units are skipped.
    cutoff: AtomicUsize,
    /// The worker that claimed first; foreign claims count as steals.
    owner: AtomicUsize,
    progress: Mutex<Progress>,
}

impl PairTask<'_> {
    /// Whether the task still has unclaimed units (racy, by design: a
    /// losing claimer just moves on).
    fn has_units(&self) -> bool {
        self.next_unit.load(Ordering::Relaxed) < self.units
    }
}

/// The scheduler's shared queue state, guarded by [`Scheduler::state`].
struct SchedState<'a> {
    /// In-flight tasks with unclaimed units, in submission order.
    queue: Vec<Arc<PairTask<'a>>>,
    /// Tasks admitted but not yet finalized (the feeder's backpressure).
    in_flight: usize,
    /// No further admissions; drained workers may exit.
    closed: bool,
    /// Per-worker claimed-unit tallies, for the claim-spread gauge.
    claims: Vec<u64>,
}

/// One shared work queue of (pair, probe-index) units.
///
/// The same implementation serves the single-pair pool (`pool` label
/// `"probe"`, one pre-admitted task) and the streaming batch pool (label
/// `"batch"`, tasks admitted by the feeder while workers run).
pub(crate) struct Scheduler<'a> {
    /// Pool label for worker thread names and per-worker stats.
    pool: &'static str,
    workers: usize,
    /// Maximum tasks in flight before [`Self::admit`] blocks.
    capacity: usize,
    state: Mutex<SchedState<'a>>,
    /// Signalled on admission and close: workers wait here when drained.
    work_available: Condvar,
    /// Signalled on finalize and abort: the feeder waits here when full.
    slot_available: Condvar,
    aborted: AtomicBool,
}

impl<'a> Scheduler<'a> {
    pub(crate) fn new(pool: &'static str, workers: usize, capacity: usize) -> Self {
        Scheduler {
            pool,
            workers: workers.max(1),
            capacity: capacity.max(1),
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                in_flight: 0,
                closed: false,
                claims: vec![0; workers.max(1)],
            }),
            work_available: Condvar::new(),
            slot_available: Condvar::new(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Publishes a compiled pair's probe space as claimable units, blocking
    /// while the scheduler is at capacity. Returns `false` (without
    /// admitting) once the scheduler is aborted.
    pub(crate) fn admit(&self, seq: u64, pair: PairRef<'a>, kind: UnitKind) -> bool {
        dioph_obs::registry::ENGINE_PAIRS_DECIDED.incr();
        let units = match kind {
            UnitKind::MostGeneral => 1,
            UnitKind::ProbeSpace => pair.probe_units(),
        };
        // Chunks aim for a few claims per worker per pair — enough that a
        // giant pair spreads across the pool, few enough that a tiny pair
        // costs one claim — capped so late-joining workers on a giant pair
        // still find units to steal.
        let chunk = (units / (self.workers * 4)).clamp(1, 64);
        let task = Arc::new(PairTask {
            seq,
            pair,
            kind,
            units,
            chunk,
            next_unit: AtomicUsize::new(0),
            cutoff: AtomicUsize::new(usize::MAX),
            owner: AtomicUsize::new(usize::MAX),
            progress: Mutex::new(Progress { remaining: units, checked: 0, event: None }),
        });
        let mut state = self.state.lock().expect("scheduler users never panic");
        while state.in_flight >= self.capacity && !self.aborted.load(Ordering::Relaxed) {
            state = self.slot_available.wait(state).expect("scheduler users never panic");
        }
        if self.aborted.load(Ordering::Relaxed) {
            return false;
        }
        state.in_flight += 1;
        if self.pool == "batch" {
            let depth = state.in_flight as u64;
            dioph_obs::registry::ENGINE_BATCH_QUEUE_DEPTH_MAX.record_max(depth);
        }
        state.queue.push(task);
        drop(state);
        self.work_available.notify_all();
        true
    }

    /// Declares the stream complete: workers exit once the queue drains.
    pub(crate) fn close(&self) {
        self.state.lock().expect("scheduler users never panic").closed = true;
        self.work_available.notify_all();
    }

    /// Cancels everything: admissions stop, un-decided units retire as
    /// skips. In-flight tasks still finalize (their sinks still run), so
    /// the caller keeps draining its result channel as usual.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
        drop(self.state.lock().expect("scheduler users never panic"));
        self.work_available.notify_all();
        self.slot_available.notify_all();
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Picks the next task with unclaimed units — earliest submission
    /// first, which unblocks the in-order collector soonest — or blocks
    /// until one is admitted. `None` means the stream is closed (or
    /// aborted) and drained.
    fn next_task(&self) -> Option<Arc<PairTask<'a>>> {
        let mut state = self.state.lock().expect("scheduler users never panic");
        loop {
            state.queue.retain(|task| task.has_units());
            if let Some(task) = state.queue.first() {
                return Some(Arc::clone(task));
            }
            if state.closed || self.aborted.load(Ordering::Relaxed) {
                return None;
            }
            state = self.work_available.wait(state).expect("scheduler users never panic");
        }
    }

    /// The worker loop: claim a chunk, decide its units, retire it, and
    /// finalize the pair when the last chunk retires. `sink` receives every
    /// finalized `(seq, verdict)`.
    pub(crate) fn run_worker(
        &self,
        worker: usize,
        decider: &BagContainmentDecider,
        sink: &impl Fn(u64, Result<BagContainment, ContainmentError>),
    ) {
        dioph_obs::trace::name_current_thread(&format!("{}-worker-{worker}", self.pool));
        let mut claims = 0u64;
        let mut busy_ns = 0u64;
        let mut max_unit_ns = 0u64;
        // One scratch per worker thread for the whole run: every probe this
        // worker decides — across chunks, across pairs — reuses the same
        // warmed buffers. Scratch reuse is capacity-only, so worker verdicts
        // stay bit-identical to the sequential loop.
        let mut scratch = ProbeScratch::new();
        let mut current: Option<Arc<PairTask<'a>>> = None;
        loop {
            let task = match current.take() {
                // Locality: keep claiming from the task this worker already
                // touched while it has units left (no queue lock needed).
                Some(task) if task.has_units() => task,
                _ => match self.next_task() {
                    Some(task) => task,
                    None => break,
                },
            };
            let start = task.next_unit.fetch_add(task.chunk, Ordering::Relaxed);
            if start >= task.units {
                continue; // lost the race for the task's tail
            }
            let end = task.units.min(start + task.chunk);
            let claimed = end - start;
            claims += claimed as u64;
            dioph_obs::registry::ENGINE_UNITS_CLAIMED.add(claimed as u64);
            if task.kind == UnitKind::ProbeSpace {
                dioph_obs::registry::ENGINE_PROBES_CLAIMED.add(claimed as u64);
            }
            // The first claim marks ownership; every chunk another worker
            // pulls from the pair afterwards is a steal.
            let claim = task.owner.compare_exchange(
                usize::MAX,
                worker,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            if claim.is_err_and(|owner| owner != worker) {
                dioph_obs::registry::ENGINE_STEALS.incr();
            }
            let (decided, event) = self.decide_units(
                &task,
                decider,
                start..end,
                &mut scratch,
                &mut busy_ns,
                &mut max_unit_ns,
            );
            let finished = {
                let mut progress = task.progress.lock().expect("scheduler workers never panic");
                if let Some((index, event)) = event {
                    if progress.event.as_ref().is_none_or(|(winner, _)| index < *winner) {
                        progress.event = Some((index, event));
                        // Written only under this task's progress lock, so
                        // the store is monotone decreasing; readers race it
                        // harmlessly (skipping is only an optimisation).
                        task.cutoff.store(index, Ordering::Relaxed);
                    }
                }
                progress.checked += decided;
                progress.remaining -= claimed;
                progress.remaining == 0
            };
            if finished {
                self.finalize(&task, sink);
            }
            current = Some(task);
        }
        dioph_obs::pool::record(self.pool, worker, claims, busy_ns, max_unit_ns);
        self.state.lock().expect("scheduler users never panic").claims[worker] = claims;
    }

    /// Decides the units of one claimed chunk; returns how many probes were
    /// decided and the chunk's lowest-index event, if any.
    fn decide_units(
        &self,
        task: &PairTask<'a>,
        decider: &BagContainmentDecider,
        range: std::ops::Range<usize>,
        scratch: &mut ProbeScratch,
        busy_ns: &mut u64,
        max_unit_ns: &mut u64,
    ) -> (usize, Option<(usize, ProbeEvent)>) {
        let mut decided = 0usize;
        let raw_len = task.pair.probe_space().raw_len();
        for index in range {
            if self.aborted.load(Ordering::Relaxed) {
                // Cancelled: the rest of the chunk retires as skips.
                break;
            }
            // An event at a lower index already decides the pair; skipping
            // is only an optimisation (a stale read costs wasted work,
            // never a wrong merge).
            if index > task.cutoff.load(Ordering::Relaxed) {
                continue;
            }
            let unit_start = dioph_obs::phase::timing_enabled().then(Instant::now);
            let compiled = match task.kind {
                UnitKind::MostGeneral => Some(task.pair.most_general()),
                UnitKind::ProbeSpace if index < raw_len => task.pair.probe(index),
                UnitKind::ProbeSpace => None, // the degenerate no-op unit
            };
            let Some(compiled) = compiled else { continue };
            decided += 1;
            let outcome = decider.decide_probe_in(compiled, scratch);
            if let Some(unit_start) = unit_start {
                let ns = u64::try_from(unit_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                *busy_ns = busy_ns.saturating_add(ns);
                *max_unit_ns = (*max_unit_ns).max(ns);
            }
            let event = match outcome {
                Ok(None) => continue,
                Ok(Some(assignment)) => ProbeEvent::Witness(assignment),
                Err(error) => ProbeEvent::Error(error),
            };
            // Later units of this chunk have strictly higher indices, so
            // they can never win the merge against this event: stop here
            // and let the remainder retire as skips.
            return (decided, Some((index, event)));
        }
        (decided, None)
    }

    /// Turns a fully retired task back into a verdict and hands it to the
    /// sink; runs on whichever worker retired the last chunk.
    fn finalize(
        &self,
        task: &PairTask<'a>,
        sink: &impl Fn(u64, Result<BagContainment, ContainmentError>),
    ) {
        let (event, checked) = {
            let mut progress = task.progress.lock().expect("scheduler workers never panic");
            (progress.event.take(), progress.checked)
        };
        let result = match event {
            Some((index, ProbeEvent::Witness(assignment))) => {
                let compiled = match task.kind {
                    UnitKind::MostGeneral => task.pair.most_general(),
                    UnitKind::ProbeSpace => {
                        task.pair.probe(index).expect("the winning event came from a probe")
                    }
                };
                Ok(BagContainment::NotContained(Box::new(
                    task.pair.counterexample(compiled, &assignment),
                )))
            }
            Some((_, ProbeEvent::Error(error))) => Err(error),
            None => Ok(BagContainment::Contained { probes_checked: checked }),
        };
        if let Ok(verdict) = &result {
            dioph_containment::observe_verdict(verdict);
        }
        sink(task.seq, result);
        let mut state = self.state.lock().expect("scheduler users never panic");
        state.in_flight -= 1;
        drop(state);
        self.slot_available.notify_all();
    }

    /// Records the run's claim spread (busiest minus idlest worker's
    /// claimed units) into the `engine.claim_spread.max` gauge. Call after
    /// every worker has exited.
    pub(crate) fn finish(&self) {
        let state = self.state.lock().expect("scheduler users never panic");
        if let (Some(max), Some(min)) = (state.claims.iter().max(), state.claims.iter().min()) {
            dioph_obs::registry::ENGINE_CLAIM_SPREAD_MAX.record_max(max - min);
        }
    }
}

/// Decides `pair` with up to `jobs` worker threads; bit-identical to
/// `decider.decide_pair(pair)`.
pub(crate) fn decide_pair_parallel(
    decider: &BagContainmentDecider,
    pair: &CompiledPair,
    jobs: usize,
) -> Result<BagContainment, ContainmentError> {
    // Never spawn more workers than there are claimable units: `--jobs 8`
    // on a 3-probe pair gets 3 threads, not 8 (5 of which could only idle).
    let workers = jobs.min(pair.probe_units()).max(1);
    let scheduler = Scheduler::new("probe", workers, 1);
    scheduler.admit(0, PairRef::Borrowed(pair), UnitKind::ProbeSpace);
    scheduler.close();
    let slot: Mutex<Option<Result<BagContainment, ContainmentError>>> = Mutex::new(None);
    std::thread::scope(|s| {
        for worker in 0..workers {
            let (scheduler, slot) = (&scheduler, &slot);
            s.spawn(move || {
                scheduler.run_worker(worker, decider, &|_seq, result| {
                    *slot.lock().expect("probe workers never panic") = Some(result);
                });
            });
        }
    });
    scheduler.finish();
    slot.into_inner()
        .expect("probe workers never panic")
        .expect("the admitted pair is always finalized")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_containment::Algorithm;
    use dioph_cq::parse_query;

    #[test]
    fn parallel_all_probes_matches_sequential_probe_counts() {
        // The diagonal-probe example has 16 probe tuples; all must be
        // checked (and counted) when containment holds.
        let q = parse_query("q(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2')").unwrap();
        let decider = BagContainmentDecider::new(Algorithm::AllProbes);
        let pair = CompiledPair::new(q.clone(), q.clone()).unwrap();
        let sequential = decider.decide_pair(&pair).unwrap();
        for jobs in [1, 2, 3, 8, 64] {
            let parallel = decide_pair_parallel(&decider, &pair, jobs).unwrap();
            assert_eq!(parallel, sequential, "jobs={jobs}");
        }
        assert!(matches!(sequential, BagContainment::Contained { probes_checked: 16 }));
    }

    #[test]
    fn parallel_merge_picks_the_first_failing_probe() {
        // A failing pair: the counterexample must be the one the sequential
        // loop finds (the lowest-index failing probe), for every job count.
        let q1 = parse_query("q(x, y) <- R(x, y)").unwrap();
        let q2 = parse_query("p(x, y) <- R(x, x)").unwrap();
        let decider = BagContainmentDecider::new(Algorithm::AllProbes);
        let sequential = decider.decide(&q1, &q2).unwrap();
        let ce = sequential.counterexample().expect("pair must fail");
        for jobs in [2, 4, 16] {
            let pair = CompiledPair::new(q1.clone(), q2.clone()).unwrap();
            let parallel = decide_pair_parallel(&decider, &pair, jobs).unwrap();
            assert_eq!(parallel.counterexample(), Some(ce), "jobs={jobs}");
            assert_eq!(parallel.to_json(), sequential.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn workers_are_capped_at_the_unit_count() {
        // A pair with a 4-unit probe space run at jobs=64 must record stats
        // for at most 4 workers (the cap is what keeps thread spawns
        // bounded by available work).
        let q = parse_query("q(x) <- R(x, x), S(x)").unwrap();
        let pair = CompiledPair::new(q.clone(), q.clone()).unwrap();
        let units = pair.probe_units();
        assert!(units < 64, "the example must be smaller than the job count");
        let decider = BagContainmentDecider::new(Algorithm::AllProbes);
        dioph_obs::pool::reset();
        decide_pair_parallel(&decider, &pair, 64).unwrap();
        let workers: Vec<_> =
            dioph_obs::pool::snapshot().into_iter().filter(|w| w.pool == "probe").collect();
        assert!(!workers.is_empty());
        assert!(workers.len() <= units, "{} workers for {units} units", workers.len());
    }

    #[test]
    fn every_admitted_unit_is_claimed_exactly_once() {
        // Unit claims across a mixed stream must add up to the admitted
        // probe spaces — no unit is lost or double-claimed, even with many
        // workers racing tiny chunks.
        let q = parse_query("q(x1, x2) <- R(x1, x2), R('c1', x2), R^3(x1, 'c2')").unwrap();
        let pair = CompiledPair::new(q.clone(), q.clone()).unwrap();
        let decider = BagContainmentDecider::new(Algorithm::AllProbes);
        let before = dioph_obs::registry::snapshot();
        decide_pair_parallel(&decider, &pair, 8).unwrap();
        let delta = dioph_obs::registry::snapshot().since(&before);
        assert_eq!(delta.get("engine.units_claimed"), Some(pair.probe_units() as u64));
    }
}
