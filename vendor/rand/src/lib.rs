//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a tiny, deterministic implementation of exactly the API subset the
//! workloads and benches use (`rand` 0.9 naming):
//!
//! * [`Rng::random_range`] over integer `Range`/`RangeInclusive` bounds;
//! * [`Rng::random_bool`] with a `f64` probability;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is SplitMix64: statistically fine for workload generation,
//! fully deterministic per seed, and obviously not cryptographic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The raw source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can serve as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self` using `rng`.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range passed to random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((wide(rng) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range passed to random_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // The range covers the whole 128-bit domain.
                    wide(rng) as $t
                } else {
                    start.wrapping_add((wide(rng) % span) as $t)
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

fn wide<G: RngCore + ?Sized>(rng: &mut G) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

/// User-facing random-value methods, in the `rand` 0.9 naming scheme.
pub trait Rng: RngCore {
    /// Returns a uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-4i64..=6);
            assert!((-4..=6).contains(&v));
            let u = rng.random_range(3usize..5);
            assert!((3..5).contains(&u));
            let w = rng.random_range(1u64..=1);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn full_u128_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let _ = rng.random_range(0u128..=u128::MAX);
            let v = rng.random_range(1u128..=u128::MAX);
            assert!(v >= 1);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
