//! The bag-containment decision procedures.
//!
//! Three algorithms are provided, all deciding `q1 ⊑b q2` for a
//! projection-free containee `q1` and an arbitrary containing CQ `q2`:
//!
//! * [`Algorithm::MostGeneralProbe`] — the paper's headline procedure
//!   (Theorem 5.3): compile a single MPI for the most-general probe tuple and
//!   decide its solvability through the linear-system reduction
//!   (Theorems 4.1 and 4.2).
//! * [`Algorithm::AllProbes`] — the Corollary 3.1 characterisation: one MPI
//!   per probe tuple. Exponentially many probes, used for differential
//!   testing and the E6 crossover experiment.
//! * [`Algorithm::GuessCheck`] — the enumeration underlying the Π₂ᵖ
//!   procedure of Theorem 5.1: instead of solving an LP, enumerate candidate
//!   natural vectors `d` up to the small-solution bound of Lemma 5.1 and
//!   check each against every containment mapping. Exponential; serves as
//!   the baseline the LP route is compared against.
//!
//! Whenever containment fails, an explicit, independently verifiable
//! [`Counterexample`] bag is produced.

use dioph_arith::Natural;
use dioph_cq::ConjunctiveQuery;
use dioph_linalg::FeasibilityEngine;

use crate::certificate::{BagContainment, ContainmentError};
use crate::compile::{CompiledPair, CompiledProbe};
use crate::scratch::ProbeScratch;

/// Which decision algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Algorithm {
    /// Theorem 5.3: single MPI for the most-general probe tuple (default).
    #[default]
    MostGeneralProbe,
    /// Corollary 3.1: one MPI per probe tuple.
    AllProbes,
    /// Theorem 5.1 / Lemma 5.1: bounded enumeration of candidate vectors,
    /// with a budget on the number of enumerated vectors (the decider reports
    /// [`ContainmentError::BudgetExceeded`] when the bound would be passed).
    GuessCheck {
        /// Maximum number of candidate vectors to enumerate per probe tuple.
        budget: u64,
    },
}

/// A configured bag-containment decider.
#[derive(Clone, Copy, Debug, Default)]
pub struct BagContainmentDecider {
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// The LP feasibility engine used by the MPI-based algorithms.
    pub engine: FeasibilityEngine,
}

impl BagContainmentDecider {
    /// A decider with the given algorithm and the default (simplex) engine.
    pub fn new(algorithm: Algorithm) -> Self {
        BagContainmentDecider { algorithm, engine: FeasibilityEngine::default() }
    }

    /// Overrides the feasibility engine.
    pub fn with_engine(mut self, engine: FeasibilityEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Decides `containee ⊑b containing`.
    ///
    /// # Errors
    /// * [`ContainmentError::ContaineeNotProjectionFree`] if the containee
    ///   has existential variables (outside the fragment solved by the paper);
    /// * [`ContainmentError::UnsafeQuery`] if the containee has a head
    ///   variable that does not occur in its body;
    /// * [`ContainmentError::EmptyBody`] if the containee has no body atoms;
    /// * [`ContainmentError::BudgetExceeded`] if the guess-and-check
    ///   enumeration would exceed its configured budget.
    pub fn decide(
        &self,
        containee: &ConjunctiveQuery,
        containing: &ConjunctiveQuery,
    ) -> Result<BagContainment, ContainmentError> {
        let pair = CompiledPair::new(containee.clone(), containing.clone())?;
        self.decide_pair(&pair)
    }

    /// Decides a pre-compiled pair, reusing (and filling) its compilation
    /// cache. Repeated decisions of the same [`CompiledPair`] — a benchmark
    /// repeat loop, a batch stream replaying a pair — skip the
    /// containment-mapping enumeration entirely.
    ///
    /// # Errors
    /// [`ContainmentError::BudgetExceeded`] for an exhausted guess-and-check
    /// budget (validation errors are caught earlier, by [`CompiledPair::new`]).
    pub fn decide_pair(&self, pair: &CompiledPair) -> Result<BagContainment, ContainmentError> {
        dioph_obs::registry::ENGINE_PAIRS_DECIDED.incr();
        let result = self.decide_pair_inner(pair);
        if let Ok(verdict) = &result {
            observe_verdict(verdict);
        }
        result
    }

    /// The sequential decision loop behind [`Self::decide_pair`] (split out so
    /// the public entry point records registry counters exactly once).
    fn decide_pair_inner(&self, pair: &CompiledPair) -> Result<BagContainment, ContainmentError> {
        // One scratch for the whole pair: every probe after the first runs
        // through warmed buffers.
        let mut scratch = ProbeScratch::new();
        if self.algorithm == Algorithm::MostGeneralProbe {
            let compiled = pair.most_general();
            return Ok(match self.decide_probe_in(compiled, &mut scratch)? {
                Some(assignment) => BagContainment::NotContained(Box::new(
                    pair.counterexample(compiled, &assignment),
                )),
                None => BagContainment::Contained { probes_checked: 1 },
            });
        }
        let mut checked = 0usize;
        for index in 0..pair.probe_space().raw_len() {
            let Some(compiled) = pair.probe(index) else { continue };
            checked += 1;
            if let Some(assignment) = self.decide_probe_in(compiled, &mut scratch)? {
                return Ok(BagContainment::NotContained(Box::new(
                    pair.counterexample(compiled, &assignment),
                )));
            }
        }
        Ok(BagContainment::Contained { probes_checked: checked })
    }

    /// Decides a single compiled probe: `Ok(Some(ξ))` returns an MPI
    /// assignment witnessing non-containment at this probe, `Ok(None)` means
    /// the probe's MPI is unsolvable (this probe cannot break containment).
    ///
    /// This is the unit of work the parallel engine distributes across
    /// worker threads; the sequential [`Self::decide_pair`] loop calls the
    /// exact same function, which is what makes parallel verdicts
    /// bit-identical to sequential ones.
    ///
    /// # Errors
    /// [`ContainmentError::BudgetExceeded`] when the guess-and-check
    /// enumeration would pass its per-probe budget.
    pub fn decide_probe(
        &self,
        compiled: &CompiledProbe,
    ) -> Result<Option<Vec<Natural>>, ContainmentError> {
        let mut scratch = ProbeScratch::new();
        self.decide_probe_in(compiled, &mut scratch)
    }

    /// [`Self::decide_probe`] through a caller-provided [`ProbeScratch`]:
    /// every working buffer — the Theorem 4.1 system, the LP kernel tableau,
    /// the guess-and-check enumeration state — is drawn from `scratch` and
    /// recycled there, so a warmed scratch decides a probe with no heap
    /// allocation beyond the returned witness. Reuse is capacity-only;
    /// verdicts and witnesses are bit-identical to [`Self::decide_probe`],
    /// which is what keeps parallel workers (one scratch each) byte-identical
    /// to the sequential loop.
    ///
    /// # Errors
    /// As [`Self::decide_probe`].
    pub fn decide_probe_in(
        &self,
        compiled: &CompiledProbe,
        scratch: &mut ProbeScratch,
    ) -> Result<Option<Vec<Natural>>, ContainmentError> {
        dioph_obs::registry::CONTAINMENT_PROBES_DECIDED.incr();
        let _probe_span = dioph_obs::span(dioph_obs::Phase::Probe);
        scratch.note_probe();
        match self.algorithm {
            Algorithm::MostGeneralProbe | Algorithm::AllProbes => {
                Ok(compiled.mpi().diophantine_solution_in(self.engine, &mut scratch.mpi)?)
            }
            Algorithm::GuessCheck { budget } => guess_check_probe(compiled, budget, scratch),
        }
    }
}

/// Tallies one verdict into the registry. Public so the probe-parallel pool
/// in `dioph-engine` — which assembles its [`BagContainment`] from merged
/// probe events rather than through [`BagContainmentDecider::decide_pair`] —
/// counts identically to the sequential loop.
pub fn observe_verdict(verdict: &BagContainment) {
    match verdict {
        BagContainment::Contained { .. } => {
            dioph_obs::registry::ENGINE_VERDICTS_CONTAINED.incr();
        }
        BagContainment::NotContained(_) => {
            dioph_obs::registry::ENGINE_VERDICTS_NOT_CONTAINED.incr();
        }
    }
}

/// The Lemma 5.1 bounded enumeration for one probe: searches for a natural
/// direction vector satisfying every strict inequality of the probe's MPI
/// system, within `budget` enumerated candidates.
fn guess_check_probe(
    compiled: &CompiledProbe,
    budget: u64,
    scratch: &mut ProbeScratch,
) -> Result<Option<Vec<Natural>>, ContainmentError> {
    let n = compiled.dimension();
    let e = compiled.mpi().monomial().exponents();
    // Exponent differences computed straight on the machine words (widened
    // so u64::MAX − 0 stays exact), written into recycled row storage. Split
    // borrow: the rows stay immutably borrowed while the enumeration mutates
    // the composition buffer.
    let ProbeScratch { gc_rows, gc_current, .. } = scratch;
    let mut term_count = 0usize;
    for (_, m) in compiled.mpi().polynomial().terms() {
        if gc_rows.len() == term_count {
            gc_rows.push(Vec::new()); // alloc-ok: outer growth, once per warm-up
        }
        let row = &mut gc_rows[term_count];
        row.clear();
        row.extend(e.iter().zip(m.exponents()).map(|(&a, &b)| a as i128 - b as i128));
        term_count += 1;
    }
    // Rows past `term_count` are previous probes' leftovers: ignored here,
    // kept warm for the next probe.
    let rows = &gc_rows[..term_count];

    if rows.is_empty() {
        // No containment mapping at all: the all-ones bag already violates
        // containment for this probe tuple.
        return Ok(Some(vec![Natural::one(); n])); // alloc-ok: returned witness
    }

    // Small-solution bound (Lemma 5.1): a solution exists iff one exists
    // with component sum at most 6·n³·φ. We use the safe over-approximation
    // φ = max_h (1 + Σ_j |(e − e_h)_j|).
    let phi: u64 = rows
        .iter()
        .map(|row| 1 + row.iter().map(|c| c.unsigned_abs() as u64).sum::<u64>())
        .max()
        .unwrap_or(1);
    let bound = 6u64
        .saturating_mul(n as u64)
        .saturating_mul(n as u64)
        .saturating_mul(n as u64)
        .saturating_mul(phi);

    // Enumerate candidate vectors by increasing component sum, so the
    // smallest violating directions are found first.
    let mut enumerated = 0u64;
    let mut found = false;
    let current = gc_current;
    current.clear();
    current.resize(n, 0);
    'sums: for total in 0..=bound {
        let control = enumerate_compositions(current, 0, total, &mut |candidate| {
            enumerated += 1;
            if enumerated > budget {
                return EnumerationControl::Abort;
            }
            let satisfies_all = rows.iter().all(|row| {
                row.iter().zip(candidate).map(|(&c, &d)| c * d as i128).sum::<i128>() > 0
            });
            if satisfies_all {
                found = true;
                EnumerationControl::Stop
            } else {
                EnumerationControl::Continue
            }
        });
        match control {
            EnumerationControl::Continue => {}
            EnumerationControl::Stop | EnumerationControl::Abort => break 'sums,
        }
    }
    if enumerated > budget {
        return Err(ContainmentError::BudgetExceeded { budget });
    }
    if !found {
        return Ok(None);
    }
    // On `Stop`, `enumerate_compositions` leaves the winning candidate in the
    // composition buffer untouched — read it from there instead of cloning it
    // inside the visitor.
    let direction: &[u64] = current;
    let naturals: Vec<Natural> = direction.iter().copied().map(Natural::from).collect(); // alloc-ok: base search input
    let base = compiled
        .mpi()
        .smallest_base_for(&naturals)
        .expect("a direction satisfying every inequality yields a base");
    // ξ_j = ζ*^{d_j}: raise the base straight from the enumerated
    // machine-word exponents (no round trip through Natural and back).
    Ok(Some(direction.iter().map(|&d| base.pow(d)).collect())) // alloc-ok: returned witness
}

/// Convenience wrapper: decides `containee ⊑b containing` with the default
/// decider (most-general probe tuple + exact simplex).
pub fn is_bag_contained(
    containee: &ConjunctiveQuery,
    containing: &ConjunctiveQuery,
) -> Result<BagContainment, ContainmentError> {
    BagContainmentDecider::default().decide(containee, containing)
}

/// Decides bag **equivalence** of two projection-free conjunctive queries:
/// containment in both directions. Returns the two directional results, so a
/// failed equivalence still exposes which direction broke and with which
/// witness bag.
///
/// # Errors
/// Propagates the validation errors of [`BagContainmentDecider::decide`]
/// (both queries must be projection-free, safe and non-empty, since each acts
/// as the containee in one direction).
pub fn bag_equivalence(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Result<(BagContainment, BagContainment), ContainmentError> {
    let decider = BagContainmentDecider::default();
    let forward = decider.decide(q1, q2)?;
    let backward = decider.decide(q2, q1)?;
    Ok((forward, backward))
}

/// `true` iff both directions of [`bag_equivalence`] hold.
pub fn are_bag_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Result<bool, ContainmentError> {
    let (forward, backward) = bag_equivalence(q1, q2)?;
    Ok(forward.holds() && backward.holds())
}

/// Flow control for [`enumerate_compositions`].
enum EnumerationControl {
    Continue,
    Stop,
    Abort,
}

/// Enumerates every vector of naturals of the current length whose components
/// sum to exactly `remaining`, invoking `visit` on each. Returns the first
/// non-`Continue` control requested by the visitor (or `Continue` if the
/// enumeration ran to completion).
fn enumerate_compositions(
    current: &mut Vec<u64>,
    position: usize,
    remaining: u64,
    visit: &mut impl FnMut(&[u64]) -> EnumerationControl,
) -> EnumerationControl {
    if position + 1 == current.len() {
        current[position] = remaining;
        return visit(current);
    }
    if position == current.len() {
        // Zero-dimensional vector: only the empty composition of 0 exists.
        return if remaining == 0 { visit(current) } else { EnumerationControl::Continue };
    }
    for value in 0..=remaining {
        current[position] = value;
        match enumerate_compositions(current, position + 1, remaining - value, visit) {
            EnumerationControl::Continue => {}
            stop => return stop,
        }
    }
    current[position] = 0;
    EnumerationControl::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::paper_examples;
    use dioph_cq::{parse_query, Term};

    const ENGINES: [FeasibilityEngine; 4] = [
        FeasibilityEngine::Simplex,
        FeasibilityEngine::Bareiss,
        FeasibilityEngine::Auto,
        FeasibilityEngine::FourierMotzkin,
    ];

    fn all_deciders() -> Vec<BagContainmentDecider> {
        let mut out = Vec::new();
        for engine in ENGINES {
            out.push(BagContainmentDecider::new(Algorithm::MostGeneralProbe).with_engine(engine));
            out.push(BagContainmentDecider::new(Algorithm::AllProbes).with_engine(engine));
        }
        out.push(BagContainmentDecider::new(Algorithm::GuessCheck { budget: 2_000_000 }));
        out
    }

    fn assert_contained(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) {
        for decider in all_deciders() {
            let result = decider.decide(q1, q2).expect("decision should succeed");
            assert!(result.holds(), "{decider:?} claims {q1} is not contained in {q2}: {result}");
        }
    }

    fn assert_not_contained(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) {
        for decider in all_deciders() {
            let result = decider.decide(q1, q2).expect("decision should succeed");
            assert!(!result.holds(), "{decider:?} wrongly claims {q1} ⊑b {q2}");
            let ce = result.counterexample().expect("non-containment must carry a witness");
            assert!(ce.verify(q1, q2), "counterexample {ce} fails verification for {q1} vs {q2}");
        }
    }

    #[test]
    fn paper_section2_containment_relations() {
        // From the paper: q1 ⊑b q2, q2 ⋢b q1, q1 ⊑b q3, q2 ⊑b q3.
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let q3 = paper_examples::section2_query_q3();
        assert_contained(&q1, &q2);
        assert_not_contained(&q2, &q1);
        assert_contained(&q1, &q3);
        assert_contained(&q2, &q3);
    }

    #[test]
    fn paper_section3_running_example_is_not_contained() {
        // The Section 3/4 running example: the MPI has Diophantine solutions
        // (the paper exhibits (1, 4, 3)), so q1 ⋢b q2.
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        assert_not_contained(&q1, &q2);
    }

    #[test]
    fn identical_queries_are_contained() {
        let q = paper_examples::section2_query_q1();
        assert_contained(&q, &q.clone());
        let q3 = parse_query("q(x) <- R(x, x), S(x)").unwrap();
        assert_contained(&q3, &q3.clone());
    }

    #[test]
    fn extra_atoms_break_containment_under_bag_semantics() {
        // Under SET semantics, q1(x) ← R(x,x), S(x) is contained in
        // q2(x) ← R(x,x) (drop a conjunct). Under BAG semantics it is NOT:
        // with µ(R(c,c)) = 1 and µ(S(c)) = 2 the containee's multiplicity is
        // 2 while the containing query's is 1. The MPI view makes this
        // immediate: u_R < u_R·u_S is solvable.
        let q1 = parse_query("q(x) <- R(x, x), S(x)").unwrap();
        let q2 = parse_query("p(x) <- R(x, x)").unwrap();
        assert!(dioph_cq::is_set_contained(&q1, &q2));
        assert_not_contained(&q1, &q2);
        // The converse also fails (q2 has answers on bags with no S at all).
        assert_not_contained(&q2, &q1);
    }

    #[test]
    fn higher_multiplicity_on_containing_side_is_not_contained() {
        // q2 ⋢b q1 from the paper is one instance; a minimal one:
        // p(x) ← R²(x,x) is not bag-contained in q(x) ← R(x,x)? Wait: the
        // containee is the query whose multiplicities must be dominated:
        // R²(x,x) gives µ², R(x,x) gives µ; µ² > µ as soon as µ ≥ 2.
        let containee = parse_query("p(x) <- R^2(x, x)").unwrap();
        let containing = parse_query("q(x) <- R(x, x)").unwrap();
        assert_not_contained(&containee, &containing);
        // The other direction holds: µ ≤ µ² for µ ≥ 1 and equals at µ = 1... but
        // at µ = 0 both are 0, so containment holds.
        assert_contained(&containing, &containee);
    }

    #[test]
    fn disjoint_relations_are_never_contained() {
        let q1 = parse_query("q(x) <- R(x, x)").unwrap();
        let q2 = parse_query("p(x) <- S(x, x)").unwrap();
        assert_not_contained(&q1, &q2);
        assert_not_contained(&q2, &q1);
    }

    #[test]
    fn arity_mismatch_is_not_contained() {
        let q1 = parse_query("q(x, y) <- R(x, y)").unwrap();
        let q2 = parse_query("p(x) <- R(x, x)").unwrap();
        assert_not_contained(&q1, &q2);
    }

    #[test]
    fn repeated_head_variables_constrain_the_containing_query() {
        // q1(x,x) asks for the diagonal; q2(x,y) ← R(x,y) contains it.
        let q1 = parse_query("q(x, x) <- R(x, x)").unwrap();
        let q2 = parse_query("p(x, y) <- R(x, y)").unwrap();
        assert_contained(&q1, &q2);
        // The converse is false (q2 returns non-diagonal tuples).
        assert_not_contained(&q2, &q1);
    }

    #[test]
    fn constants_in_the_containing_query() {
        // q1(x) ← R(x,'c')  ⊑b  q2(x) ← R(x,y) (projecting away the constant).
        let q1 = parse_query("q(x) <- R(x, 'c')").unwrap();
        let q2 = parse_query("p(x) <- R(x, y)").unwrap();
        assert_contained(&q1, &q2);
    }

    #[test]
    fn containment_with_existential_multiplication() {
        // Paper-style phenomenon: the containing query can use an existential
        // variable to pick up extra multiplicity.
        // q1(x) ← R²(x,x)  vs  q2(x) ← R(x,y), R(y,x):
        // On the canonical instance {R(x̂,x̂)} the only mapping gives u², equal
        // to the containee's u², so containment holds.
        let q1 = parse_query("q(x) <- R^2(x, x)").unwrap();
        let q2 = parse_query("p(x) <- R(x, y), R(y, x)").unwrap();
        assert_contained(&q1, &q2);
    }

    #[test]
    fn boolean_queries_work() {
        // A ground Boolean containee (its body mentions only constants) is
        // bag-contained in the Boolean query asking for a symmetric pair of
        // edges anywhere: the containing query's sum includes the containee's
        // product as one of its terms.
        let q1 = parse_query("b1() <- E('a', 'b'), E('b', 'a')").unwrap();
        let q2 = parse_query("b2() <- E(x, y), E(y, x)").unwrap();
        assert_contained(&q1, &q2);
    }

    #[test]
    fn validation_errors() {
        let not_pf = parse_query("q(x) <- R(x, y)").unwrap();
        let ok = parse_query("p(x) <- R(x, x)").unwrap();
        let err = is_bag_contained(&not_pf, &ok).unwrap_err();
        assert!(matches!(err, ContainmentError::ContaineeNotProjectionFree { .. }));

        let unsafe_q = ConjunctiveQuery::from_atom_list(
            "u",
            vec![Term::var("x"), Term::var("z")],
            vec![dioph_cq::Atom::new("R", vec![Term::var("x"), Term::var("x")])],
        );
        let err = is_bag_contained(&unsafe_q, &ok).unwrap_err();
        assert!(matches!(err, ContainmentError::UnsafeQuery { .. }));

        let empty = ConjunctiveQuery::from_atom_list("e", vec![], vec![]);
        let err = is_bag_contained(&empty, &ok).unwrap_err();
        assert!(matches!(err, ContainmentError::EmptyBody { .. }));

        // The containing query may freely have projections — only the
        // containee is restricted.
        let has_proj = parse_query("p(x) <- R(x, y), R(y, y)").unwrap();
        assert!(is_bag_contained(&ok, &has_proj).is_ok());
    }

    #[test]
    fn bag_equivalence_checks_both_directions() {
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        // Set-equivalent but not bag-equivalent: the backward direction fails.
        let (forward, backward) = bag_equivalence(&q1, &q2).unwrap();
        assert!(forward.holds());
        assert!(!backward.holds());
        assert!(backward.counterexample().unwrap().verify(&q2, &q1));
        assert!(!are_bag_equivalent(&q1, &q2).unwrap());
        // Every query is bag-equivalent to itself.
        assert!(are_bag_equivalent(&q1, &q1.clone()).unwrap());
        // Projections anywhere make the equivalence question leave the fragment.
        let q3 = paper_examples::section2_query_q3();
        assert!(bag_equivalence(&q1, &q3).is_err());
    }

    #[test]
    fn guess_check_budget_is_enforced() {
        let q1 = paper_examples::section3_query_q1();
        let q2 = paper_examples::section3_query_q2();
        let decider = BagContainmentDecider::new(Algorithm::GuessCheck { budget: 3 });
        let err = decider.decide(&q1, &q2).unwrap_err();
        assert!(matches!(err, ContainmentError::BudgetExceeded { budget: 3 }));
    }

    #[test]
    fn bag_containment_implies_set_containment_on_fixtures() {
        // Sanity check of the basic observation from Section 2 on the
        // paper fixtures and a few crafted pairs.
        let pairs = [
            (paper_examples::section2_query_q1(), paper_examples::section2_query_q2()),
            (paper_examples::section2_query_q1(), paper_examples::section2_query_q3()),
            (
                parse_query("q(x) <- R(x, x), S(x)").unwrap(),
                parse_query("p(x) <- R(x, x)").unwrap(),
            ),
        ];
        for (q1, q2) in pairs {
            let bag = is_bag_contained(&q1, &q2).unwrap().holds();
            let set = dioph_cq::is_set_contained(&q1, &q2);
            if bag {
                assert!(set, "bag containment must imply set containment ({q1} vs {q2})");
            }
        }
    }
}
