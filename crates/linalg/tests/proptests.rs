//! Property-based tests for the feasibility engines.
//!
//! The central invariants:
//! * Fourier–Motzkin and the exact simplex agree on feasibility of strict
//!   homogeneous systems (the shape produced by the paper's Theorem 4.1);
//! * every witness returned actually satisfies the system it was asked about;
//! * natural witnesses scale correctly from rational ones;
//! * dense and sparse [`Row`] inputs drive the simplex to identical outcomes
//!   (the pivot order under Bland's rule is representation-independent).

use dioph_arith::{Integer, Rational};
use dioph_linalg::{
    bareiss, simplex, Constraint, FeasibilityEngine, FmOutcome, IntRow, LinearSystem, Relation,
    Row, StrictHomogeneousSystem,
};
use proptest::prelude::*;

/// A random strict homogeneous system with small integer coefficients.
fn shs_strategy() -> impl Strategy<Value = StrictHomogeneousSystem> {
    (1usize..5, 1usize..6).prop_flat_map(|(dim, rows)| {
        proptest::collection::vec(proptest::collection::vec(-5i64..=5, dim), rows).prop_map(
            move |rows| {
                let mut sys = StrictHomogeneousSystem::new(dim);
                for row in rows {
                    sys.push_row(row.into_iter().map(Integer::from).collect());
                }
                sys
            },
        )
    })
}

/// A random general (non-homogeneous) linear system for the FM engine.
fn linear_system_strategy() -> impl Strategy<Value = LinearSystem> {
    (1usize..4, 1usize..5).prop_flat_map(|(dim, rows)| {
        let row = (
            proptest::collection::vec(-4i64..=4, dim),
            prop_oneof![
                Just(Relation::Le),
                Just(Relation::Lt),
                Just(Relation::Ge),
                Just(Relation::Gt),
                Just(Relation::Eq)
            ],
            -6i64..=6,
        );
        proptest::collection::vec(row, rows).prop_map(move |rows| {
            let mut sys = LinearSystem::new(dim);
            for (coeffs, rel, rhs) in rows {
                sys.push(Constraint::from_i64s(&coeffs, rel, rhs));
            }
            sys
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The two engines must agree on every strict homogeneous system.
    #[test]
    fn engines_agree_on_strict_homogeneous_systems(sys in shs_strategy()) {
        let simplex = sys.is_feasible(FeasibilityEngine::Simplex).unwrap();
        let fm = sys.is_feasible(FeasibilityEngine::FourierMotzkin).unwrap();
        prop_assert_eq!(simplex, fm, "engines disagree on {:?}", sys);
    }

    /// Natural witnesses must satisfy the system (both engines).
    #[test]
    fn natural_witnesses_are_valid(sys in shs_strategy()) {
        for engine in [
            FeasibilityEngine::Simplex,
            FeasibilityEngine::Bareiss,
            FeasibilityEngine::Auto,
            FeasibilityEngine::FourierMotzkin,
        ] {
            if let Some(w) = sys.natural_solution(engine).unwrap() {
                prop_assert_eq!(w.len(), sys.dimension());
                prop_assert!(sys.is_satisfied_by_naturals(&w), "{:?} gave invalid witness {:?} for {:?}", engine, w, sys);
            }
        }
    }

    /// Scaling the system's rows by positive constants does not change
    /// feasibility (homogeneity).
    #[test]
    fn row_scaling_preserves_feasibility(sys in shs_strategy(), scale in 1i64..8) {
        let mut scaled = StrictHomogeneousSystem::new(sys.dimension());
        for row in sys.rows() {
            scaled.push_row(
                row.to_dense_vec().iter().map(|c| c * &Integer::from(scale)).collect(),
            );
        }
        prop_assert_eq!(
            sys.is_feasible(FeasibilityEngine::Simplex).unwrap(),
            scaled.is_feasible(FeasibilityEngine::Simplex).unwrap()
        );
    }

    /// Adding a row can only shrink the feasible set.
    #[test]
    fn adding_rows_is_monotone(sys in shs_strategy(), extra in proptest::collection::vec(-5i64..=5, 1..5)) {
        let feasible_before = sys.is_feasible(FeasibilityEngine::Simplex).unwrap();
        let mut bigger = sys.clone();
        let mut row = extra;
        row.resize(sys.dimension(), 0);
        bigger.push_row(row.into_iter().map(Integer::from).collect());
        let feasible_after = bigger.is_feasible(FeasibilityEngine::Simplex).unwrap();
        if feasible_after {
            prop_assert!(feasible_before, "adding a constraint made an infeasible system feasible");
        }
    }

    /// The simplex must behave identically — same outcome, same witness —
    /// whether a system's rows arrive dense or sparse: Bland's rule is a
    /// function of coefficient *values*, never of their storage.
    #[test]
    fn simplex_outcome_is_representation_independent(sys in shs_strategy()) {
        let dim = sys.dimension();
        let dense_rows: Vec<Row> = sys
            .rows()
            .iter()
            .map(|row| Row::dense(row.to_dense_vec().iter().map(Rational::from).collect()))
            .collect();
        let b = vec![Rational::one(); sys.len()];
        let from_dense = simplex::feasible_point_rows(dim, dense_rows, b.clone()).unwrap();
        let from_sparse = simplex::feasible_point_rows(dim, sys.to_sparse_rows(), b).unwrap();
        prop_assert_eq!(&from_dense, &from_sparse, "representations diverged on {:?}", sys);
        // And both agree with the public front door.
        prop_assert_eq!(
            &from_dense,
            &simplex::feasible_point(
                &sys.rows()
                    .iter()
                    .map(|row| row.to_dense_vec().iter().map(Rational::from).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
                &vec![Rational::one(); sys.len()],
            )
            .unwrap()
        );
    }

    /// Row combination (the FM kernel) matches its dense reference for any
    /// mix of representations.
    #[test]
    fn row_linear_combination_matches_dense_reference(
        a in proptest::collection::vec(-5i64..=5, 1..8),
        b_mask in proptest::collection::vec(-5i64..=5, 1..8),
        ca in -4i64..=4, cb in -4i64..=4,
    ) {
        let dim = a.len().min(b_mask.len());
        let a = &a[..dim];
        let b = &b_mask[..dim];
        let expect: Vec<Rational> = (0..dim)
            .map(|i| {
                &(&Rational::from(ca) * &Rational::from(a[i]))
                    + &(&Rational::from(cb) * &Rational::from(b[i]))
            })
            .collect();
        let dense = |vals: &[i64]| Row::dense(vals.iter().map(|&v| Rational::from(v)).collect());
        let sparse = |vals: &[i64]| {
            Row::sparse(
                vals.len(),
                vals.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(i, &v)| (i, Rational::from(v)))
                    .collect(),
            )
        };
        for ra in [dense(a), sparse(a)] {
            for rb in [dense(b), sparse(b)] {
                let combined =
                    Row::linear_combination(&Rational::from(ca), &ra, &Rational::from(cb), &rb);
                prop_assert_eq!(combined.to_dense_vec(), expect.clone());
            }
        }
    }

    /// The fraction-free (Bareiss) route must reproduce the rational
    /// simplex **exactly**: same verdict, same witness, on every system.
    /// This is the invariant that keeps `--lp-route bareiss` certificates
    /// byte-identical.
    #[test]
    fn bareiss_route_is_bit_identical_to_rational_simplex(sys in shs_strategy()) {
        let simplex_route = sys.rational_solution(FeasibilityEngine::Simplex).unwrap();
        let bareiss_route = sys.rational_solution(FeasibilityEngine::Bareiss).unwrap();
        prop_assert_eq!(&simplex_route, &bareiss_route, "routes diverged on {:?}", sys);
        let auto_route = sys.rational_solution(FeasibilityEngine::Auto).unwrap();
        prop_assert_eq!(&simplex_route, &auto_route, "auto diverged on {:?}", sys);
    }

    /// The identity holds where cross-multiplied pivot values no longer fit
    /// the inline `i64` variant: coefficients near 2^40 force products past
    /// 2^80, so the hybrid Integer must promote (and the gcd normalisation
    /// must not lose exactness on the way back down). Run on the raw
    /// kernels to also pin the witness at non-homogeneous right-hand sides.
    #[test]
    fn bareiss_exact_division_survives_the_word_boundary(
        base in proptest::collection::vec(proptest::collection::vec(-5i64..=5, 3), 1..5),
        b in proptest::collection::vec(-3i64..=3, 1..5),
        shift in 30u32..45,
    ) {
        let rows = base.len().min(b.len());
        let scale = 1i64 << shift;
        let int_rows: Vec<IntRow> = base[..rows]
            .iter()
            .map(|row| {
                IntRow::from_dense_auto(
                    &row.iter().map(|&v| Integer::from(v) * Integer::from(scale)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let rat_rows: Vec<Row> = base[..rows]
            .iter()
            .map(|row| {
                Row::from_dense_auto(
                    &row.iter().map(|&v| Rational::from(v as i128 * scale as i128)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let b_int: Vec<Integer> = b[..rows].iter().map(|&v| Integer::from(v)).collect();
        let b_rat: Vec<Rational> = b[..rows].iter().map(|&v| Rational::from(v)).collect();
        let fraction_free = bareiss::feasible_point_int(3, int_rows, b_int).unwrap();
        let rational = simplex::feasible_point_rows(3, rat_rows, b_rat).unwrap();
        prop_assert_eq!(fraction_free, rational);
    }

    /// The dense/sparse representation stays canonical through elimination:
    /// `eliminate` densifies past the threshold, and `resparsify` (the pivot
    /// boundary call) brings receded rows back — the ratchet releases.
    #[test]
    fn row_representation_stays_canonical_under_elimination(
        target in proptest::collection::vec(-3i64..=3, 4..12),
        srcs in proptest::collection::vec((proptest::collection::vec(-3i64..=3, 4..12), -2i64..=2), 1..6),
    ) {
        let dim = target.len();
        let mut row = Row::from_dense_auto(
            &target.iter().map(|&v| Rational::from(v)).collect::<Vec<_>>(),
        );
        prop_assert!(row.representation_is_canonical());
        for (src, factor) in srcs {
            let mut padded = src;
            padded.resize(dim, 0);
            let src_row = Row::from_dense_auto(
                &padded.iter().map(|&v| Rational::from(v)).collect::<Vec<_>>(),
            );
            row.eliminate(&Rational::from(factor), &src_row, usize::MAX);
            row.resparsify();
            prop_assert!(
                row.representation_is_canonical(),
                "non-canonical representation: nnz={} dim={}",
                row.nnz(),
                row.dim()
            );
        }
    }

    /// FM witnesses for general systems satisfy all constraints.
    #[test]
    fn fm_witnesses_satisfy_general_systems(sys in linear_system_strategy()) {
        match dioph_linalg::fourier_motzkin::solve(&sys) {
            FmOutcome::Feasible(w) => prop_assert!(sys.is_satisfied_by(&w)),
            FmOutcome::Infeasible => {
                // Spot-check: a handful of small integer points must all fail.
                let dim = sys.dimension();
                let candidates: Vec<Vec<dioph_arith::Rational>> = (-2i64..=2)
                    .flat_map(|v| {
                        (0..dim).map(move |i| {
                            let mut p = vec![dioph_arith::Rational::zero(); dim];
                            p[i] = dioph_arith::Rational::from(v);
                            p
                        })
                    })
                    .collect();
                for p in candidates {
                    prop_assert!(!sys.is_satisfied_by(&p), "FM said infeasible but {:?} satisfies it", p);
                }
            }
        }
    }
}
