//! Process-wide counters for the hybrid representation's fast path.
//!
//! The rational hot path (simplex pivots, Fourier–Motzkin combinations) is
//! instrumented with two relaxed atomic counters — compiled unconditionally,
//! **not** gated behind `debug_assertions` — so release binaries can report
//! how often the machine-word fast path fired versus falling back to the
//! limb representation. `diophantus bench --json` surfaces the numbers;
//! future performance work can watch the promotion frequency move.
//!
//! The counters are cumulative for the process. Callers that want a
//! per-phase reading should [`reset`] first (or subtract a prior
//! [`snapshot`]); concurrent arithmetic keeps counting while you read, so
//! treat snapshots as statistics, not exact event counts.
//!
//! The cells themselves live in the `dioph-obs` registry (under
//! `arith.small_hits`, `arith.big_fallbacks`, `arith.int_small_hits` and
//! `arith.int_big_fallbacks`), so arithmetic tallies land in the same
//! `--metrics` output as every other subsystem; this module is the
//! arith-shaped facade over those cells.

use dioph_obs::registry::{
    ARITH_BIG_FALLBACKS, ARITH_INT_BIG_FALLBACKS, ARITH_INT_SMALL_HITS, ARITH_SMALL_HITS,
};

/// Records one rational operation served entirely by the machine-word path.
#[inline]
pub(crate) fn record_small_hit() {
    ARITH_SMALL_HITS.incr();
}

/// Records one rational operation that fell back to the limb path.
#[inline]
pub(crate) fn record_big_fallback() {
    ARITH_BIG_FALLBACKS.incr();
}

/// Records one integer kernel operation (exact division, gcd) served by the
/// machine-word path.
#[inline]
pub(crate) fn record_int_small_hit() {
    ARITH_INT_SMALL_HITS.incr();
}

/// Records one integer kernel operation that fell back to the limb path.
#[inline]
pub(crate) fn record_int_big_fallback() {
    ARITH_INT_BIG_FALLBACKS.incr();
}

/// A point-in-time reading of the fast-path counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Rational operations served by the machine-word fast path.
    pub small_hits: u64,
    /// Rational operations that fell back to the limb representation.
    pub big_fallbacks: u64,
    /// Integer kernel operations (exact division, gcd — the fraction-free
    /// elimination hot path) served by the machine-word fast path.
    pub int_small_hits: u64,
    /// Integer kernel operations that fell back to the limb representation.
    pub int_big_fallbacks: u64,
}

impl Snapshot {
    /// Total instrumented rational operations (saturating: the counters are
    /// process-cumulative and their sum must not wrap in a long-lived
    /// server, where a wrapped total would turn the hit rate into garbage).
    pub fn total(&self) -> u64 {
        self.small_hits.saturating_add(self.big_fallbacks)
    }

    /// Fraction of rational operations served by the fast path (`None` when
    /// no operations were recorded).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            None
        } else {
            Some(self.small_hits as f64 / total as f64)
        }
    }

    /// Total instrumented integer kernel operations (saturating, like
    /// [`Self::total`]).
    pub fn int_total(&self) -> u64 {
        self.int_small_hits.saturating_add(self.int_big_fallbacks)
    }

    /// Fraction of integer kernel operations served by the machine-word path
    /// (`None` when no operations were recorded).
    pub fn int_hit_rate(&self) -> Option<f64> {
        let total = self.int_total();
        if total == 0 {
            None
        } else {
            Some(self.int_small_hits as f64 / total as f64)
        }
    }

    /// Counter deltas since an `earlier` snapshot (saturating, so a
    /// concurrent [`reset`] cannot underflow).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            small_hits: self.small_hits.saturating_sub(earlier.small_hits),
            big_fallbacks: self.big_fallbacks.saturating_sub(earlier.big_fallbacks),
            int_small_hits: self.int_small_hits.saturating_sub(earlier.int_small_hits),
            int_big_fallbacks: self.int_big_fallbacks.saturating_sub(earlier.int_big_fallbacks),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> Snapshot {
    Snapshot {
        small_hits: ARITH_SMALL_HITS.get(),
        big_fallbacks: ARITH_BIG_FALLBACKS.get(),
        int_small_hits: ARITH_INT_SMALL_HITS.get(),
        int_big_fallbacks: ARITH_INT_BIG_FALLBACKS.get(),
    }
}

/// Resets every counter to zero.
pub fn reset() {
    ARITH_SMALL_HITS.reset();
    ARITH_BIG_FALLBACKS.reset();
    ARITH_INT_SMALL_HITS.reset();
    ARITH_INT_BIG_FALLBACKS.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rational;

    #[test]
    fn counters_observe_fast_and_slow_paths() {
        // Tests run concurrently in one process, so assert on deltas of the
        // operations this test performs, not absolute values.
        let before = snapshot();
        let a = Rational::from_i64s(1, 3);
        let _ = &a + &a; // machine-word path
        let mid = snapshot().since(&before);
        assert!(mid.small_hits >= 1);

        let huge = Rational::from(u128::MAX);
        let _ = &huge * &huge; // numerator beyond i64: limb path
        let after = snapshot().since(&before);
        assert!(after.big_fallbacks >= 1);
        assert!(after.total() >= 2);
        assert!(after.hit_rate().is_some());
        assert_eq!(Snapshot::default().hit_rate(), None);
    }

    #[test]
    fn int_counters_observe_exact_div_paths() {
        use crate::Integer;
        let before = snapshot();
        let _ = Integer::from(21).checked_exact_div(&Integer::from(7)); // machine path
        let mid = snapshot().since(&before);
        assert!(mid.int_small_hits >= 1);

        let huge = Integer::from(u128::MAX);
        let _ = (&huge * &huge).checked_exact_div(&huge); // limb path
        let after = snapshot().since(&before);
        assert!(after.int_big_fallbacks >= 1);
        assert!(after.int_total() >= 2);
        assert!(after.int_hit_rate().is_some());
        assert_eq!(Snapshot::default().int_hit_rate(), None);
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        // Counter-overflow edge case: a snapshot whose parts sum past
        // u64::MAX must clamp, not wrap to a tiny total (which would report
        // a nonsense hit rate).
        let s = Snapshot {
            small_hits: u64::MAX - 1,
            big_fallbacks: 2,
            int_small_hits: u64::MAX,
            int_big_fallbacks: u64::MAX,
        };
        assert_eq!(s.total(), u64::MAX);
        assert_eq!(s.int_total(), u64::MAX);
        let rate = s.hit_rate().expect("non-zero total");
        assert!((0.0..=1.0).contains(&rate), "{rate}");
        let rate = s.int_hit_rate().expect("non-zero total");
        assert!((0.0..=1.0).contains(&rate), "{rate}");
    }
}
