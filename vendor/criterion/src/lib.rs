//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API subset the `dioph-bench` targets use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately simple
//! measurement loop.
//!
//! Timing model: each benchmark warms up for `warm_up_time`, then runs
//! batches until `measurement_time` elapses (or `sample_size` batches have
//! run, whichever comes first) and reports the mean wall-clock time per
//! iteration. When the harness binary is invoked with `--test` (as
//! `cargo test --benches` does) every benchmark body runs exactly once so
//! test runs stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The identifier of a benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The measurement configuration and entry point, mirroring
/// `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of measurement batches.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: group_name.to_string() }
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Runs a benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(self.criterion, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The per-benchmark timing driver handed to benchmark closures.
pub struct Bencher {
    mode: BencherMode,
    iterations: u64,
    elapsed: Duration,
}

enum BencherMode {
    /// Run the body exactly once (test mode).
    Once,
    /// Keep running batches until the deadline.
    Measure { warm_up: Duration, deadline: Duration, max_batches: usize },
}

impl Bencher {
    /// Calls `body` repeatedly according to the measurement plan and records
    /// the total time spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            BencherMode::Once => {
                let start = Instant::now();
                black_box(body());
                self.elapsed += start.elapsed();
                self.iterations += 1;
            }
            BencherMode::Measure { warm_up, deadline, max_batches } => {
                let warm_start = Instant::now();
                while warm_start.elapsed() < warm_up {
                    black_box(body());
                }
                let start = Instant::now();
                let mut batches = 0;
                while batches < max_batches && start.elapsed() < deadline {
                    black_box(body());
                    batches += 1;
                }
                self.iterations += batches.max(1) as u64;
                self.elapsed += start.elapsed();
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, id: &str, f: &mut F) {
    let mode = if config.test_mode {
        BencherMode::Once
    } else {
        BencherMode::Measure {
            warm_up: config.warm_up_time,
            deadline: config.measurement_time,
            max_batches: config.sample_size,
        }
    };
    let mut bencher = Bencher { mode, iterations: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{id:<60} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    if config.test_mode {
        println!("{id:<60} ok (test mode)");
    } else {
        println!("{id:<60} {:>12.3} µs/iter", per_iter * 1e6);
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`. Both the plain form and the
/// `name/config/targets` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
