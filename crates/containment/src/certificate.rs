//! Certificates returned by the containment deciders.

use core::fmt;

use dioph_arith::Natural;
use dioph_bagdb::{bag_answer_multiplicity, BagInstance};
use dioph_cq::{ConjunctiveQuery, Term};

/// A machine-checkable witness that `containee ⋢b containing`.
///
/// The witness consists of a probe tuple `t` and a bag `µ` over the canonical
/// instance `I_{containee(t)}` such that the multiplicity of `t` in the bag
/// answer of the containee strictly exceeds its multiplicity in the bag
/// answer of the containing query. [`Counterexample::verify`] re-checks this
/// with the independent Equation-2 evaluator of `dioph-bagdb`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// The violating answer tuple (a probe tuple of the containee).
    pub probe: Vec<Term>,
    /// The violating bag instance.
    pub bag: BagInstance,
    /// Multiplicity of `probe` in the containee's answer over `bag`.
    pub containee_multiplicity: Natural,
    /// Multiplicity of `probe` in the containing query's answer over `bag`.
    pub containing_multiplicity: Natural,
}

impl Counterexample {
    /// Re-evaluates both queries on the stored bag and checks that the
    /// recorded multiplicities are correct and actually violate containment.
    pub fn verify(&self, containee: &ConjunctiveQuery, containing: &ConjunctiveQuery) -> bool {
        let lhs = bag_answer_multiplicity(containee, &self.bag, &self.probe);
        let rhs = bag_answer_multiplicity(containing, &self.bag, &self.probe);
        lhs == self.containee_multiplicity && rhs == self.containing_multiplicity && lhs > rhs
    }

    /// Renders the witness as a JSON object.
    ///
    /// Terms and atoms are serialised in their datalog notation (so they can
    /// be fed back through the `dioph-cq` parser), and multiplicities as
    /// decimal *strings*, since [`Natural`] values can exceed every
    /// fixed-width JSON number type:
    ///
    /// ```json
    /// {"probe": ["'c1'", "'c2'"],
    ///  "bag": [{"atom": "R('c1', 'c2')", "multiplicity": "2"}],
    ///  "containee_multiplicity": "8",
    ///  "containing_multiplicity": "4"}
    /// ```
    pub fn to_json(&self) -> String {
        let probe: Vec<String> =
            self.probe.iter().map(|t| crate::json::string(&t.to_string())).collect();
        let bag: Vec<String> = self
            .bag
            .iter()
            .map(|(atom, mult)| {
                format!(
                    "{{\"atom\":{},\"multiplicity\":\"{mult}\"}}",
                    crate::json::string(&atom.to_string())
                )
            })
            .collect();
        format!(
            "{{\"probe\":[{}],\"bag\":[{}],\"containee_multiplicity\":\"{}\",\
             \"containing_multiplicity\":\"{}\"}}",
            probe.join(","),
            bag.join(","),
            self.containee_multiplicity,
            self.containing_multiplicity
        )
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tuple (")?;
        for (i, t) in self.probe.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(
            f,
            ") on bag {} : containee multiplicity {} > containing multiplicity {}",
            self.bag, self.containee_multiplicity, self.containing_multiplicity
        )
    }
}

/// Outcome of a bag-containment decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BagContainment {
    /// `containee ⊑b containing`; records how many probe tuples (and MPIs)
    /// were examined to conclude it.
    Contained {
        /// Number of probe tuples whose MPI was shown unsolvable.
        probes_checked: usize,
    },
    /// `containee ⋢b containing`, with an explicit violating bag.
    NotContained(Box<Counterexample>),
}

impl BagContainment {
    /// `true` iff the result asserts containment.
    pub fn holds(&self) -> bool {
        matches!(self, BagContainment::Contained { .. })
    }

    /// The counterexample, if containment fails.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            BagContainment::NotContained(ce) => Some(ce),
            BagContainment::Contained { .. } => None,
        }
    }

    /// Renders the verdict as a JSON object: either
    /// `{"verdict":"contained","probes_checked":n}` or
    /// `{"verdict":"not_contained","counterexample":{…}}` with the
    /// [`Counterexample::to_json`] witness embedded.
    pub fn to_json(&self) -> String {
        match self {
            BagContainment::Contained { probes_checked } => {
                format!("{{\"verdict\":\"contained\",\"probes_checked\":{probes_checked}}}")
            }
            BagContainment::NotContained(ce) => {
                format!("{{\"verdict\":\"not_contained\",\"counterexample\":{}}}", ce.to_json())
            }
        }
    }
}

impl fmt::Display for BagContainment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagContainment::Contained { probes_checked } => {
                write!(f, "contained (checked {probes_checked} probe tuple(s))")
            }
            BagContainment::NotContained(ce) => write!(f, "not contained: {ce}"),
        }
    }
}

/// Errors reported when the decision procedure's preconditions are violated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ContainmentError {
    /// The containee query has existential variables; the decision procedure
    /// of the paper applies only to projection-free containees.
    ContaineeNotProjectionFree {
        /// The offending existential variables.
        existential_variables: Vec<String>,
    },
    /// A query has a head variable that does not occur in its body, so its
    /// canonical instance does not determine the head (unsafe query).
    UnsafeQuery {
        /// Name of the offending query.
        query: String,
        /// Head variables missing from the body.
        missing_variables: Vec<String>,
    },
    /// The containee has an empty body; its answers are not well defined for
    /// the canonical-instance machinery.
    EmptyBody {
        /// Name of the offending query.
        query: String,
    },
    /// The enumeration-based decider exceeded its configured budget.
    BudgetExceeded {
        /// The configured bound on enumerated vectors.
        budget: u64,
    },
    /// The LP feasibility engine exhausted its defensive iteration budget.
    /// Reported as a value so a pathological pair fails alone instead of
    /// panicking the engine-pool worker holding it (the batch front-end
    /// surfaces it as a per-pair `decide` error and `--keep-going` streams
    /// continue).
    IterationBudget {
        /// The budget that was exhausted.
        iterations: usize,
    },
}

impl ContainmentError {
    /// The stable `dioph-analyze` lint code for this error, when the error
    /// is a *fragment* violation the static analyzer can also detect
    /// (`D001` unsafe-query, `D002` containee-not-projection-free, `D003`
    /// empty-body). Engine-budget errors have no static counterpart and
    /// return `None`.
    ///
    /// This is the unification point between engine-time validation and the
    /// `diophantus check` lint pass: both report the same code for the same
    /// defect, so a pair that `check` passes clean (at error level) is never
    /// rejected by `CompiledPair::new` for a statically detectable reason.
    pub fn lint_code(&self) -> Option<&'static str> {
        match self {
            ContainmentError::UnsafeQuery { .. } => Some("D001"),
            ContainmentError::ContaineeNotProjectionFree { .. } => Some("D002"),
            ContainmentError::EmptyBody { .. } => Some("D003"),
            ContainmentError::BudgetExceeded { .. } | ContainmentError::IterationBudget { .. } => {
                None
            }
        }
    }
}

impl From<dioph_linalg::LinalgError> for ContainmentError {
    fn from(error: dioph_linalg::LinalgError) -> Self {
        match error {
            dioph_linalg::LinalgError::IterationBudget { iterations } => {
                ContainmentError::IterationBudget { iterations }
            }
        }
    }
}

impl fmt::Display for ContainmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentError::ContaineeNotProjectionFree { existential_variables } => write!(
                f,
                "the containee must be projection-free; existential variables: {}",
                existential_variables.join(", ")
            ),
            ContainmentError::UnsafeQuery { query, missing_variables } => write!(
                f,
                "query {query} is unsafe: head variables {} do not occur in the body",
                missing_variables.join(", ")
            ),
            ContainmentError::EmptyBody { query } => {
                write!(f, "query {query} has an empty body")
            }
            ContainmentError::BudgetExceeded { budget } => {
                write!(f, "guess-and-check enumeration exceeded its budget of {budget} vectors")
            }
            ContainmentError::IterationBudget { iterations } => {
                write!(f, "the LP engine exceeded its iteration budget of {iterations}")
            }
        }
    }
}

impl std::error::Error for ContainmentError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dioph_cq::paper_examples;
    use dioph_cq::Atom;

    fn c(n: &str) -> Term {
        Term::constant(n)
    }

    #[test]
    fn counterexample_verification() {
        // The paper's q2 ⋢b q1 witness: Iµ = {R²(c1,c2), P(c2,c2)}, tuple (c1,c2).
        let q1 = paper_examples::section2_query_q1();
        let q2 = paper_examples::section2_query_q2();
        let bag =
            BagInstance::from_u64_multiplicities(paper_examples::section2_counterexample_bag());
        let good = Counterexample {
            probe: vec![c("c1"), c("c2")],
            bag: bag.clone(),
            containee_multiplicity: Natural::from(8u64),
            containing_multiplicity: Natural::from(4u64),
        };
        assert!(good.verify(&q2, &q1));
        // Swapping the roles breaks verification (4 > 8 is false).
        assert!(!good.verify(&q1, &q2));
        // Wrong recorded numbers break verification.
        let bad = Counterexample { containee_multiplicity: Natural::from(9u64), ..good.clone() };
        assert!(!bad.verify(&q2, &q1));
        // A bag that does not violate containment fails verification too.
        let harmless = Counterexample {
            probe: vec![c("c1"), c("c2")],
            bag: BagInstance::from_u64_multiplicities([
                (Atom::new("R", vec![c("c1"), c("c2")]), 1),
                (Atom::new("P", vec![c("c2"), c("c2")]), 1),
            ]),
            containee_multiplicity: Natural::one(),
            containing_multiplicity: Natural::one(),
        };
        assert!(!harmless.verify(&q2, &q1));
    }

    #[test]
    fn json_serialisation() {
        let ce = Counterexample {
            probe: vec![c("c1"), c("c2")],
            bag: BagInstance::from_u64_multiplicities([
                (Atom::new("R", vec![c("c1"), c("c2")]), 2),
                (Atom::new("P", vec![c("c2"), c("c2")]), 1),
            ]),
            containee_multiplicity: Natural::from(8u64),
            containing_multiplicity: Natural::from(4u64),
        };
        let json = ce.to_json();
        assert_eq!(
            json,
            "{\"probe\":[\"'c1'\",\"'c2'\"],\
             \"bag\":[{\"atom\":\"P('c2', 'c2')\",\"multiplicity\":\"1\"},\
             {\"atom\":\"R('c1', 'c2')\",\"multiplicity\":\"2\"}],\
             \"containee_multiplicity\":\"8\",\"containing_multiplicity\":\"4\"}"
        );
        let contained = BagContainment::Contained { probes_checked: 3 };
        assert_eq!(contained.to_json(), "{\"verdict\":\"contained\",\"probes_checked\":3}");
        let not = BagContainment::NotContained(Box::new(ce));
        assert!(not.to_json().starts_with("{\"verdict\":\"not_contained\",\"counterexample\":{"));
        assert!(not.to_json().ends_with("}}"));
    }

    #[test]
    fn outcome_accessors_and_display() {
        let contained = BagContainment::Contained { probes_checked: 3 };
        assert!(contained.holds());
        assert!(contained.counterexample().is_none());
        assert!(contained.to_string().contains("3 probe"));

        let ce = Counterexample {
            probe: vec![c("c1")],
            bag: BagInstance::new(),
            containee_multiplicity: Natural::one(),
            containing_multiplicity: Natural::zero(),
        };
        let not = BagContainment::NotContained(Box::new(ce));
        assert!(!not.holds());
        assert!(not.counterexample().is_some());
        assert!(not.to_string().contains("not contained"));
    }

    #[test]
    fn error_display() {
        let e = ContainmentError::ContaineeNotProjectionFree {
            existential_variables: vec!["y1".into(), "y2".into()],
        };
        assert!(e.to_string().contains("y1, y2"));
        let e = ContainmentError::UnsafeQuery {
            query: "q".into(),
            missing_variables: vec!["z".into()],
        };
        assert!(e.to_string().contains("unsafe"));
        assert!(ContainmentError::EmptyBody { query: "q".into() }.to_string().contains("empty"));
        assert!(ContainmentError::BudgetExceeded { budget: 10 }.to_string().contains("10"));
        let e: ContainmentError =
            dioph_linalg::LinalgError::IterationBudget { iterations: 7 }.into();
        assert_eq!(e, ContainmentError::IterationBudget { iterations: 7 });
        assert!(e.to_string().contains("iteration budget of 7"), "{e}");
    }
}
